//! Cross-crate integration: the hierarchical container over ParColl with
//! feature combinations (adaptive groups, stripe-aligned domains), at the
//! level an application (Flash) would use it.

use h5lite::{AttrValue, H5File};
use simfs::{FileSystem, FsConfig};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};

fn checkpoint_roundtrip(info: Info) {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(8, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let vars = ["dens", "pres", "temp"];
        {
            let mut h5 = H5File::create(&comm, &fs2, "/chk.h5", &info);
            for (v, name) in vars.iter().enumerate() {
                let ds = h5.create_dataset(name, &[8, 4, 4], 8);
                let bytes = 4 * 4 * 8;
                let data: Vec<u8> = (0..bytes).map(|i| (rank * 7 + v * 3 + i) as u8).collect();
                ds.write_slab_all(
                    h5.raw(),
                    &[rank as u64, 0, 0],
                    &[1, 4, 4],
                    &IoBuffer::from_slice(&data),
                );
            }
            h5.set_attr("", "nstep", AttrValue::Int(9));
            h5.close();
        }
        comm.barrier();
        {
            let mut h5 = H5File::open(&comm, &fs2, "/chk.h5", &info);
            assert_eq!(h5.attr("", "nstep"), Some(&AttrValue::Int(9)));
            for (v, name) in vars.iter().enumerate() {
                let ds = h5.dataset(name);
                let got = ds.read_slab_all(h5.raw(), &[rank as u64, 0, 0], &[1, 4, 4]);
                let bytes = 4 * 4 * 8;
                let expect: Vec<u8> =
                    (0..bytes).map(|i| (rank * 7 + v * 3 + i) as u8).collect();
                assert_eq!(got.as_slice().unwrap(), expect.as_slice(), "{name}");
            }
            h5.close();
        }
        let _ = ep;
    });
}

#[test]
fn h5_over_parcoll_groups() {
    checkpoint_roundtrip(
        Info::new()
            .with("parcoll_groups", 4)
            .with("parcoll_min_group", 1),
    );
}

#[test]
fn h5_over_baseline() {
    checkpoint_roundtrip(Info::new().with("parcoll_groups", 1));
}

#[test]
fn h5_with_adaptive_groups() {
    checkpoint_roundtrip(
        Info::new()
            .with("parcoll_adaptive", "true")
            .with("parcoll_min_group", 2),
    );
}

#[test]
fn h5_with_aligned_domains_and_byte_balance() {
    checkpoint_roundtrip(
        Info::new()
            .with("parcoll_groups", 2)
            .with("parcoll_min_group", 1)
            .with("striping_unit", 1024)
            .with("parcoll_balance", "bytes"),
    );
}

#[test]
fn h5_many_small_datasets() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(4, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let mut h5 = H5File::create(&comm, &fs2, "/many.h5", &Info::new());
        for i in 0..32 {
            let ds = h5.create_dataset(&format!("var{i:02}"), &[4, 8], 1);
            ds.write_slab_all(
                h5.raw(),
                &[comm.rank() as u64, 0],
                &[1, 8],
                &IoBuffer::from_slice(&[i as u8; 8]),
            );
        }
        comm.barrier();
        let meta = h5.metadata().clone();
        assert_eq!(meta.datasets.len(), 32);
        // Offsets strictly increasing, payloads disjoint.
        for w in meta.datasets.windows(2) {
            assert_eq!(w[0].data_offset + w[0].nbytes(), w[1].data_offset);
        }
        let _ = ep;
        h5.close();
    });
}
