//! Model-level integration tests: reduced-scale versions of the paper's
//! headline effects, asserting the *shapes* the full benchmarks
//! reproduce. These run the calibrated (Jaguar) cost models, so they are
//! statements about the simulation, not about host performance.

use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

/// The collective wall (Figure 1): the baseline's synchronization share
/// grows with the process count.
#[test]
fn sync_share_grows_with_scale() {
    // The paper's full tile size (1024x768 x 64 B): the wall is a
    // full-scale phenomenon, so the workload must be full-sized even at
    // reduced process counts.
    let share = |p: usize| {
        let r = run_workload(TileIo::paper(p), RunConfig::paper(IoMode::Collective));
        r.profile_avg.sync_fraction()
    };
    let s8 = share(8);
    let s64 = share(64);
    let s128 = share(128);
    assert!(
        s8 < s64 && s64 < s128,
        "sync share must rise with scale: {s8:.2} -> {s64:.2} -> {s128:.2}"
    );
    assert!(s128 > 0.5, "sync dominates at scale: {s128:.2}");
}

/// Figure 8's effect: more subgroups, less synchronization time, at
/// fixed workload and process count.
#[test]
fn partitioning_reduces_sync_time() {
    let sync = |groups: usize| {
        let mode = if groups <= 1 {
            IoMode::Collective
        } else {
            IoMode::Parcoll { groups }
        };
        run_workload(TileIo::paper(64), RunConfig::paper(mode))
            .profile_avg
            .sync
            .as_secs()
    };
    let s1 = sync(1);
    let s8 = sync(8);
    assert!(
        s8 < s1 * 0.6,
        "8 subgroups must cut sync time substantially: {s1:.3}s -> {s8:.3}s"
    );
}

/// Figure 6's effect at reduced scale: the aligned segmented IOR pattern
/// collapses under the lock-step baseline and recovers under ParColl.
#[test]
fn ior_parcoll_beats_baseline() {
    // 128 ranks, 64 MB blocks (stripe-cycle aligned), 8 transfers.
    let make = || Ior {
        nprocs: 128,
        block_size: 256 << 20,
        transfer_size: 4 << 20,
        max_calls: Some(8),
    };
    let base = run_workload(make(), RunConfig::paper(IoMode::Collective));
    let pc = run_workload(make(), RunConfig::paper(IoMode::Parcoll { groups: 16 }));
    assert!(
        pc.write_mbps > 1.5 * base.write_mbps,
        "ParColl must clearly beat the baseline: {:.0} vs {:.0} MB/s",
        pc.write_mbps,
        base.write_mbps
    );
}

/// Over-partitioning with an interoperability constraint (scatter
/// intermediate views) collapses — the right side of Figure 7.
#[test]
fn over_partitioning_collapses_under_scatter_views() {
    // Full-size tiles on a 4x16 grid: 16 groups are whole tile-rows
    // (disjoint bands); 32 groups split rows and force intermediate
    // views, which the interoperability constraint makes scatter.
    let w = || TileIo {
        ntx: 4,
        nty: 16,
        tile_x: 1024,
        tile_y: 768,
        elem: 64,
    };
    let mut good = RunConfig::paper(IoMode::Parcoll { groups: 16 });
    good.info.set("parcoll_iview_scatter", "true");
    let at16 = run_workload(w(), good);

    let mut over = RunConfig::paper(IoMode::Parcoll { groups: 32 });
    over.info.set("parcoll_iview_scatter", "true");
    let at32 = run_workload(w(), over);

    assert!(
        at32.write_mbps < 0.5 * at16.write_mbps,
        "over-partitioned scatter views must collapse: {:.0} vs {:.0} MB/s",
        at32.write_mbps,
        at16.write_mbps
    );
}

/// Aggregate bandwidth accounting sanity: reported MB/s equals bytes
/// over elapsed virtual seconds.
#[test]
fn bandwidth_accounting_is_consistent() {
    let r = run_workload(Ior::tiny(8), RunConfig::paper(IoMode::Collective));
    let recomputed = r.total_bytes as f64 / r.write_seconds / 1e6;
    assert!((r.write_mbps - recomputed).abs() < 1e-9);
}
