//! Full-stack integration: every workload generator, through every I/O
//! path, over real data, verified byte-exact end to end.

use workloads::btio::BtIo;
use workloads::flashio::FlashIo;
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn modes() -> [IoMode; 3] {
    [
        IoMode::Collective,
        IoMode::Parcoll { groups: 4 },
        IoMode::Independent,
    ]
}

#[test]
fn ior_round_trips_in_every_mode() {
    for mode in modes() {
        let r = run_workload(Ior::tiny(8), RunConfig::verify(mode));
        assert!(r.write_seconds > 0.0, "{mode:?}");
        assert!(r.read_mbps.unwrap() > 0.0, "{mode:?}");
    }
}

#[test]
fn tileio_round_trips_in_every_mode() {
    for mode in modes() {
        let r = run_workload(TileIo::tiny(8), RunConfig::verify(mode));
        assert!(r.write_mbps > 0.0, "{mode:?}");
    }
}

#[test]
fn btio_round_trips_through_intermediate_views() {
    for mode in [IoMode::Collective, IoMode::Parcoll { groups: 2 }] {
        let r = run_workload(BtIo::tiny(4), RunConfig::verify(mode));
        assert!(r.write_mbps > 0.0, "{mode:?}");
    }
}

#[test]
fn btio_larger_grid_round_trips() {
    // 16 ranks (q=4), uneven 10^3 grid: slab remainders exercised.
    let w = BtIo::with_grid(16, 10, 2);
    for mode in [IoMode::Collective, IoMode::Parcoll { groups: 4 }] {
        let r = run_workload(w.clone(), RunConfig::verify(mode));
        assert!(r.write_mbps > 0.0, "{mode:?}");
    }
}

#[test]
fn flash_round_trips_in_every_mode() {
    for mode in modes() {
        let r = run_workload(FlashIo::tiny(8), RunConfig::verify(mode));
        assert!(r.write_mbps > 0.0, "{mode:?}");
    }
}

#[test]
fn flash_plotfiles_round_trip() {
    for make in [FlashIo::plot_centered, FlashIo::plot_corner] {
        let mut w = make(4);
        w.blocks_per_proc = 2;
        w.nb = 3;
        let r = run_workload(w, RunConfig::verify(IoMode::Parcoll { groups: 2 }));
        assert!(r.write_mbps > 0.0);
    }
}

#[test]
fn cyclic_mapping_round_trips() {
    for mode in [IoMode::Collective, IoMode::Parcoll { groups: 4 }] {
        let mut cfg = RunConfig::verify(mode);
        cfg.mapping = simnet::Mapping::Cyclic;
        let r = run_workload(TileIo::tiny(16), cfg);
        assert!(r.write_mbps > 0.0, "{mode:?}");
    }
}

#[test]
fn explicit_aggregator_hints_round_trip() {
    for list in ["0", "0,4", "0,2,4,6", "1,3,5,7"] {
        let mut cfg = RunConfig::verify(IoMode::Parcoll { groups: 2 });
        cfg.info.set("cb_config_list", list);
        let r = run_workload(Ior::tiny(8), cfg);
        assert!(r.write_mbps > 0.0, "aggs {list}");
    }
}

#[test]
fn small_cb_buffer_forces_many_rounds_and_stays_correct() {
    let mut cfg = RunConfig::verify(IoMode::Parcoll { groups: 2 });
    cfg.info.set("cb_buffer_size", 32);
    let r = run_workload(TileIo::tiny(8), cfg);
    assert!(r.profile_max.rounds >= 4, "rounds {}", r.profile_max.rounds);
}

#[test]
fn scatter_iview_round_trips() {
    let mut cfg = RunConfig::verify(IoMode::Parcoll { groups: 2 });
    cfg.info.set("parcoll_iview_scatter", "true");
    let r = run_workload(BtIo::tiny(4), cfg);
    assert!(r.write_mbps > 0.0);
}

#[test]
fn adaptive_mode_probes_then_commits() {
    use parcoll::ParcollFile;
    use simfs::{FileSystem, FsConfig};
    use simmpi::{Communicator, Info};
    use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};

    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    let out = run_cluster(ClusterConfig::cray_xt(16, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new()
            .with("parcoll_adaptive", "true")
            .with("parcoll_min_group", 2);
        let mut f = ParcollFile::open(&comm, &fs2, "/adaptive", &info);
        let n = 256usize;
        // Ladder for 16 procs / min 2: [1, 2, 4, 8], 3 calls per rung ->
        // 12 probe calls, then committed calls.
        for call in 0..14usize {
            let off = ((call * 16 + rank) * n) as u64;
            let data: Vec<u8> = (0..n).map(|i| (rank * 7 + call + i) as u8).collect();
            f.write_at_all(off, &IoBuffer::from_slice(&data));
        }
        comm.barrier();
        // Verify one call's data.
        let off = ((3 * 16 + rank) * n) as u64;
        let got = f.read_at(off, n as u64);
        let expect: Vec<u8> = (0..n).map(|i| (rank * 7 + 3 + i) as u8).collect();
        assert_eq!(got.as_slice().unwrap(), expect.as_slice());
        let state = f.adaptive_state().unwrap();
        assert!(state.is_committed(), "controller must commit after probing");
        assert_eq!(state.measurements().len(), 4);
        let committed = state.committed().unwrap();
        let _ = ep;
        f.close();
        committed
    });
    // All ranks agree on the committed group count.
    assert!(out.windows(2).all(|w| w[0] == w[1]), "{out:?}");
}

#[test]
fn group_counts_sweep_round_trips() {
    for groups in [2, 3, 4, 8] {
        let r = run_workload(TileIo::tiny(16), RunConfig::verify(IoMode::Parcoll { groups }));
        assert!(r.write_mbps > 0.0, "groups {groups}");
    }
}
