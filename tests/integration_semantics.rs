//! Cross-crate semantic tests: MPI-IO behaviours that span the whole
//! stack — views over sub-communicators, mixed collective/independent
//! access, consistency of ParColl against the baseline, and file-system
//! state after the protocols run.

use mpiio::{Datatype, File};
use parcoll::coll::PartitionMode;
use parcoll::ParcollFile;
use simfs::{FileSystem, FsConfig};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};

fn fill(rank: usize, n: usize) -> Vec<u8> {
    (0..n).map(|i| ((rank * 101 + i * 13) % 251) as u8).collect()
}

/// ParColl and the baseline must produce byte-identical files for the
/// same interleaved workload.
#[test]
fn parcoll_file_equals_baseline_file() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(8, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        // Interleaved 2-D tiles, tall grid so FAs are disjoint.
        let ft = Datatype::tile_2d(16, 64, 2, 64, rank * 2, 0, 1);
        let n = 128usize;

        let mut base = File::open(&comm, &fs2, "/base", &Info::new());
        base.set_view(0, &ft);
        base.write_at_all(0, &IoBuffer::from_slice(&fill(rank, n)));
        let base_handle = base.handle().clone();
        base.close();

        let info = Info::new().with("parcoll_groups", 4).with("parcoll_min_group", 1);
        let mut pc = ParcollFile::open(&comm, &fs2, "/pc", &info);
        pc.set_view(0, &ft);
        pc.write_at_all(0, &IoBuffer::from_slice(&fill(rank, n)));
        assert!(matches!(pc.last_mode(), Some(PartitionMode::Direct { .. })));
        comm.barrier();

        if rank == 0 {
            let (a, _) = base_handle.read_at(0, 1024, ep.now());
            let (b, _) = pc.inner().handle().read_at(0, 1024, ep.now());
            assert_eq!(a, b, "ParColl must write the same bytes as ext2ph");
        }
        pc.close();
    });
}

/// Collective I/O on a sub-communicator: two halves of the machine write
/// two different files concurrently.
#[test]
fn independent_subcommunicator_collectives() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(8, Mapping::Block), move |ep| {
        let world = Communicator::world(&ep);
        let half = world.split(Some((ep.rank() / 4) as i64), 0).unwrap();
        let path = format!("/half{}", ep.rank() / 4);
        let mut f = File::open(&half, &fs2, &path, &Info::new());
        let n = 256usize;
        f.write_at_all(
            (half.rank() * n) as u64,
            &IoBuffer::from_slice(&fill(ep.rank(), n)),
        );
        half.barrier();
        let got = f.read_at((half.rank() * n) as u64, n as u64);
        assert_eq!(got.as_slice().unwrap(), fill(ep.rank(), n).as_slice());
        f.close();
    });
}

/// Mixed access: collective writes followed by independent reads and
/// vice versa observe each other's data (sequential consistency via
/// barriers).
#[test]
fn mixed_collective_and_independent_access() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(4, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new().with("parcoll_groups", 2).with("parcoll_min_group", 1);
        let mut f = ParcollFile::open(&comm, &fs2, "/mixed", &info);
        let n = 64usize;

        // Phase 1: collective write, independent read-back.
        f.write_at_all((rank * n) as u64, &IoBuffer::from_slice(&fill(rank, n)));
        comm.barrier();
        let got = f.read_at(((rank + 1) % 4 * n) as u64, n as u64);
        assert_eq!(got.as_slice().unwrap(), fill((rank + 1) % 4, n).as_slice());

        // Phase 2: independent write, collective read-back.
        f.write_at(((4 + rank) * n) as u64, &IoBuffer::from_slice(&fill(rank + 10, n)));
        comm.barrier();
        let got = f.read_at_all(((4 + rank) * n) as u64, n as u64);
        assert_eq!(got.as_slice().unwrap(), fill(rank + 10, n).as_slice());
        f.close();
    });
}

/// Reopening a file written by a ParColl direct-mode run sees the data
/// through plain MPI-IO (on-disk layout is canonical in direct mode).
#[test]
fn direct_mode_files_are_interoperable() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(4, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new().with("parcoll_groups", 2).with("parcoll_min_group", 1);
        let n = 128usize;
        {
            let mut pc = ParcollFile::open(&comm, &fs2, "/interop", &info);
            pc.write_at_all((rank * n) as u64, &IoBuffer::from_slice(&fill(rank, n)));
            pc.close();
        }
        // Plain MPI-IO reader.
        let mut f = File::open(&comm, &fs2, "/interop", &Info::new());
        let got = f.read_at((rank * n) as u64, n as u64);
        assert_eq!(got.as_slice().unwrap(), fill(rank, n).as_slice());
        f.close();
    });
}

/// set_view invalidates ParColl's cached partitioning: a pattern change
/// after set_view must re-partition, and data must stay exact.
#[test]
fn set_view_repartitions() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    run_cluster(ClusterConfig::cray_xt(8, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new().with("parcoll_groups", 2).with("parcoll_min_group", 1);
        let mut pc = ParcollFile::open(&comm, &fs2, "/reviews", &info);
        let n = 64usize;

        // View 1: serial blocks (pattern a).
        pc.write_at_all((rank * n) as u64, &IoBuffer::from_slice(&fill(rank, n)));
        assert!(matches!(pc.last_mode(), Some(PartitionMode::Direct { .. })));
        assert_eq!(pc.split_count(), 1);

        // View 2: spread segments (pattern c) in a fresh region.
        let base = (8 * n) as u64;
        let ft = Datatype::HIndexed {
            blocks: (0..4)
                .map(|k| (base + (rank * 16 + k * 8 * 64) as u64, 1))
                .collect(),
            inner: Box::new(Datatype::Bytes(16)),
        };
        pc.set_view(0, &ft);
        pc.write_at_all(0, &IoBuffer::from_slice(&fill(rank + 50, 64)));
        assert!(matches!(
            pc.last_mode(),
            Some(PartitionMode::IntermediateView { .. })
        ));
        // set_view dropped the cached decision; the new pattern forced a
        // fresh partitioning (split count restarts with the new cache).
        assert_eq!(pc.split_count(), 1, "fresh partitioning after set_view");
        comm.barrier();

        let got = pc.read_at_all(0, 64);
        assert_eq!(got.as_slice().unwrap(), fill(rank + 50, 64).as_slice());
        pc.close();
    });
}

/// The file system's aggregate accounting matches what the protocols
/// claim to have moved.
#[test]
fn fs_accounting_matches_protocol_traffic() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    let n = 512usize;
    run_cluster(ClusterConfig::cray_xt(4, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let mut f = File::open(&comm, &fs2, "/acct", &Info::new());
        f.write_at_all((comm.rank() * n) as u64, &IoBuffer::synthetic(n));
        let _ = ep;
        f.close();
    });
    let stats = fs.stats();
    assert_eq!(stats.total_bytes, 4 * n as u64, "all bytes hit the OSTs once");
    assert_eq!(stats.opens, 4);
}

/// Virtual time is stable for a deterministic configuration: repeated
/// runs agree closely. (Exact equality is not guaranteed — OST queues
/// serve in host arrival order, so per-request completions may permute
/// between runs; see `simfs::ost`. Totals stay within a tight band, and
/// data correctness is verified byte-exact either way.)
#[test]
fn virtual_time_is_stable_without_jitter() {
    let run = || {
        let mut cfg = workloads::runner::RunConfig::verify(
            workloads::runner::IoMode::Parcoll { groups: 2 },
        );
        cfg.read_back = false;
        workloads::runner::run_workload(workloads::ior::Ior::tiny(8), cfg).write_seconds
    };
    let a = run();
    let b = run();
    let rel = (a - b).abs() / a.max(b);
    assert!(rel < 0.25, "virtual time drifted {rel:.3} between runs: {a} vs {b}");
}
