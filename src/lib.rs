//! # parcoll-repro — ParColl: Partitioned Collective I/O, reproduced
//!
//! An end-to-end reproduction of *ParColl: Partitioned Collective I/O on
//! the Cray XT* (Yu & Vetter, ICPP 2008) as a Rust workspace:
//!
//! * [`simnet`] — virtual-time cluster substrate (clocks, topology,
//!   SeaStar-calibrated network cost model, rank runtime);
//! * [`simmpi`] — MPI-like communicators, point-to-point and collectives;
//! * [`simfs`] — Lustre-like parallel file system (striping, per-OST
//!   contention, write-back caches, extent-lock conflicts);
//! * [`mpiio`] — MPI-IO datatypes, file views, independent I/O and the
//!   extended two-phase collective protocol with phase profiling;
//! * [`parcoll`] — the paper's contribution: file-area partitioning,
//!   intermediate file views, aggregator distribution, and the
//!   partitioned collective read/write;
//! * [`workloads`] — IOR, MPI-Tile-IO, NAS BT-IO and Flash-IO generators
//!   plus the measurement runner.
//!
//! See `README.md` for a tour, `DESIGN.md` for the architecture and
//! substitutions, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use mpiio;
pub use parcoll;
pub use simfs;
pub use simmpi;
pub use simnet;
pub use workloads;
