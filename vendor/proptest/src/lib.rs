//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest its test suites use: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`/`boxed`, range/tuple/`any`
//! strategies, [`collection::vec`], [`option::weighted`], [`prop_oneof!`],
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberate and documented:
//!
//! * **No shrinking.** A failing case panics with the values in scope via
//!   the ordinary assertion message; rerunning reproduces it exactly
//!   because the RNG is seeded from the test's module path and name.
//! * **Deterministic by construction.** Every test function derives its
//!   seed from `module_path!()::name`, so runs are reproducible across
//!   machines with no persistence files.
//! * `prop_assert!`/`prop_assert_eq!` behave as `assert!`/`assert_eq!`
//!   (immediate panic rather than error propagation).

pub mod test_runner {
    /// Marker returned by a generated case when `prop_assume!` rejects it.
    #[derive(Debug)]
    pub struct Rejected;

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// SplitMix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test identifier (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of type `Value`.
    ///
    /// Unlike upstream proptest there is no value tree: `generate` samples
    /// directly and nothing shrinks.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Type-erased strategy (what `prop_oneof!` arms become).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_filter`]: rejection-samples (bounded).
    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// Uniform choice among boxed arms (what [`crate::prop_oneof!`] builds).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// `any::<T>()` support: the full value domain of `T`.
    pub struct Any<T>(PhantomData<T>);

    pub fn any_strategy<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! any_impl {
        ($($t:ty => |$rng:ident| $gen:expr;)*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $gen
                }
            }
        )*};
    }

    any_impl! {
        bool => |rng| rng.next_u64() & 1 == 1;
        u8 => |rng| rng.next_u64() as u8;
        u16 => |rng| rng.next_u64() as u16;
        u32 => |rng| rng.next_u64() as u32;
        u64 => |rng| rng.next_u64();
        usize => |rng| rng.next_u64() as usize;
        i8 => |rng| rng.next_u64() as i8;
        i16 => |rng| rng.next_u64() as i16;
        i32 => |rng| rng.next_u64() as i32;
        i64 => |rng| rng.next_u64() as i64;
        f64 => |rng| rng.next_f64();
        f32 => |rng| rng.next_f64() as f32;
    }
}

pub mod arbitrary {
    use crate::strategy::{any_strategy, Any};

    /// `any::<T>()`: the strategy covering `T`'s full domain.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy<Value = T>,
    {
        any_strategy::<T>()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec()`]: `lo..hi` (exclusive) or an exact size.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy yielding `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Some(inner)` with probability `prob`, else `None`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
        Weighted { prob, inner }
    }

    pub struct Weighted<S> {
        prob: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.prob {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Property-test entry point. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let mut ran = 0u32;
            let mut attempts = 0u32;
            while ran < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(50).max(5000),
                    "prop_assume! rejected too many cases ({ran} accepted of {attempts})"
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let case = move || -> ::std::result::Result<(), $crate::test_runner::Rejected> {
                    { $body }
                    ::std::result::Result::Ok(())
                };
                match case() {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::Rejected) => continue,
                }
            }
        }
    )*};
}

/// Reject the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Assertion inside a property: behaves as `assert!` (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

/// Uniform choice among strategies yielding a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        fn ranges_respect_bounds(a in 3u64..17, b in 0usize..4, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((0.25..0.75).contains(&f));
        }

        fn assume_filters(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        fn vec_and_tuple(v in crate::collection::vec((0u8..4, any::<bool>()), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|(x, _)| *x < 4));
        }

        fn oneof_and_map(x in prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            Just(99u64),
        ]) {
            prop_assert!(x == 99 || (x % 2 == 0 && x < 20));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let sample = |tag: &str| {
            let mut rng = crate::test_runner::TestRng::deterministic(tag);
            (0..8).map(|_| (0u64..1000).generate(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample("t"), sample("t"));
        assert_ne!(sample("t"), sample("u"));
    }

    #[test]
    fn weighted_option_hits_both_arms() {
        use crate::strategy::Strategy;
        let s = crate::option::weighted(0.5, 0u64..10);
        let mut rng = crate::test_runner::TestRng::deterministic("opt");
        let vals: Vec<_> = (0..64).map(|_| s.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_some()));
        assert!(vals.iter().any(|v| v.is_none()));
    }
}
