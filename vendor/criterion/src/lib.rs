//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion::bench_function`,
//! `benchmark_group` (+ `sample_size`), `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is intentionally simple: per benchmark it warms up once,
//! then times `samples` batches and reports the median per-iteration time.
//! No statistics, plots, or baseline comparisons — the numbers are
//! indicative, which is all the virtual-time workloads here need (their
//! interesting output is *virtual* seconds, measured in the binaries).

use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batch setup cost relates to measurement; only a routing hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter`/`iter_batched` call.
    last: Option<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            last: None,
        }
    }

    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        hint::black_box(routine()); // warm-up
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            hint::black_box(routine());
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    /// Time `routine` on inputs produced by `setup`; setup is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        hint::black_box(routine(setup())); // warm-up
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            hint::black_box(routine(input));
            times.push(t0.elapsed());
        }
        self.record(times);
    }

    fn record(&mut self, mut times: Vec<Duration>) {
        times.sort();
        self.last = times.get(times.len() / 2).copied();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(id, b.last);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            _parent: self,
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.last);
        self
    }

    pub fn finish(self) {}
}

fn report(id: &str, median: Option<Duration>) {
    match median {
        Some(d) => println!("{id:<44} time: {d:>12.3?}/iter (median)"),
        None => println!("{id:<44} time: <no samples>"),
    }
}

/// Declare a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.last.is_some());
    }

    #[test]
    fn iter_batched_consumes_setup_value() {
        let mut b = Bencher::new(3);
        b.iter_batched(
            || vec![1u8; 16],
            |v| v.into_iter().map(u64::from).sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.last.is_some());
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
