//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the few synchronisation primitives it actually uses:
//! [`Mutex`] (non-poisoning `lock()` returning a guard directly) and
//! [`Condvar`] (`wait` / `wait_for` taking a `&mut MutexGuard`). Semantics
//! match parking_lot for every call site in this repository; fairness and
//! performance characteristics are whatever `std::sync` provides, which is
//! irrelevant here because all contended paths are virtual-time rendezvous
//! where threads park anyway.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` returns the guard directly
/// (poisoning is ignored, matching parking_lot's panic-transparent locks).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner),
            ),
            mutex: self,
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard {
                inner: Some(g),
                mutex: self,
            }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
                mutex: self,
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait_for`]
/// and [`MutexGuard::unlocked`] can temporarily surrender the underlying
/// std guard; it is `Some` at all times observable by callers.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Run `f` with the mutex temporarily unlocked, then re-acquire it
    /// (parking_lot's `MutexGuard::unlocked`). The guard must not be used
    /// inside `f` — enforced by the associated-function calling
    /// convention taking the guard by `&mut`.
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        drop(s.inner.take().expect("guard present"));
        let ret = f();
        s.inner = Some(
            s.mutex
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        );
        ret
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on [`MutexGuard`]s.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, res) = match self.inner.wait_timeout(std_guard, timeout) {
            Ok((g, t)) => (g, t),
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
