//! Quickstart: a 16-rank virtual cluster collectively writes a shared
//! file through ParColl, reads it back, and prints the per-phase profile.
//!
//! Run with: `cargo run --release --example quickstart`

use parcoll::ParcollFile;
use simfs::{FileSystem, FsConfig};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};

fn main() {
    // A 16-rank cluster on dual-core nodes with Cray XT-calibrated cost
    // models, and a small deterministic file system.
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();

    let outputs = run_cluster(ClusterConfig::cray_xt(16, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();

        // ParColl is configured through MPI_Info hints; 4 subgroups here.
        let info = Info::new()
            .with("parcoll_groups", 4)
            .with("parcoll_min_group", 2);
        let mut file = ParcollFile::open(&comm, &fs2, "/quickstart.dat", &info);

        // Each rank owns a contiguous 4 KiB block of the shared file.
        let block = 4096usize;
        let mine: Vec<u8> = (0..block).map(|i| (rank * 31 + i) as u8).collect();
        file.write_at_all((rank * block) as u64, &IoBuffer::from_slice(&mine));

        comm.barrier();

        // Read the neighbour's block back collectively and verify.
        let peer = (rank + 1) % comm.size();
        let got = file.read_at_all((peer * block) as u64, block as u64);
        let expect: Vec<u8> = (0..block).map(|i| (peer * 31 + i) as u8).collect();
        assert_eq!(got.as_slice().unwrap(), expect.as_slice(), "rank {rank}");

        let mode = file.last_mode();
        let profile = file.close();
        (rank, mode, profile, ep.now())
    });

    println!("quickstart: 16 ranks wrote and verified a shared file via ParColl");
    let (_, mode, profile, t) = &outputs[0];
    println!("  partition mode : {mode:?}");
    println!("  virtual elapsed: {t}");
    println!(
        "  rank 0 profile : sync {} | p2p {} | io {} ({} collective calls, {} rounds)",
        profile.sync, profile.p2p, profile.io, profile.calls, profile.rounds
    );
    println!(
        "  sync share     : {:.1}% of attributed time",
        profile.sync_fraction() * 100.0
    );
}
