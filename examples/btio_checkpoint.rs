//! Scientific checkpoint scenario: the NAS BT-IO diagonal
//! multi-partitioning pattern, whose file views spread across the whole
//! record (the paper's Figure 4(c)). ParColl detects that direct
//! file-area partitioning is impossible and switches to an intermediate
//! file view; data still round-trips exactly through the same views.
//!
//! Run with: `cargo run --release --example btio_checkpoint`

use parcoll::coll::PartitionMode;
use parcoll::ParcollFile;
use simfs::{FileSystem, FsConfig};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};
use workloads::btio::BtIo;
use workloads::{pattern_buffer, Workload};

fn main() {
    // 16 ranks (q = 4), a miniature 8^3 grid, 2 timesteps.
    let bt = BtIo::tiny(16);
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();
    let bt2 = bt.clone();

    let outputs = run_cluster(ClusterConfig::cray_xt(16, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new()
            .with("parcoll_groups", 4)
            .with("parcoll_min_group", 2);
        let mut file = ParcollFile::open(&comm, &fs2, "/bt.chk", &info);

        let (disp, ft) = bt2.view(rank);
        file.set_view(disp, &ft);

        // Append every timestep's solution record collectively.
        for step in 0..bt2.ncalls() {
            let (off, bytes) = bt2.call(rank, step);
            let data = pattern_buffer(rank, step, bytes);
            file.write_at_all(off, &IoBuffer::from_slice(&data));
        }
        let mode = file.last_mode();
        comm.barrier();

        // Read every step back through the same view and verify.
        for step in 0..bt2.ncalls() {
            let (off, bytes) = bt2.call(rank, step);
            let got = file.read_at_all(off, bytes);
            assert_eq!(
                got.as_slice().unwrap(),
                pattern_buffer(rank, step, bytes).as_slice(),
                "rank {rank} step {step}: checkpoint corrupted"
            );
        }
        let profile = file.close();
        let _ = ep;
        (mode, profile)
    });

    let (mode, profile) = &outputs[0];
    println!("BT-IO checkpoint on 16 ranks (q=4, {} cells/rank):", bt.q);
    println!("  partition mode    : {mode:?}");
    assert!(matches!(mode, Some(PartitionMode::IntermediateView { .. })));
    println!("  -> the spread pattern forced an intermediate file view, as in the paper");
    println!(
        "  rank 0 profile    : sync {} | p2p {} | io {} over {} collective calls",
        profile.sync, profile.p2p, profile.io, profile.calls
    );
    println!("  all {} timesteps verified byte-exact through the original views", bt.steps);
}
