//! Flash-IO through the hierarchical container, end to end: the paper's
//! §5.4 pipeline (Flash → HDF5 → MPI-IO → ParColl → Lustre) with every
//! layer from this repository. Writes a checkpoint of named variables as
//! datasets with attributes, closes, reopens, and verifies.
//!
//! Run with: `cargo run --release --example flash_hdf5`

use h5lite::{AttrValue, H5File};
use simfs::{FileSystem, FsConfig};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};

const NPROCS: usize = 16;
const BLOCKS_PER_PROC: u64 = 4;
const NB: u64 = 8; // block edge (cells)
const VARS: [&str; 4] = ["dens", "pres", "temp", "velx"];

fn block_bytes() -> u64 {
    NB * NB * NB * 8
}

fn fill(rank: usize, var: usize) -> Vec<u8> {
    let n = (BLOCKS_PER_PROC * block_bytes()) as usize;
    (0..n).map(|i| ((rank * 31 + var * 7 + i) % 251) as u8).collect()
}

fn main() {
    let fs = FileSystem::new(FsConfig::tiny());
    let fs2 = fs.clone();

    let profile = run_cluster(ClusterConfig::cray_xt(NPROCS, Mapping::Block), move |ep| {
        let comm = Communicator::world(&ep);
        let rank = comm.rank();
        let info = Info::new()
            .with("parcoll_groups", 4)
            .with("parcoll_min_group", 2);

        // --- checkpoint write ---
        {
            let mut h5 = H5File::create(&comm, &fs2, "/flash_chk.h5", &info);
            let gblocks = NPROCS as u64 * BLOCKS_PER_PROC;
            for (v, name) in VARS.iter().enumerate() {
                let ds = h5.create_dataset(name, &[gblocks, NB, NB, NB], 8);
                // Rank r owns blocks [r*BPP, (r+1)*BPP): one hyperslab.
                ds.write_slab_all(
                    h5.raw(),
                    &[rank as u64 * BLOCKS_PER_PROC, 0, 0, 0],
                    &[BLOCKS_PER_PROC, NB, NB, NB],
                    &IoBuffer::from_slice(&fill(rank, v)),
                );
                h5.set_attr(name, "timestep", AttrValue::Int(100));
            }
            h5.set_attr("", "code", AttrValue::Text("flash-sim".into()));
            h5.close();
        }
        comm.barrier();

        // --- restart read ---
        let mut h5 = H5File::open(&comm, &fs2, "/flash_chk.h5", &info);
        assert_eq!(
            h5.attr("", "code"),
            Some(&AttrValue::Text("flash-sim".into()))
        );
        for (v, name) in VARS.iter().enumerate() {
            let ds = h5.dataset(name);
            let got = ds.read_slab_all(
                h5.raw(),
                &[rank as u64 * BLOCKS_PER_PROC, 0, 0, 0],
                &[BLOCKS_PER_PROC, NB, NB, NB],
            );
            assert_eq!(
                got.as_slice().unwrap(),
                fill(rank, v).as_slice(),
                "rank {rank} var {name} corrupted"
            );
        }
        let _ = ep;
        h5.close()
    });

    let total: u64 = NPROCS as u64 * BLOCKS_PER_PROC * block_bytes() * VARS.len() as u64;
    println!("flash_hdf5: {NPROCS} ranks wrote and restarted a {total}-byte checkpoint");
    println!("  4 variables as datasets + attributes, via h5lite -> ParColl -> simfs");
    println!(
        "  rank 0 profile: sync {} | p2p {} | io {} over {} collective calls",
        profile[0].sync, profile[0].p2p, profile[0].io, profile[0].calls
    );
    println!("  restart verified byte-exact for every variable");
}
