//! Application checkpoint scenario: the Flash-IO kernel (the paper's
//! §5.4) writing a multi-variable checkpoint, demonstrating aggregator
//! hints — the user-visible `MPI_Info` interface ParColl keeps intact —
//! and comparing collective, partitioned and independent paths.
//!
//! Run with: `cargo run --release --example flash_checkpoint`
//! Add `--paper` for the 1024-process, 486 GB configuration.

use simmpi::Info;
use workloads::Workload;
use workloads::flashio::FlashIo;
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    let w = if paper {
        FlashIo::checkpoint(1024)
    } else {
        let mut w = FlashIo::checkpoint(32);
        w.blocks_per_proc = 4;
        w
    };
    println!(
        "Flash-IO checkpoint: {} procs x {} blocks x {} vars = {:.1} GB",
        w.nprocs,
        w.blocks_per_proc,
        w.nvars,
        w.total_bytes() as f64 / 1e9
    );
    println!("{:<34} {:>12} {:>10}", "configuration", "write MB/s", "sync s");

    let runs: Vec<(&str, RunConfig)> = vec![
        ("collective (default aggregators)", RunConfig::paper(IoMode::Collective)),
        (
            "ParColl (default aggregators)",
            RunConfig::paper(IoMode::Parcoll {
                groups: (w.nprocs / 16).max(2),
            }),
        ),
        ("collective (64-aggregator hint)", {
            let mut cfg = RunConfig::paper(IoMode::Collective);
            let list: Vec<String> = (0..w.nprocs.min(64))
                .map(|i| (i * (w.nprocs / w.nprocs.min(64))).to_string())
                .collect();
            cfg.info = Info::new().with("cb_config_list", list.join(","));
            cfg
        }),
        ("independent (no collective I/O)", RunConfig::paper(IoMode::Independent)),
    ];

    for (label, cfg) in runs {
        let r = run_workload(w.clone(), cfg);
        println!(
            "{:<34} {:>12.1} {:>10.3}",
            label,
            r.write_mbps,
            r.profile_avg.sync.as_secs()
        );
    }
    println!("\nParColl rides the same MPI_Info hints as collective buffering;");
    println!("no application change is needed (paper section 4.2).");
}
