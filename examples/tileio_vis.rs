//! Visualization output scenario: the MPI-Tile-IO pattern (each process
//! renders one tile of a 2-D dataset) written through the baseline
//! two-phase protocol and through ParColl, comparing bandwidth and
//! synchronization share — a miniature of the paper's Figures 7 and 8.
//!
//! Run with: `cargo run --release --example tileio_vis`
//! Add `--paper` to run the full 512-process, 24 GB configuration.

use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn main() {
    let paper = std::env::args().any(|a| a == "--paper");
    // Miniature default: 64 ranks rendering 128x96 tiles of 64-byte
    // elements (~50 MB total) — big enough for meaningful bandwidth.
    let mid = |n: usize| {
        let (ntx, nty) = TileIo::tall_grid(n);
        TileIo { ntx, nty, tile_x: 128, tile_y: 96, elem: 64 }
    };
    let (nprocs, workload): (usize, Box<dyn Fn(usize) -> TileIo>) = if paper {
        (512, Box::new(TileIo::paper))
    } else {
        (64, Box::new(mid))
    };

    println!("MPI-Tile-IO on {nprocs} virtual ranks ({} grid of {}x{} tiles)",
        if paper { "paper-scale" } else { "miniature" },
        workload(nprocs).ntx,
        workload(nprocs).nty,
    );
    println!("{:<16} {:>12} {:>12} {:>10}", "mode", "write MB/s", "sync s", "sync %");

    for (label, mode) in [
        ("baseline", IoMode::Collective),
        ("ParColl-4", IoMode::Parcoll { groups: 4 }),
        ("ParColl-16", IoMode::Parcoll { groups: 16 }),
    ] {
        let r = run_workload(workload(nprocs), RunConfig::paper(mode));
        println!(
            "{:<16} {:>12.1} {:>12.3} {:>9.1}%",
            label,
            r.write_mbps,
            r.profile_avg.sync.as_secs(),
            r.profile_avg.sync_fraction() * 100.0
        );
    }
    println!("\nMore subgroups -> less global synchronization -> higher bandwidth,");
    println!("until groups become too small to aggregate (paper Figure 7).");
}
