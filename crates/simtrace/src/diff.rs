//! Cross-run differential analysis: align two runs' critical paths,
//! phase attributions, per-rank slack and resource loads, and rank the
//! deltas into a root-cause table.
//!
//! The alignment never compares raw timestamps between runs (virtual
//! times shift globally the moment anything changes). Instead each run
//! is first reduced to a [`RunDigest`] keyed by *stable identities*:
//!
//! * critical-path time per **phase** (`io` / `sync` / `p2p` / …);
//! * per-**rank** busy/sync/on-path/slack totals;
//! * per-**collective** waits, keyed `(ctx, seq)` — the communicator
//!   context and rendezvous generation, identical across runs of the
//!   same program;
//! * per-**round** phase charges, keyed `(call, round)` from the
//!   two-phase `round/*` spans;
//! * per-**OST** service totals, with each `ost/serve` span binned to
//!   the requesting rank's enclosing exchange round.
//!
//! [`diff`] then subtracts digests key-by-key and emits one [`Finding`]
//! per delta above a noise floor, scored by `|Δµs| ×` a kind weight
//! (shrinks are further discounted — lost time can't cause a
//! regression). The weights encode cause-over-symptom: when one OST
//! slows down by Δ, every downstream aggregate — collective waits, rank
//! busy totals, critical-path phase overlap — inflates by queue-and-wait
//! amplification, often to *many times* Δ; and the critical path can
//! reroute entirely, swinging its per-phase totals by amounts unrelated
//! to the cause. So resource (OST) findings carry a decisive weight,
//! round-localized charges (rerouting-robust: summed over all ranks)
//! sit in the middle, and per-rank / path-phase aggregates are demoted
//! to context.
//!
//! Digests serialize to JSON (`kind: "parcoll_run_digest"`) so a
//! baseline digest can be committed next to `bench_results` rows and
//! diffed against HEAD when the regression gate trips.

use crate::analysis::{critical_path, rank_slack};
use crate::export::collective_ops;
use crate::json::Json;
use crate::sink::{ArgValue, Event, Trace, TrackKey};
use std::collections::BTreeMap;

/// Per-rank totals carried by the digest.
#[derive(Debug, Clone, PartialEq)]
pub struct RankDigest {
    /// Global rank.
    pub rank: usize,
    /// Total µs inside any `phase` span.
    pub busy_us: f64,
    /// µs inside `sync` phase spans.
    pub sync_us: f64,
    /// µs of the critical path on this rank.
    pub on_path_us: f64,
}

/// One collective's wait profile, keyed by `(ctx, seq)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveDigest {
    /// Operation name.
    pub op: String,
    /// Communicator context id.
    pub ctx: u64,
    /// Per-communicator collective sequence number.
    pub seq: u64,
    /// Global rank whose late arrival set the meeting time.
    pub straggler: usize,
    /// Largest wait among participants, µs.
    pub max_wait_us: f64,
    /// Sum of every participant's wait, µs.
    pub total_wait_us: f64,
}

/// One OST's service totals, with per-round attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct OstDigest {
    /// OST index.
    pub ost: usize,
    /// Total `ost/serve` span time, µs.
    pub busy_us: f64,
    /// Total `ost/queue` span time, µs.
    pub queue_wait_us: f64,
    /// Total bytes served.
    pub bytes: f64,
    /// Service time per exchange round, keyed `(call, round)` of the
    /// requesting rank's enclosing round span (`(u64::MAX, u64::MAX)`
    /// collects requests outside any round, e.g. independent I/O).
    pub round_busy_us: BTreeMap<(u64, u64), f64>,
}

/// One exchange round's phase charges, summed over ranks.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDigest {
    /// Collective-call index (how many `round == 0` starts preceded it
    /// on each rank).
    pub call: u64,
    /// Round index within the call.
    pub round: u64,
    /// µs per phase inside the per-rank round windows, summed over
    /// ranks.
    pub phases_us: BTreeMap<String, f64>,
}

/// A run reduced to stable-keyed totals — everything [`diff`] needs,
/// nothing tied to absolute virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDigest {
    /// Caller-chosen label (`"baseline"`, a commit id, …).
    pub label: String,
    /// Virtual wall, µs.
    pub wall_us: f64,
    /// Rank that finished last.
    pub end_rank: usize,
    /// Critical-path µs per phase.
    pub path_phases_us: BTreeMap<String, f64>,
    /// The straggler chain: `(rank, µs)` visits in path order.
    pub chain: Vec<(usize, f64)>,
    /// Per-rank totals, ascending rank.
    pub ranks: Vec<RankDigest>,
    /// Per-collective waits, ascending `(ctx, seq)`.
    pub collectives: Vec<CollectiveDigest>,
    /// Per-OST service, ascending OST.
    pub osts: Vec<OstDigest>,
    /// Per-round phase charges, ascending `(call, round)`.
    pub rounds: Vec<RoundDigest>,
}

/// Round key for requests outside any exchange round.
const NO_ROUND: (u64, u64) = (u64::MAX, u64::MAX);

fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::U64(v) => Some(*v),
        _ => None,
    })
}

/// Attribute `[a, b]` against sorted phase spans; uncovered time lands
/// in `other` (same rules as the critical-path attribution).
fn overlap_phases(phases: &[(f64, f64, String)], a: f64, b: f64, out: &mut BTreeMap<String, f64>) {
    let mut covered = 0.0f64;
    let first = phases.partition_point(|(_, end, _)| *end <= a);
    for (start, end, name) in &phases[first..] {
        if *start >= b {
            break;
        }
        let overlap = end.min(b) - start.max(a);
        if overlap > 0.0 {
            *out.entry(name.clone()).or_insert(0.0) += overlap;
            covered += overlap;
        }
    }
    let other = (b - a) - covered;
    if other > 0.0 {
        *out.entry("other".to_string()).or_insert(0.0) += other;
    }
}

/// Reduce a finished trace to its digest. `None` when the trace has no
/// rank spans (disabled sink).
pub fn digest(trace: &Trace, label: &str) -> Option<RunDigest> {
    let path = critical_path(trace)?;
    let slack = rank_slack(trace, &path);

    // Per-rank round windows: (call, round, start, end) in time order.
    let mut rank_rounds: BTreeMap<usize, Vec<(u64, u64, f64, f64)>> = BTreeMap::new();
    let mut rounds: BTreeMap<(u64, u64), RoundDigest> = BTreeMap::new();
    for track in trace.rank_tracks() {
        let TrackKey::Rank(rank) = track.key else { continue };
        let mut phases: Vec<(f64, f64, String)> = Vec::new();
        let mut windows: Vec<(u64, u64, f64, f64)> = Vec::new();
        let mut call = 0u64;
        for event in &track.events {
            let Event::Span {
                cat,
                name,
                start_us,
                dur_us,
                args,
            } = event
            else {
                continue;
            };
            match *cat {
                "phase" => phases.push((*start_us, start_us + dur_us, name.to_string())),
                "round" => {
                    if let Some(round) = arg_u64(args, "round") {
                        if round == 0 {
                            call += 1;
                        }
                        windows.push((call.saturating_sub(1), round, *start_us, start_us + dur_us));
                    }
                }
                _ => {}
            }
        }
        phases.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        for (call, round, start, end) in &windows {
            let entry = rounds.entry((*call, *round)).or_insert_with(|| RoundDigest {
                call: *call,
                round: *round,
                phases_us: BTreeMap::new(),
            });
            overlap_phases(&phases, *start, *end, &mut entry.phases_us);
        }
        rank_rounds.insert(rank, windows);
    }

    let mut osts = Vec::new();
    for track in trace.ost_tracks() {
        let TrackKey::Ost(ost) = track.key else { continue };
        let mut d = OstDigest {
            ost,
            busy_us: 0.0,
            queue_wait_us: 0.0,
            bytes: 0.0,
            round_busy_us: BTreeMap::new(),
        };
        for event in &track.events {
            let Event::Span {
                cat: "ost",
                name,
                start_us,
                dur_us,
                args,
            } = event
            else {
                continue;
            };
            if name == "queue" {
                d.queue_wait_us += dur_us;
                continue;
            }
            if name != "serve" {
                continue;
            }
            d.busy_us += dur_us;
            d.bytes += arg_u64(args, "bytes").unwrap_or(0) as f64;
            // Bin the request to the requester's enclosing round: the
            // last round window starting at or before the service start
            // (drain-time service still belongs to the round that
            // issued it).
            let round_key = arg_u64(args, "rank")
                .and_then(|r| rank_rounds.get(&(r as usize)))
                .and_then(|windows| {
                    let i = windows.partition_point(|(_, _, start, _)| *start <= *start_us);
                    i.checked_sub(1).map(|i| (windows[i].0, windows[i].1))
                })
                .unwrap_or(NO_ROUND);
            *d.round_busy_us.entry(round_key).or_insert(0.0) += dur_us;
        }
        osts.push(d);
    }

    Some(RunDigest {
        label: label.to_string(),
        wall_us: path.wall_us,
        end_rank: path.end_rank,
        path_phases_us: path.breakdown(),
        chain: path.straggler_chain(),
        ranks: slack
            .iter()
            .map(|s| RankDigest {
                rank: s.rank,
                busy_us: s.busy_us,
                sync_us: s.sync_us,
                on_path_us: s.on_path_us,
            })
            .collect(),
        collectives: collective_ops(trace)
            .iter()
            .map(|op| CollectiveDigest {
                op: op.op.clone(),
                ctx: op.ctx,
                seq: op.seq,
                straggler: op.straggler,
                max_wait_us: op.max_wait_us,
                total_wait_us: op.total_wait_us,
            })
            .collect(),
        osts,
        rounds: rounds.into_values().collect(),
    })
}

// ---------------------------------------------------------------------
// Digest JSON round trip
// ---------------------------------------------------------------------

fn round_key_str(key: (u64, u64)) -> String {
    if key == NO_ROUND {
        "-".to_string()
    } else {
        format!("{}/{}", key.0, key.1)
    }
}

fn round_key_parse(s: &str) -> Option<(u64, u64)> {
    if s == "-" {
        return Some(NO_ROUND);
    }
    let (c, r) = s.split_once('/')?;
    Some((c.parse().ok()?, r.parse().ok()?))
}

fn f64_map_json(m: &BTreeMap<String, f64>) -> Json {
    Json::Obj(m.iter().map(|(k, v)| (k.clone(), Json::Num(*v))).collect())
}

fn f64_map_parse(doc: &Json) -> Option<BTreeMap<String, f64>> {
    doc.as_obj()?
        .iter()
        .map(|(k, v)| Some((k.clone(), v.as_f64()?)))
        .collect()
}

/// Serialize a digest (`kind: "parcoll_run_digest"`). Byte-reproducible
/// for identical runs.
pub fn digest_json(d: &RunDigest) -> String {
    Json::Obj(vec![
        ("kind".into(), Json::Str("parcoll_run_digest".into())),
        ("label".into(), Json::Str(d.label.clone())),
        ("wall_us".into(), Json::Num(d.wall_us)),
        ("end_rank".into(), Json::U64(d.end_rank as u64)),
        ("path_phases_us".into(), f64_map_json(&d.path_phases_us)),
        (
            "chain".into(),
            Json::Arr(
                d.chain
                    .iter()
                    .map(|(rank, us)| {
                        Json::Arr(vec![Json::U64(*rank as u64), Json::Num(*us)])
                    })
                    .collect(),
            ),
        ),
        (
            "ranks".into(),
            Json::Arr(
                d.ranks
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("rank".into(), Json::U64(r.rank as u64)),
                            ("busy_us".into(), Json::Num(r.busy_us)),
                            ("sync_us".into(), Json::Num(r.sync_us)),
                            ("on_path_us".into(), Json::Num(r.on_path_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "collectives".into(),
            Json::Arr(
                d.collectives
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("op".into(), Json::Str(c.op.clone())),
                            ("ctx".into(), Json::U64(c.ctx)),
                            ("seq".into(), Json::U64(c.seq)),
                            ("straggler".into(), Json::U64(c.straggler as u64)),
                            ("max_wait_us".into(), Json::Num(c.max_wait_us)),
                            ("total_wait_us".into(), Json::Num(c.total_wait_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "osts".into(),
            Json::Arr(
                d.osts
                    .iter()
                    .map(|o| {
                        Json::Obj(vec![
                            ("ost".into(), Json::U64(o.ost as u64)),
                            ("busy_us".into(), Json::Num(o.busy_us)),
                            ("queue_wait_us".into(), Json::Num(o.queue_wait_us)),
                            ("bytes".into(), Json::Num(o.bytes)),
                            (
                                "round_busy_us".into(),
                                Json::Obj(
                                    o.round_busy_us
                                        .iter()
                                        .map(|(k, v)| (round_key_str(*k), Json::Num(*v)))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "rounds".into(),
            Json::Arr(
                d.rounds
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("call".into(), Json::U64(r.call)),
                            ("round".into(), Json::U64(r.round)),
                            ("phases_us".into(), f64_map_json(&r.phases_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty()
}

/// Parse a digest document back (inverse of [`digest_json`]).
pub fn digest_from_json(text: &str) -> Option<RunDigest> {
    let doc = Json::parse(text).ok()?;
    if doc.get("kind")?.as_str()? != "parcoll_run_digest" {
        return None;
    }
    Some(RunDigest {
        label: doc.get("label")?.as_str()?.to_string(),
        wall_us: doc.get("wall_us")?.as_f64()?,
        end_rank: doc.get("end_rank")?.as_u64()? as usize,
        path_phases_us: f64_map_parse(doc.get("path_phases_us")?)?,
        chain: doc
            .get("chain")?
            .as_array()?
            .iter()
            .map(|pair| {
                let items = pair.as_array()?;
                Some((items.first()?.as_u64()? as usize, items.get(1)?.as_f64()?))
            })
            .collect::<Option<Vec<_>>>()?,
        ranks: doc
            .get("ranks")?
            .as_array()?
            .iter()
            .map(|r| {
                Some(RankDigest {
                    rank: r.get("rank")?.as_u64()? as usize,
                    busy_us: r.get("busy_us")?.as_f64()?,
                    sync_us: r.get("sync_us")?.as_f64()?,
                    on_path_us: r.get("on_path_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        collectives: doc
            .get("collectives")?
            .as_array()?
            .iter()
            .map(|c| {
                Some(CollectiveDigest {
                    op: c.get("op")?.as_str()?.to_string(),
                    ctx: c.get("ctx")?.as_u64()?,
                    seq: c.get("seq")?.as_u64()?,
                    straggler: c.get("straggler")?.as_u64()? as usize,
                    max_wait_us: c.get("max_wait_us")?.as_f64()?,
                    total_wait_us: c.get("total_wait_us")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        osts: doc
            .get("osts")?
            .as_array()?
            .iter()
            .map(|o| {
                Some(OstDigest {
                    ost: o.get("ost")?.as_u64()? as usize,
                    busy_us: o.get("busy_us")?.as_f64()?,
                    queue_wait_us: o.get("queue_wait_us")?.as_f64()?,
                    bytes: o.get("bytes")?.as_f64()?,
                    round_busy_us: o
                        .get("round_busy_us")?
                        .as_obj()?
                        .iter()
                        .map(|(k, v)| Some((round_key_parse(k)?, v.as_f64()?)))
                        .collect::<Option<BTreeMap<_, _>>>()?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        rounds: doc
            .get("rounds")?
            .as_array()?
            .iter()
            .map(|r| {
                Some(RoundDigest {
                    call: r.get("call")?.as_u64()?,
                    round: r.get("round")?.as_u64()?,
                    phases_us: f64_map_parse(r.get("phases_us")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
    })
}

// ---------------------------------------------------------------------
// The diff
// ---------------------------------------------------------------------

/// One ranked delta between two digests.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// What kind of key moved: `"ost"`, `"round"`, `"collective"`,
    /// `"phase"` or `"rank"`.
    pub kind: &'static str,
    /// The moved key, human-readable (`"ost 6"`, `"call 0 round 3"`).
    pub subject: String,
    /// Phase name the delta is charged to (`"io"` for OST service).
    pub phase: String,
    /// Inclusive round range `(lo, hi)` localizing the delta, when the
    /// per-round attribution supports one.
    pub rounds: Option<(u64, u64)>,
    /// Baseline value, µs.
    pub base_us: f64,
    /// HEAD value, µs.
    pub head_us: f64,
    /// Ranking score: `|Δ| ×` the kind weight.
    pub score: f64,
    /// The rendered one-line explanation.
    pub text: String,
}

/// The ranked root-cause table for one baseline→HEAD comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Baseline digest label.
    pub base_label: String,
    /// HEAD digest label.
    pub head_label: String,
    /// Baseline wall, µs.
    pub wall_base_us: f64,
    /// HEAD wall, µs.
    pub wall_head_us: f64,
    /// Critical-path phase totals `(base, head)` µs, by phase.
    pub path_phases: BTreeMap<String, (f64, f64)>,
    /// Findings, highest score first (capped at 24).
    pub findings: Vec<Finding>,
}

/// Kind weight: resource findings are root causes. Deliberately
/// decisive: a grown OST service time is a *physical* cause, while
/// every downstream aggregate (rank busy, collective waits, path
/// phases) inflates by queue-and-wait amplification — often to many
/// times the causal delta — so causes need a large prior to outrank
/// their own echoes.
const W_OST: f64 = 8.0;
/// Kind weight: round-localized phase deltas (summed over all ranks'
/// round windows, so robust to critical-path rerouting).
const W_ROUND: f64 = 1.0;
/// Kind weight: collective waits (often symptoms of a resource delta).
const W_COLLECTIVE: f64 = 1.0;
/// Kind weight: per-rank busy totals (always downstream of the cause).
const W_RANK: f64 = 0.25;
/// Kind weight: critical-path phase totals. The path is a max over
/// chains, so a small perturbation can reroute it entirely and swing
/// the per-phase overlap by far more than the causal delta — these
/// findings contextualize, they rarely explain.
const W_PHASE: f64 = 0.25;
/// Score discount for shrinks: time that *shrank* cannot be the cause
/// of a regression, but is kept (demoted) because a big shift from one
/// phase into another is worth seeing.
const SHRINK_DISCOUNT: f64 = 0.5;

/// Findings kept in a report.
const MAX_FINDINGS: usize = 24;

fn pct(base: f64, head: f64) -> String {
    if base.abs() > 1e-12 {
        format!("{:+.1}%", (head - base) / base * 100.0)
    } else if head > 0.0 {
        "new".to_string()
    } else {
        "gone".to_string()
    }
}

fn grew(base: f64, head: f64) -> &'static str {
    if head >= base {
        "grew"
    } else {
        "shrank"
    }
}

/// The round range explaining an OST delta: rounds whose per-round
/// delta has the same sign as the total and at least a quarter of the
/// largest per-round magnitude.
fn round_range(
    base: &BTreeMap<(u64, u64), f64>,
    head: &BTreeMap<(u64, u64), f64>,
    total_delta: f64,
) -> Option<(u64, u64)> {
    let mut deltas: BTreeMap<(u64, u64), f64> = BTreeMap::new();
    for (k, v) in head {
        *deltas.entry(*k).or_insert(0.0) += v;
    }
    for (k, v) in base {
        *deltas.entry(*k).or_insert(0.0) -= v;
    }
    deltas.remove(&NO_ROUND);
    let peak = deltas
        .values()
        .map(|d| if d * total_delta > 0.0 { d.abs() } else { 0.0 })
        .fold(0.0, f64::max);
    if peak <= 0.0 {
        return None;
    }
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for ((_, round), d) in &deltas {
        if d * total_delta > 0.0 && d.abs() >= 0.25 * peak {
            lo = lo.min(*round);
            hi = hi.max(*round);
        }
    }
    (lo <= hi).then_some((lo, hi))
}

/// Compare two digests and rank the deltas. Deterministic: identical
/// inputs produce an identical report.
pub fn diff(base: &RunDigest, head: &RunDigest) -> DiffReport {
    let wall = base.wall_us.max(head.wall_us);
    let floor = (1e-4 * wall).max(1.0);
    let mut findings: Vec<Finding> = Vec::new();
    let push = |kind: &'static str,
                    weight: f64,
                    subject: String,
                    phase: String,
                    rounds: Option<(u64, u64)>,
                    base_us: f64,
                    head_us: f64,
                    findings: &mut Vec<Finding>| {
        let delta = head_us - base_us;
        if delta.abs() < floor {
            return;
        }
        let where_part = match rounds {
            Some((lo, hi)) if lo == hi => format!(" in round {lo}"),
            Some((lo, hi)) => format!(" in rounds {lo}-{hi}"),
            None => String::new(),
        };
        let text = format!(
            "{phase} {} {} on {subject}{where_part} ({:+.1} us; {:.1} -> {:.1})",
            grew(base_us, head_us),
            pct(base_us, head_us),
            delta,
            base_us,
            head_us,
        );
        let mut score = delta.abs() * weight;
        if delta < 0.0 {
            score *= SHRINK_DISCOUNT;
        }
        findings.push(Finding {
            kind,
            subject,
            phase,
            rounds,
            base_us,
            head_us,
            score,
            text,
        });
    };

    // Critical-path phases (always reported in the header; findings only
    // past the floor).
    let mut path_phases: BTreeMap<String, (f64, f64)> = BTreeMap::new();
    for (name, us) in &base.path_phases_us {
        path_phases.entry(name.clone()).or_insert((0.0, 0.0)).0 = *us;
    }
    for (name, us) in &head.path_phases_us {
        path_phases.entry(name.clone()).or_insert((0.0, 0.0)).1 = *us;
    }
    for (name, (b, h)) in &path_phases {
        push(
            "phase",
            W_PHASE,
            "critical path".to_string(),
            name.clone(),
            None,
            *b,
            *h,
            &mut findings,
        );
    }

    // OSTs, joined on index.
    let base_osts: BTreeMap<usize, &OstDigest> = base.osts.iter().map(|o| (o.ost, o)).collect();
    let head_osts: BTreeMap<usize, &OstDigest> = head.osts.iter().map(|o| (o.ost, o)).collect();
    let empty_rounds = BTreeMap::new();
    let all_osts: std::collections::BTreeSet<usize> =
        base_osts.keys().chain(head_osts.keys()).copied().collect();
    for ost in all_osts {
        let b = base_osts.get(&ost);
        let h = head_osts.get(&ost);
        let b_busy = b.map_or(0.0, |o| o.busy_us);
        let h_busy = h.map_or(0.0, |o| o.busy_us);
        let rounds = round_range(
            b.map_or(&empty_rounds, |o| &o.round_busy_us),
            h.map_or(&empty_rounds, |o| &o.round_busy_us),
            h_busy - b_busy,
        );
        push(
            "ost",
            W_OST,
            format!("ost {ost}"),
            "io".to_string(),
            rounds,
            b_busy,
            h_busy,
            &mut findings,
        );
    }

    // Rounds, joined on (call, round).
    let base_rounds: BTreeMap<(u64, u64), &RoundDigest> =
        base.rounds.iter().map(|r| ((r.call, r.round), r)).collect();
    let head_rounds: BTreeMap<(u64, u64), &RoundDigest> =
        head.rounds.iter().map(|r| ((r.call, r.round), r)).collect();
    let all_rounds: std::collections::BTreeSet<(u64, u64)> =
        base_rounds.keys().chain(head_rounds.keys()).copied().collect();
    for key in all_rounds {
        let mut phases: std::collections::BTreeSet<&String> = std::collections::BTreeSet::new();
        if let Some(r) = base_rounds.get(&key) {
            phases.extend(r.phases_us.keys());
        }
        if let Some(r) = head_rounds.get(&key) {
            phases.extend(r.phases_us.keys());
        }
        for phase in phases {
            let b = base_rounds
                .get(&key)
                .and_then(|r| r.phases_us.get(phase))
                .copied()
                .unwrap_or(0.0);
            let h = head_rounds
                .get(&key)
                .and_then(|r| r.phases_us.get(phase))
                .copied()
                .unwrap_or(0.0);
            push(
                "round",
                W_ROUND,
                format!("call {} round {}", key.0, key.1),
                phase.clone(),
                Some((key.1, key.1)),
                b,
                h,
                &mut findings,
            );
        }
    }

    // Collectives, joined on (ctx, seq).
    let base_colls: BTreeMap<(u64, u64), &CollectiveDigest> =
        base.collectives.iter().map(|c| ((c.ctx, c.seq), c)).collect();
    for c in &head.collectives {
        let Some(b) = base_colls.get(&(c.ctx, c.seq)) else {
            continue;
        };
        push(
            "collective",
            W_COLLECTIVE,
            format!("{} ctx={} seq={}", c.op, c.ctx, c.seq),
            "sync".to_string(),
            None,
            b.max_wait_us,
            c.max_wait_us,
            &mut findings,
        );
    }

    // Ranks, joined on rank id.
    let base_ranks: BTreeMap<usize, &RankDigest> = base.ranks.iter().map(|r| (r.rank, r)).collect();
    for r in &head.ranks {
        let Some(b) = base_ranks.get(&r.rank) else {
            continue;
        };
        push(
            "rank",
            W_RANK,
            format!("rank {}", r.rank),
            "busy".to_string(),
            None,
            b.busy_us,
            r.busy_us,
            &mut findings,
        );
    }

    findings.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then(a.kind.cmp(b.kind))
            .then(a.subject.cmp(&b.subject))
            .then(a.phase.cmp(&b.phase))
    });
    findings.truncate(MAX_FINDINGS);

    DiffReport {
        base_label: base.label.clone(),
        head_label: head.label.clone(),
        wall_base_us: base.wall_us,
        wall_head_us: head.wall_us,
        path_phases,
        findings,
    }
}

impl DiffReport {
    /// The human-readable form of the report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== simtrace diff: {} -> {} ==\n",
            self.base_label, self.head_label
        ));
        out.push_str(&format!(
            "wall: {:.1} -> {:.1} us ({})\n",
            self.wall_base_us,
            self.wall_head_us,
            pct(self.wall_base_us, self.wall_head_us)
        ));
        out.push_str("critical-path phases (us):\n");
        for (name, (b, h)) in &self.path_phases {
            out.push_str(&format!(
                "  {name:<10} {b:>12.1} -> {h:>12.1}  ({})\n",
                pct(*b, *h)
            ));
        }
        if self.findings.is_empty() {
            out.push_str("no findings above the noise floor\n");
        } else {
            out.push_str("ranked findings:\n");
            for (i, f) in self.findings.iter().enumerate() {
                out.push_str(&format!("  {:>2}. [{}] {}\n", i + 1, f.kind, f.text));
            }
        }
        out
    }

    /// The machine-readable form (`kind: "simtrace_diff"`).
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("kind".into(), Json::Str("simtrace_diff".into())),
            ("base".into(), Json::Str(self.base_label.clone())),
            ("head".into(), Json::Str(self.head_label.clone())),
            ("wall_base_us".into(), Json::Num(self.wall_base_us)),
            ("wall_head_us".into(), Json::Num(self.wall_head_us)),
            (
                "path_phases_us".into(),
                Json::Obj(
                    self.path_phases
                        .iter()
                        .map(|(name, (b, h))| {
                            (
                                name.clone(),
                                Json::Obj(vec![
                                    ("base".into(), Json::Num(*b)),
                                    ("head".into(), Json::Num(*h)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "findings".into(),
                Json::Arr(
                    self.findings
                        .iter()
                        .map(|f| {
                            let mut members = vec![
                                ("kind".into(), Json::Str(f.kind.to_string())),
                                ("subject".into(), Json::Str(f.subject.clone())),
                                ("phase".into(), Json::Str(f.phase.clone())),
                            ];
                            if let Some((lo, hi)) = f.rounds {
                                members.push((
                                    "rounds".into(),
                                    Json::Arr(vec![Json::U64(lo), Json::U64(hi)]),
                                ));
                            }
                            members.extend([
                                ("base_us".into(), Json::Num(f.base_us)),
                                ("head_us".into(), Json::Num(f.head_us)),
                                ("score".into(), Json::Num(f.score)),
                                ("text".into(), Json::Str(f.text.clone())),
                            ]);
                            Json::Obj(members)
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    /// Two ranks, two exchange rounds per call, one OST serving each
    /// round. `slow_ost_us` inflates OST 1's second-round service and
    /// the requester's io phase by that much.
    fn run(slow_ost_us: f64) -> RunDigest {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        let r1 = sink.recorder(TrackKey::Rank(1));
        let rdv = |straggler: u64| {
            vec![
                ("ctx", 0u64.into()),
                ("seq", 1u64.into()),
                ("n", 2u64.into()),
                ("straggler", straggler.into()),
            ]
        };
        let e = 100.0 + slow_ost_us;
        for rec in [&r0, &r1] {
            rec.span("round", "write_round", 0.0, 50.0, vec![
                ("round", 0u64.into()),
                ("of", 2u64.into()),
            ]);
            rec.span("phase", "io", 0.0, 50.0, vec![]);
            rec.span("round", "write_round", 50.0, e, vec![
                ("round", 1u64.into()),
                ("of", 2u64.into()),
            ]);
            rec.span("phase", "io", 50.0, e, vec![]);
        }
        r0.span("rdv", "barrier", e, e + 10.0, rdv(1));
        r0.span("phase", "sync", e, e + 10.0, vec![]);
        r1.span("rdv", "barrier", e + 10.0, e + 10.0, rdv(1));
        let ost = sink.recorder(TrackKey::Ost(1));
        ost.span("ost", "serve", 0.0, 40.0, vec![
            ("bytes", 4000u64.into()),
            ("rank", 0u64.into()),
        ]);
        ost.span("ost", "serve", 55.0, 95.0 + slow_ost_us, vec![
            ("bytes", 4000u64.into()),
            ("rank", 1u64.into()),
        ]);
        digest(&sink.finish(), if slow_ost_us > 0.0 { "head" } else { "base" }).unwrap()
    }

    #[test]
    fn digest_captures_rounds_and_osts() {
        let d = run(0.0);
        assert_eq!(d.wall_us, 110.0);
        assert_eq!(d.rounds.len(), 2);
        assert_eq!(d.rounds[0].phases_us["io"], 100.0); // both ranks
        assert_eq!(d.osts.len(), 1);
        assert_eq!(d.osts[0].busy_us, 80.0);
        // Round binning: first serve in round 0, second in round 1.
        assert_eq!(d.osts[0].round_busy_us[&(0, 0)], 40.0);
        assert_eq!(d.osts[0].round_busy_us[&(0, 1)], 40.0);
        assert_eq!(d.collectives.len(), 1);
    }

    #[test]
    fn digest_round_trips_through_json() {
        let d = run(25.0);
        let text = digest_json(&d);
        let back = digest_from_json(&text).unwrap();
        assert_eq!(back, d);
        assert_eq!(digest_json(&back), text);
    }

    #[test]
    fn diff_ranks_the_slow_ost_first_with_the_right_round() {
        let base = run(0.0);
        let head = run(25.0);
        let report = diff(&base, &head);
        assert!(!report.findings.is_empty());
        let top = &report.findings[0];
        assert_eq!(top.kind, "ost", "top finding: {}", top.text);
        assert_eq!(top.phase, "io");
        assert_eq!(top.subject, "ost 1");
        assert_eq!(top.rounds, Some((1, 1)), "round localization: {}", top.text);
        assert!(top.text.contains("io grew"), "{}", top.text);
        assert!(top.text.contains("ost 1"), "{}", top.text);
        assert!(top.text.contains("round 1"), "{}", top.text);
        // The report is reproducible.
        assert_eq!(report, diff(&base, &head));
        assert_eq!(report.to_json(), diff(&base, &head).to_json());
    }

    #[test]
    fn identical_digests_produce_no_findings() {
        let d = run(0.0);
        let report = diff(&d, &d);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.render_text().contains("no findings"));
    }
}
