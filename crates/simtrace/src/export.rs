//! Artifact export: Chrome/Perfetto trace-event JSON, metrics JSON, and
//! the collective-wall attribution derived from rendezvous spans.

use crate::json::Json;
use crate::sink::{ArgValue, Event, Hist, Trace, TrackData, TrackKey};
use std::collections::BTreeMap;

/// Perfetto "process" id used for storage (OST) tracks, far above any
/// plausible node id so the storage lane groups separately from compute.
const STORAGE_PID: u64 = 1_000_000;

/// Perfetto (pid, tid) for a track identity (shared with the streamed
/// exporter, which has no `TrackData` in memory).
pub(crate) fn track_ids_for(key: TrackKey, node: Option<usize>) -> (u64, u64) {
    match key {
        TrackKey::Rank(r) => (node.unwrap_or(0) as u64, r as u64),
        TrackKey::Ost(o) => (STORAGE_PID, o as u64),
    }
}

fn track_ids(track: &TrackData) -> (u64, u64) {
    track_ids_for(track.key, track.node)
}

fn args_json(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(v) => Json::U64(*v),
                    ArgValue::F64(v) => Json::Num(*v),
                    ArgValue::Str(s) => Json::Str(s.to_string()),
                };
                (k.to_string(), value)
            })
            .collect(),
    )
}

/// The Perfetto metadata events for a set of tracks: `process_name`
/// records in pid order, then one `thread_name` record per track in
/// track order. Shared by the in-memory and streamed exporters so both
/// emit identical bytes.
pub(crate) fn meta_events_json(tracks: &[(TrackKey, Option<usize>)]) -> Vec<Json> {
    let mut thread_metas: Vec<Json> = Vec::new();
    let mut named_processes: BTreeMap<u64, String> = BTreeMap::new();
    for (key, node) in tracks {
        let (pid, tid) = track_ids_for(*key, *node);
        let process_name = match key {
            TrackKey::Rank(_) => format!("node{}", node.unwrap_or(0)),
            TrackKey::Ost(_) => "storage".to_string(),
        };
        named_processes.entry(pid).or_insert(process_name);
        let thread_name = match key {
            TrackKey::Rank(r) => format!("rank {r}"),
            TrackKey::Ost(o) => format!("ost {o}"),
        };
        thread_metas.push(Json::Obj(vec![
            ("ph".into(), Json::Str("M".into())),
            ("name".into(), Json::Str("thread_name".into())),
            ("pid".into(), Json::U64(pid)),
            ("tid".into(), Json::U64(tid)),
            (
                "args".into(),
                Json::Obj(vec![("name".into(), Json::Str(thread_name))]),
            ),
        ]));
    }
    let mut meta: Vec<Json> = named_processes
        .iter()
        .map(|(pid, name)| {
            Json::Obj(vec![
                ("ph".into(), Json::Str("M".into())),
                ("name".into(), Json::Str("process_name".into())),
                ("pid".into(), Json::U64(*pid)),
                ("tid".into(), Json::U64(0)),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(name.clone()))]),
                ),
            ])
        })
        .collect();
    meta.append(&mut thread_metas);
    meta
}

/// One event's Chrome trace-event object (shared with the streamed
/// exporter).
pub(crate) fn event_json(event: &Event, pid: u64, tid: u64) -> Json {
    match event {
        Event::Span {
            cat,
            name,
            start_us,
            dur_us,
            args,
        } => Json::Obj(vec![
            ("name".into(), Json::Str(name.to_string())),
            ("cat".into(), Json::Str((*cat).to_string())),
            ("ph".into(), Json::Str("X".into())),
            ("ts".into(), Json::Num(*start_us)),
            ("dur".into(), Json::Num(*dur_us)),
            ("pid".into(), Json::U64(pid)),
            ("tid".into(), Json::U64(tid)),
            ("args".into(), args_json(args)),
        ]),
        Event::Instant { cat, name, ts_us, args } => Json::Obj(vec![
            ("name".into(), Json::Str(name.to_string())),
            ("cat".into(), Json::Str((*cat).to_string())),
            ("ph".into(), Json::Str("i".into())),
            ("s".into(), Json::Str("t".into())),
            ("ts".into(), Json::Num(*ts_us)),
            ("pid".into(), Json::U64(pid)),
            ("tid".into(), Json::U64(tid)),
            ("args".into(), args_json(args)),
        ]),
        Event::Counter { name, ts_us, value } => Json::Obj(vec![
            ("name".into(), Json::Str((*name).to_string())),
            ("ph".into(), Json::Str("C".into())),
            ("ts".into(), Json::Num(*ts_us)),
            ("pid".into(), Json::U64(pid)),
            ("tid".into(), Json::U64(tid)),
            (
                "args".into(),
                Json::Obj(vec![("value".into(), Json::Num(*value))]),
            ),
        ]),
    }
}

/// Render a merged trace as Chrome trace-event JSON (the format Perfetto
/// and `chrome://tracing` load): rank → "thread", node → "process",
/// virtual microseconds → `ts`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let identities: Vec<(TrackKey, Option<usize>)> =
        trace.tracks.iter().map(|t| (t.key, t.node)).collect();
    let mut events = meta_events_json(&identities);
    for track in &trace.tracks {
        let (pid, tid) = track_ids(track);
        for event in &track.events {
            events.push(event_json(event, pid, tid));
        }
    }
    Json::Obj(vec![
        ("displayTimeUnit".into(), Json::Str("ms".into())),
        ("traceEvents".into(), Json::Arr(events)),
    ])
    .pretty()
}

fn hist_json(h: &Hist) -> Json {
    Json::Obj(vec![
        ("count".into(), Json::U64(h.count)),
        ("sum".into(), Json::Num(h.sum)),
        ("min".into(), Json::Num(h.min)),
        ("max".into(), Json::Num(h.max)),
        ("mean".into(), Json::Num(h.mean())),
        (
            "log2_buckets".into(),
            Json::Obj(
                h.buckets
                    .iter()
                    .map(|(b, n)| (b.to_string(), Json::U64(*n)))
                    .collect(),
            ),
        ),
    ])
}

fn span_totals(track: &TrackData) -> BTreeMap<String, f64> {
    let mut totals = BTreeMap::new();
    for event in &track.events {
        if let Event::Span { cat, name, dur_us, .. } = event {
            *totals.entry(format!("{cat}/{name}")).or_insert(0.0) += dur_us;
        }
    }
    totals
}

/// Render the machine-readable metrics document: per-track counters,
/// histogram summaries and span-duration totals, plus cross-track totals.
/// `bench/src/bin/report.rs` folds these into its tables.
pub fn metrics_json(trace: &Trace) -> String {
    let mut total_counters: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total_hists: BTreeMap<&'static str, Hist> = BTreeMap::new();
    let mut total_spans: BTreeMap<String, f64> = BTreeMap::new();

    let mut tracks_json = Vec::new();
    for track in &trace.tracks {
        for (name, v) in &track.counters {
            *total_counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &track.hists {
            total_hists.entry(name).or_default().merge(h);
        }
        let spans = span_totals(track);
        for (name, us) in &spans {
            *total_spans.entry(name.clone()).or_insert(0.0) += us;
        }

        let mut members: Vec<(String, Json)> = vec![
            ("track".into(), Json::Str(track.key.label())),
        ];
        if let TrackKey::Rank(_) = track.key {
            members.push(("node".into(), Json::U64(track.node.unwrap_or(0) as u64)));
        }
        members.push((
            "counters".into(),
            Json::Obj(
                track
                    .counters
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::U64(*v)))
                    .collect(),
            ),
        ));
        members.push((
            "histograms".into(),
            Json::Obj(
                track
                    .hists
                    .iter()
                    .map(|(k, h)| (k.to_string(), hist_json(h)))
                    .collect(),
            ),
        ));
        members.push((
            "span_totals_us".into(),
            Json::Obj(
                spans
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ));
        tracks_json.push(Json::Obj(members));
    }

    Json::Obj(vec![
        ("kind".into(), Json::Str("simtrace_metrics".into())),
        ("tracks".into(), Json::Arr(tracks_json)),
        (
            "totals".into(),
            Json::Obj(vec![
                (
                    "counters".into(),
                    Json::Obj(
                        total_counters
                            .iter()
                            .map(|(k, v)| (k.to_string(), Json::U64(*v)))
                            .collect(),
                    ),
                ),
                (
                    "histograms".into(),
                    Json::Obj(
                        total_hists
                            .iter()
                            .map(|(k, h)| (k.to_string(), hist_json(h)))
                            .collect(),
                    ),
                ),
                (
                    "span_totals_us".into(),
                    Json::Obj(
                        total_spans
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::Num(*v)))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
    .pretty()
}

/// One global (or subgroup) collective reconstructed from the rendezvous
/// spans every participant carries.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveOp {
    /// Operation name (`barrier`, `allgather`, …).
    pub op: String,
    /// Communicator context id.
    pub ctx: u64,
    /// Rendezvous generation (the per-communicator collective sequence).
    pub seq: u64,
    /// Number of ranks that met at this rendezvous.
    pub participants: u64,
    /// Global rank whose late arrival set the meeting time.
    pub straggler: usize,
    /// Virtual µs at which the last participant arrived.
    pub last_arrival_us: f64,
    /// Largest wait among participants (earliest arrival's delta), µs.
    pub max_wait_us: f64,
    /// Sum of every participant's wait, µs.
    pub total_wait_us: f64,
}

/// Reconstruct every collective op from `rdv` spans, ordered by
/// completion time (then context and sequence for determinism).
pub fn collective_ops(trace: &Trace) -> Vec<CollectiveOp> {
    let mut by_instance: BTreeMap<(u64, u64), CollectiveOp> = BTreeMap::new();
    for track in trace.rank_tracks() {
        for event in &track.events {
            let Event::Span {
                cat: "rdv",
                name,
                start_us,
                dur_us,
                args,
            } = event
            else {
                continue;
            };
            let arg_u64 = |key: &str| {
                args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
                    ArgValue::U64(v) => Some(*v),
                    _ => None,
                })
            };
            let (Some(ctx), Some(seq)) = (arg_u64("ctx"), arg_u64("seq")) else {
                continue;
            };
            let entry = by_instance.entry((ctx, seq)).or_insert_with(|| CollectiveOp {
                op: name.to_string(),
                ctx,
                seq,
                participants: arg_u64("n").unwrap_or(0),
                straggler: arg_u64("straggler").unwrap_or(0) as usize,
                last_arrival_us: start_us + dur_us,
                max_wait_us: 0.0,
                total_wait_us: 0.0,
            });
            entry.max_wait_us = entry.max_wait_us.max(*dur_us);
            entry.total_wait_us += dur_us;
            entry.last_arrival_us = entry.last_arrival_us.max(start_us + dur_us);
        }
    }
    let mut ops: Vec<CollectiveOp> = by_instance.into_values().collect();
    ops.sort_by(|a, b| {
        a.last_arrival_us
            .total_cmp(&b.last_arrival_us)
            .then(a.ctx.cmp(&b.ctx))
            .then(a.seq.cmp(&b.seq))
    });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{TraceSink, TrackKey};
    use crate::json::Json;

    fn sample_trace() -> Trace {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder_on_node(TrackKey::Rank(0), Some(0));
        let r1 = sink.recorder_on_node(TrackKey::Rank(1), Some(0));
        // rank 1 arrives last -> straggler 1; rank 0 waits 5 µs.
        r0.span(
            "rdv",
            "barrier",
            10.0,
            15.0,
            vec![
                ("ctx", 0u64.into()),
                ("seq", 1u64.into()),
                ("n", 2u64.into()),
                ("straggler", 1u64.into()),
            ],
        );
        r1.span(
            "rdv",
            "barrier",
            15.0,
            15.0,
            vec![
                ("ctx", 0u64.into()),
                ("seq", 1u64.into()),
                ("n", 2u64.into()),
                ("straggler", 1u64.into()),
            ],
        );
        r0.span("phase", "Sync", 10.0, 16.0, vec![]);
        r0.count("coll.calls", 1);
        r0.observe("coll.bytes", 64.0);
        let ost = sink.recorder(TrackKey::Ost(0));
        ost.span("ost", "serve", 20.0, 30.0, vec![("bytes", 4096u64.into())]);
        ost.counter("ost.queue_depth", 20.0, 1.0);
        sink.finish()
    }

    #[test]
    fn chrome_export_is_valid_json_with_metadata() {
        let text = chrome_trace_json(&sample_trace());
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap())
            .collect();
        assert!(phases.contains(&"M"));
        assert!(phases.contains(&"X"));
        assert!(phases.contains(&"C"));
        // Storage process must be present and named.
        let storage = events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("process_name")
                && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    == Some("storage")
        });
        assert!(storage);
        // Span events carry µs timestamps and durations.
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .unwrap();
        assert!(span.get("ts").unwrap().as_f64().is_some());
        assert!(span.get("dur").unwrap().as_f64().is_some());
    }

    #[test]
    fn metrics_export_aggregates_totals() {
        let text = metrics_json(&sample_trace());
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("simtrace_metrics"));
        let totals = doc.get("totals").unwrap();
        assert_eq!(
            totals.get("counters").unwrap().get("coll.calls").unwrap().as_u64(),
            Some(1)
        );
        let sync = totals
            .get("span_totals_us")
            .unwrap()
            .get("phase/Sync")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((sync - 6.0).abs() < 1e-9);
        let hist = totals.get("histograms").unwrap().get("coll.bytes").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn collective_ops_attribute_straggler_and_waits() {
        let ops = collective_ops(&sample_trace());
        assert_eq!(ops.len(), 1);
        let op = &ops[0];
        assert_eq!(op.op, "barrier");
        assert_eq!(op.straggler, 1);
        assert_eq!(op.participants, 2);
        assert!((op.max_wait_us - 5.0).abs() < 1e-9);
        assert!((op.total_wait_us - 5.0).abs() < 1e-9);
        assert!((op.last_arrival_us - 15.0).abs() < 1e-9);
    }
}
