//! Host-time profiler (`hostprof`): wall-clock attribution for the
//! simulator's own hot paths.
//!
//! Everything else in this crate measures **virtual** time; this module
//! measures the **host** time the simulator spends producing it — fiber
//! context switches, mailbox delivery, pooled-buffer churn, datatype
//! flattening, two-phase pack/unpack memcpy, OST bookkeeping, and trace
//! recording itself. It exists so host-performance work (e.g. sharding
//! the fiber executor) starts from measured sinks instead of guesses.
//!
//! # Design
//!
//! * **Static site registry.** Probe sites are a fixed enum ([`Site`]);
//!   names, subsystems and ids are compile-time constants. No
//!   registration, no string hashing on the hot path.
//! * **Scoped timers, thread-local rings.** [`scope`] pushes the site
//!   onto a thread-local stack and, on drop, records one
//!   `(path, duration)` sample into a fixed-capacity [`RingBuf`].
//!   Paths encode up to [`MAX_DEPTH`] nested sites in one `u64`, so a
//!   sample is 16 bytes and recording never allocates. A full ring
//!   folds into the thread's preallocated aggregate table (amortized,
//!   off the per-sample path).
//! * **Runtime gate.** Every probe starts with one relaxed atomic load
//!   ([`enabled`]); disarmed probes do nothing else. The `hostperf`
//!   A/B gate in CI holds this runtime-off overhead under 2% against a
//!   build with the probes compiled out.
//! * **Compile-time off.** Building `simtrace` with the `hostprof-off`
//!   feature replaces the whole API with inlineable no-ops, so call
//!   sites in other crates compile to nothing (the zero-cost baseline
//!   the overhead gate compares against).
//! * **Determinism.** Nothing here touches virtual time: samples are
//!   host-side only and are published through [`collect`], never
//!   through traces, digests or metrics JSON. Virtual-time artifacts
//!   are byte-identical with profiling on or off (asserted by
//!   `bench/tests/hostprof_determinism.rs`), extending the rule that
//!   host timing never enters deterministic artifacts.
//!
//! # Fiber rule
//!
//! A scoped timer must never span a fiber yield: the fiber executor
//! multiplexes many ranks on one OS thread, so a scope crossing a yield
//! would absorb *other* fibers' runtime. Probe sites are therefore
//! placed only around non-yielding sections; the scheduler itself times
//! each fiber slice (resume → suspend) as the [`Site::FiberRun`] frame,
//! which leaf probes nest under.
//!
//! # Example
//!
//! ```
//! use simtrace::host;
//!
//! host::reset();
//! host::set_enabled(true);
//! {
//!     let _outer = host::scope(host::Site::Scenario);
//!     let _inner = host::scope(host::Site::PoolTake);
//! }
//! host::set_enabled(false);
//! let report = host::collect();
//! # #[cfg(not(feature = "hostprof-off"))]
//! assert!(report.paths.iter().any(|p| p.names().ends_with("pool_take")));
//! ```

/// Deepest scope nesting a sample path can encode (one byte per level).
/// Deeper scopes still run; their samples fold into the deepest
/// representable ancestor path.
pub const MAX_DEPTH: usize = 8;

// ---------------------------------------------------------------------
// Site registry
// ---------------------------------------------------------------------

/// A probe site: one named section of simulator host work. The set is
/// closed on purpose — sites are identified by their discriminant on
/// the hot path and carry their name/subsystem as compile-time data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Site {
    /// Whole-scenario root frame opened by the driver binary; its self
    /// time is everything no finer probe accounts for (setup, workload
    /// verification, result folding).
    Scenario = 0,
    /// Fiber scheduler: run-queue bookkeeping, context-switch cost and
    /// stall detection (self time of the whole `run_fibers` loop minus
    /// the fiber slices nested inside it).
    FiberSched,
    /// One fiber slice: resume → suspend. Self time is the simulated
    /// rank's own code between the finer probes below.
    FiberRun,
    /// Mailbox packet deposit on the sender side (queue push + targeted
    /// notify).
    MboxDeliver,
    /// Mailbox receive matching: one lock-held check iteration of the
    /// blocking receive loop (never the wait itself).
    MboxRecv,
    /// `waitall` completion bookkeeping in simmpi after all packets are
    /// in hand (clock advance, binding-edge search, trace emission).
    P2pWaitall,
    /// Pooled scratch-buffer acquisition ([`IoBuffer`] backing stores).
    ///
    /// [`IoBuffer`]: ../../simnet/enum.IoBuffer.html
    PoolTake,
    /// Scratch-buffer return to the per-thread pool.
    PoolPut,
    /// `Datatype::flatten_cached` lookup (hash of the type tree) and,
    /// on a miss, the full flatten walk.
    Flatten,
    /// Two-phase pack: gathering user-buffer pieces into send payloads
    /// (sender side of the exchange, plus the read-path carve-out).
    Pack,
    /// Two-phase unpack: scattering payloads into the aggregator window
    /// or the user buffer (receiver-side memcpy).
    Unpack,
    /// OST serve bookkeeping under the state mutex (queue maintenance,
    /// jitter draw, service arithmetic, trace emission) — never the
    /// admission gate, which can block.
    OstServe,
    /// TraceSink event append (so tracing overhead is self-measured).
    TraceRecord,
    /// Streaming-sink chunk spill to disk.
    TraceSpill,
    /// Integrity checksum computation: FNV-1a over packed piece payloads
    /// (sender side) and at-rest page sums on the simfs write path.
    CksumCompute,
    /// Integrity checksum verification: trailer checks at unpack and
    /// stored-sum checks on the simfs read/scrub path.
    CksumVerify,
    /// Collective-read data sieving: hole-density accounting plus the
    /// per-run carve-out of requested pieces from sieved read buffers
    /// (the read-side analogue of [`Site::Pack`], active only when the
    /// `cb_ds_read` hint is on).
    SieveRead,
    /// Run coalescing: merging adjacent/overlapping piece requests into
    /// maximal contiguous extents, in the read aggregators and in the
    /// intermediate-view physical-run reader.
    RunCoalesce,
}

/// Number of probe sites in the registry.
pub const SITE_COUNT: usize = 18;

/// Static description of one site.
struct SiteInfo {
    name: &'static str,
    subsystem: &'static str,
}

const SITES: [SiteInfo; SITE_COUNT] = [
    SiteInfo { name: "scenario", subsystem: "bench" },
    SiteInfo { name: "fiber_sched", subsystem: "simnet" },
    SiteInfo { name: "fiber_run", subsystem: "simnet" },
    SiteInfo { name: "mbox_deliver", subsystem: "simnet" },
    SiteInfo { name: "mbox_recv", subsystem: "simnet" },
    SiteInfo { name: "p2p_waitall", subsystem: "simmpi" },
    SiteInfo { name: "pool_take", subsystem: "simnet" },
    SiteInfo { name: "pool_put", subsystem: "simnet" },
    SiteInfo { name: "flatten_cached", subsystem: "mpiio" },
    SiteInfo { name: "twophase_pack", subsystem: "mpiio" },
    SiteInfo { name: "twophase_unpack", subsystem: "mpiio" },
    SiteInfo { name: "ost_serve", subsystem: "simfs" },
    SiteInfo { name: "trace_record", subsystem: "simtrace" },
    SiteInfo { name: "trace_spill", subsystem: "simtrace" },
    SiteInfo { name: "cksum_compute", subsystem: "integrity" },
    SiteInfo { name: "cksum_verify", subsystem: "integrity" },
    SiteInfo { name: "sieve_read", subsystem: "mpiio" },
    SiteInfo { name: "run_coalesce", subsystem: "parcoll" },
];

impl Site {
    /// The site's short name (stable; used in collapsed stacks and
    /// report rows).
    pub fn name(self) -> &'static str {
        SITES[self as usize].name
    }

    /// The crate-level subsystem the site belongs to.
    pub fn subsystem(self) -> &'static str {
        SITES[self as usize].subsystem
    }

    fn from_id(id: u8) -> Option<Site> {
        if (id as usize) < SITE_COUNT {
            // Safety not needed: match keeps this fully safe code.
            Some(match id {
                0 => Site::Scenario,
                1 => Site::FiberSched,
                2 => Site::FiberRun,
                3 => Site::MboxDeliver,
                4 => Site::MboxRecv,
                5 => Site::P2pWaitall,
                6 => Site::PoolTake,
                7 => Site::PoolPut,
                8 => Site::Flatten,
                9 => Site::Pack,
                10 => Site::Unpack,
                11 => Site::OstServe,
                12 => Site::TraceRecord,
                13 => Site::TraceSpill,
                14 => Site::CksumCompute,
                15 => Site::CksumVerify,
                16 => Site::SieveRead,
                17 => Site::RunCoalesce,
                _ => unreachable!(),
            })
        } else {
            None
        }
    }
}

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// A monotone host-side event counter. Like timer samples these are
/// host-execution facts (they depend on the executor and on pooling
/// mode), so they are published only through [`collect`] — never
/// through the deterministic metrics export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Counter {
    /// `flatten_cached` served from the per-thread cache.
    FlattenHit = 0,
    /// `flatten_cached` had to run the full flatten walk.
    FlattenMiss,
    /// Scratch-buffer request satisfied by a recycled backing store.
    PoolReuse,
    /// Scratch-buffer request that fell through to a fresh allocation
    /// (pool empty, pooling off, or size outside the pooled range).
    PoolMiss,
}

/// Number of counters in the registry.
pub const COUNTER_COUNT: usize = 4;

const COUNTER_NAMES: [&str; COUNTER_COUNT] =
    ["flatten_hit", "flatten_miss", "pool_reuse", "pool_miss"];

impl Counter {
    /// The counter's short name (stable; used in report rows).
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }
}

// ---------------------------------------------------------------------
// Ring buffer
// ---------------------------------------------------------------------

/// Fixed-capacity FIFO ring. Never reallocates after construction: a
/// push into a full ring **drops the sample and counts it** in
/// [`dropped`](RingBuf::dropped) instead of growing — the profiler
/// must never let bookkeeping distort the measurement with allocator
/// traffic. The profiler's own rings are drained into the aggregate
/// table before they fill, so drops there mean the drain itself failed.
#[derive(Debug)]
pub struct RingBuf<T> {
    buf: Vec<T>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl<T: Copy + Default> RingBuf<T> {
    /// New ring holding at most `cap` elements (capacity is fixed for
    /// the ring's lifetime).
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be positive");
        RingBuf { buf: vec![T::default(); cap], head: 0, len: 0, dropped: 0 }
    }

    /// Append `v`; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, v: T) -> bool {
        if self.len == self.buf.len() {
            self.dropped += 1;
            return false;
        }
        let idx = (self.head + self.len) % self.buf.len();
        self.buf[idx] = v;
        self.len += 1;
        true
    }

    /// Remove and return the oldest element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head];
        self.head = (self.head + 1) % self.buf.len();
        self.len -= 1;
        Some(v)
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Samples dropped by pushes into a full ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Discard all held elements (capacity and drop count unchanged).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

// ---------------------------------------------------------------------
// Report types (shared by both compile modes)
// ---------------------------------------------------------------------

/// Aggregate of one distinct scope path.
#[derive(Debug, Clone)]
pub struct PathRow {
    /// The nested sites, outermost first.
    pub sites: Vec<Site>,
    /// Times the exact path was sampled.
    pub count: u64,
    /// Total (inclusive) nanoseconds across those samples.
    pub total_ns: u64,
    /// Self nanoseconds: total minus the totals of direct child paths
    /// (clamped at zero against clock skew).
    pub self_ns: u64,
}

impl PathRow {
    /// The path as `outer;inner;...` (collapsed-stack frame syntax).
    pub fn names(&self) -> String {
        let parts: Vec<&str> = self.sites.iter().map(|s| s.name()).collect();
        parts.join(";")
    }

    /// The innermost site of the path.
    pub fn leaf(&self) -> Site {
        *self.sites.last().expect("paths are non-empty")
    }
}

/// Folded per-site attribution (self time summed over every path
/// ending at the site).
#[derive(Debug, Clone)]
pub struct SiteAgg {
    /// The site.
    pub site: Site,
    /// Total samples ending at this site.
    pub count: u64,
    /// Self nanoseconds attributed to this site.
    pub self_ns: u64,
}

/// Snapshot of everything the profiler gathered since the last
/// [`reset`]: per-path timing aggregates plus the counter values.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Distinct sampled paths, sorted by path (stable across runs of
    /// identical shape).
    pub paths: Vec<PathRow>,
    /// Counter values, in [`Counter`] declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// Samples dropped by full rings (0 in normal operation: rings
    /// drain into the aggregate table before they fill).
    pub dropped: u64,
    /// Per-thread drop counts, summed by thread name and sorted by it;
    /// only threads that dropped anything appear. With the sharded
    /// executor each worker records into its own ring, so a drop on one
    /// worker is reported against that worker's name instead of being
    /// silently folded into the total.
    pub dropped_by_thread: Vec<(String, u64)>,
}

impl Report {
    /// Total nanoseconds attributed to named sites (sum of self time
    /// over all paths — equals the inclusive total of the root frames).
    pub fn attributed_ns(&self) -> u64 {
        self.paths.iter().map(|p| p.self_ns).sum()
    }

    /// Fold self time by innermost site, descending by self time.
    pub fn by_site(&self) -> Vec<SiteAgg> {
        let mut agg: [(u64, u64); SITE_COUNT] = [(0, 0); SITE_COUNT];
        for p in &self.paths {
            let i = p.leaf() as usize;
            agg[i].0 += p.count;
            agg[i].1 += p.self_ns;
        }
        let mut out: Vec<SiteAgg> = (0..SITE_COUNT)
            .filter(|&i| agg[i].0 > 0)
            .map(|i| SiteAgg {
                site: Site::from_id(i as u8).expect("registry index"),
                count: agg[i].0,
                self_ns: agg[i].1,
            })
            .collect();
        out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.site.name().cmp(b.site.name())));
        out
    }

    /// Fold self time by subsystem, descending by self time.
    pub fn by_subsystem(&self) -> Vec<(&'static str, u64)> {
        let mut pairs: Vec<(&'static str, u64)> = Vec::new();
        for s in self.by_site() {
            let subsystem = s.site.subsystem();
            match pairs.iter_mut().find(|(name, _)| *name == subsystem) {
                Some((_, ns)) => *ns += s.self_ns,
                None => pairs.push((subsystem, s.self_ns)),
            }
        }
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        pairs
    }

    /// Render the report as collapsed stacks (`outer;inner self_ns`,
    /// one line per path), the input format of standard flamegraph
    /// tools (`flamegraph.pl`, inferno, speedscope).
    pub fn collapsed(&self) -> String {
        let mut out = String::new();
        for p in &self.paths {
            if p.self_ns == 0 {
                continue;
            }
            out.push_str(&p.names());
            out.push(' ');
            out.push_str(&p.self_ns.to_string());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Recording engine (compiled out under `hostprof-off`)
// ---------------------------------------------------------------------

#[cfg(not(feature = "hostprof-off"))]
mod engine {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
    use std::time::Instant;

    /// Staged samples per thread before a fold into the aggregate table.
    const RING_CAP: usize = 1024;

    /// Runtime gate: one relaxed load per disarmed probe.
    pub(super) static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Bumped by [`reset`]; thread states lazily clear and re-register
    /// when they observe a new epoch.
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    pub(super) static COUNTERS: [AtomicU64; COUNTER_COUNT] =
        [const { AtomicU64::new(0) }; COUNTER_COUNT];

    #[derive(Clone, Copy, Default)]
    struct Sample {
        path: u64,
        dur_ns: u64,
    }

    #[derive(Default)]
    pub(super) struct PathStat {
        pub(super) count: u64,
        pub(super) total_ns: u64,
    }

    /// Per-thread aggregate shared with the collector via the registry.
    struct ThreadAgg {
        /// The owning thread's name at registration time (executor
        /// workers are named `simnet-worker-<w>`); anonymous threads
        /// get their `ThreadId` rendering.
        name: String,
        stats: Mutex<HashMap<u64, PathStat>>,
        dropped: AtomicU64,
    }

    impl ThreadAgg {
        fn for_current_thread() -> Self {
            let t = std::thread::current();
            let name = match t.name() {
                Some(n) => n.to_string(),
                None => format!("{:?}", t.id()),
            };
            ThreadAgg {
                name,
                stats: Mutex::new(HashMap::new()),
                dropped: AtomicU64::new(0),
            }
        }
    }

    fn registry() -> &'static Mutex<Vec<Arc<ThreadAgg>>> {
        static REGISTRY: Mutex<Vec<Arc<ThreadAgg>>> = Mutex::new(Vec::new());
        &REGISTRY
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    struct ThreadState {
        epoch: u64,
        /// Site-id stack; the top's encoded path is in `path`.
        stack: Vec<u8>,
        /// Path key of the current scope: one byte per level (site id
        /// + 1), outermost in the highest occupied byte.
        path: u64,
        ring: RingBuf<Sample>,
        /// Ring drops already published to `agg` (the ring's counter is
        /// cumulative; only the delta is new on each flush).
        reported_drops: u64,
        agg: Arc<ThreadAgg>,
    }

    impl ThreadState {
        fn new() -> Self {
            let agg = Arc::new(ThreadAgg::for_current_thread());
            let epoch = EPOCH.load(Ordering::Relaxed);
            lock(registry()).push(Arc::clone(&agg));
            ThreadState {
                epoch,
                stack: Vec::with_capacity(2 * MAX_DEPTH),
                path: 0,
                ring: RingBuf::new(RING_CAP),
                reported_drops: 0,
                agg,
            }
        }

        /// Re-sync with the global epoch after a [`reset`]: discard
        /// stale samples and re-register the aggregate (reset cleared
        /// the registry). Open scopes keep their stack so drops stay
        /// balanced; their samples land in the fresh epoch.
        fn resync(&mut self) {
            let epoch = EPOCH.load(Ordering::Relaxed);
            if self.epoch != epoch {
                self.epoch = epoch;
                self.ring.clear();
                lock(&self.agg.stats).clear();
                self.agg.dropped.store(0, Ordering::Relaxed);
                lock(registry()).push(Arc::clone(&self.agg));
            }
        }

        fn flush(&mut self) {
            if !self.ring.is_empty() {
                let mut stats = lock(&self.agg.stats);
                while let Some(s) = self.ring.pop() {
                    let e = stats.entry(s.path).or_default();
                    e.count += 1;
                    e.total_ns += s.dur_ns;
                }
            }
            // The ring's drop counter is cumulative over its lifetime;
            // publish only what has not been reported yet.
            let total = self.ring.dropped();
            if total > self.reported_drops {
                self.agg
                    .dropped
                    .fetch_add(total - self.reported_drops, Ordering::Relaxed);
                self.reported_drops = total;
            }
        }

        fn record(&mut self, path: u64, dur_ns: u64) {
            if self.ring.len() == self.ring.capacity() {
                self.flush();
            }
            self.ring.push(Sample { path, dur_ns });
        }
    }

    impl Drop for ThreadState {
        fn drop(&mut self) {
            // Thread exit: publish whatever is still staged.
            self.flush();
        }
    }

    thread_local! {
        static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
    }

    pub(super) fn enter(site: Site) {
        let _ = STATE.try_with(|st| {
            let mut st = st.borrow_mut();
            st.resync();
            st.stack.push(site as u8);
            if st.stack.len() <= MAX_DEPTH {
                st.path = (st.path << 8) | (site as u64 + 1);
            }
        });
    }

    pub(super) fn exit(site: Site, dur_ns: u64) {
        let _ = STATE.try_with(|st| {
            let mut st = st.borrow_mut();
            let popped = st.stack.pop();
            debug_assert_eq!(
                popped,
                Some(site as u8),
                "hostprof scope imbalance: a scope crossed a yield or was dropped out of order"
            );
            let _ = popped;
            let path = st.path;
            if st.stack.len() < MAX_DEPTH {
                st.path >>= 8;
            }
            st.record(path, dur_ns);
        });
    }

    /// Scoped timer handle; records on drop. Inert when created while
    /// the profiler is disabled.
    pub struct ScopeGuard {
        site: Site,
        start: Option<Instant>,
    }

    impl ScopeGuard {
        /// Disarmed probes must stay one load + one branch at the call
        /// site: only the check is inlined, the armed path is outlined
        /// and `#[cold]` so the hot loops' codegen is undisturbed.
        #[inline(always)]
        pub(super) fn new(site: Site) -> ScopeGuard {
            if ENABLED.load(Ordering::Relaxed) {
                Self::new_armed(site)
            } else {
                ScopeGuard { site, start: None }
            }
        }

        #[cold]
        #[inline(never)]
        fn new_armed(site: Site) -> ScopeGuard {
            enter(site);
            ScopeGuard { site, start: Some(Instant::now()) }
        }

        #[cold]
        #[inline(never)]
        fn finish(&mut self) {
            if let Some(t0) = self.start.take() {
                let dur = t0.elapsed();
                exit(self.site, dur.as_nanos() as u64);
            }
        }
    }

    impl Drop for ScopeGuard {
        #[inline(always)]
        fn drop(&mut self) {
            if self.start.is_some() {
                self.finish();
            }
        }
    }

    pub(super) fn reset_impl() {
        for c in &COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
        lock(registry()).clear();
        EPOCH.fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn collect_impl() -> Report {
        // Publish the calling thread's staged samples first (the fiber
        // executor runs every rank on this thread, so this is usually
        // all of them).
        let _ = STATE.try_with(|st| st.borrow_mut().flush());
        let mut merged: HashMap<u64, PathStat> = HashMap::new();
        let mut dropped = 0u64;
        let mut by_thread: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for agg in lock(registry()).iter() {
            for (path, stat) in lock(&agg.stats).iter() {
                let e = merged.entry(*path).or_default();
                e.count += stat.count;
                e.total_ns += stat.total_ns;
            }
            let d = agg.dropped.load(Ordering::Relaxed);
            dropped += d;
            if d > 0 {
                *by_thread.entry(agg.name.clone()).or_default() += d;
            }
        }
        let mut keys: Vec<u64> = merged.keys().copied().collect();
        keys.sort_unstable();
        // Direct-child inclusive totals, for self-time computation.
        let mut child_ns: HashMap<u64, u64> = HashMap::new();
        for k in &keys {
            if let Some(parent) = parent_of(*k) {
                *child_ns.entry(parent).or_default() += merged[k].total_ns;
            }
        }
        let paths = keys
            .iter()
            .map(|k| {
                let stat = &merged[k];
                let nested = child_ns.get(k).copied().unwrap_or(0);
                PathRow {
                    sites: decode_path(*k),
                    count: stat.count,
                    total_ns: stat.total_ns,
                    self_ns: stat.total_ns.saturating_sub(nested),
                }
            })
            .collect();
        let counters = (0..COUNTER_COUNT)
            .map(|i| (COUNTER_NAMES[i], COUNTERS[i].load(Ordering::Relaxed)))
            .collect();
        Report {
            paths,
            counters,
            dropped,
            dropped_by_thread: by_thread.into_iter().collect(),
        }
    }

    /// Test-only: register `n` synthetic ring drops on the calling
    /// thread, as a full ring whose drain failed would.
    #[cfg(test)]
    pub(super) fn inject_drops_for_test(n: u64) {
        let _ = STATE.try_with(|st| {
            let mut st = st.borrow_mut();
            st.resync();
            st.agg.dropped.fetch_add(n, Ordering::Relaxed);
        });
    }

    fn parent_of(path: u64) -> Option<u64> {
        let parent = path >> 8;
        (parent != 0).then_some(parent)
    }

    fn decode_path(mut path: u64) -> Vec<Site> {
        let mut rev = Vec::new();
        while path != 0 {
            let id = (path & 0xFF) as u8 - 1;
            rev.push(Site::from_id(id).expect("encoded site id"));
            path >>= 8;
        }
        rev.reverse();
        rev
    }
}

#[cfg(not(feature = "hostprof-off"))]
pub use engine::ScopeGuard;

#[cfg(not(feature = "hostprof-off"))]
use std::sync::atomic::Ordering;

/// Is the profiler armed? Disarmed probes cost one relaxed load.
#[cfg(not(feature = "hostprof-off"))]
#[inline]
pub fn enabled() -> bool {
    engine::ENABLED.load(Ordering::Relaxed)
}

/// Arm or disarm the profiler process-wide. Purely host-side: virtual
/// time and every deterministic artifact are identical either way.
#[cfg(not(feature = "hostprof-off"))]
pub fn set_enabled(on: bool) {
    engine::ENABLED.store(on, Ordering::Relaxed);
}

/// Open a scoped timer on `site`; the sample is recorded when the
/// returned guard drops. Must not span a fiber yield (see module docs).
#[cfg(not(feature = "hostprof-off"))]
#[inline]
pub fn scope(site: Site) -> ScopeGuard {
    ScopeGuard::new(site)
}

/// Add `n` to a counter (no-op while disarmed). Like [`scope`], only
/// the armed check is inlined; the atomic add is outlined and cold.
#[cfg(not(feature = "hostprof-off"))]
#[inline(always)]
pub fn count(counter: Counter, n: u64) {
    #[cold]
    #[inline(never)]
    fn add(counter: Counter, n: u64) {
        engine::COUNTERS[counter as usize].fetch_add(n, Ordering::Relaxed);
    }
    if enabled() {
        add(counter, n);
    }
}

/// Discard all samples and counters gathered so far.
#[cfg(not(feature = "hostprof-off"))]
pub fn reset() {
    engine::reset_impl();
}

/// Snapshot the aggregates gathered since the last [`reset`] into a
/// [`Report`] (flushes the calling thread's staged samples first).
#[cfg(not(feature = "hostprof-off"))]
pub fn collect() -> Report {
    engine::collect_impl()
}

// ---------------------------------------------------------------------
// Compile-time-off stubs
// ---------------------------------------------------------------------

/// Inert scope handle of the `hostprof-off` build.
#[cfg(feature = "hostprof-off")]
pub struct ScopeGuard;

/// Always `false`: the probes are compiled out.
#[cfg(feature = "hostprof-off")]
#[inline(always)]
pub fn enabled() -> bool {
    false
}

/// No-op: the probes are compiled out.
#[cfg(feature = "hostprof-off")]
#[inline(always)]
pub fn set_enabled(_on: bool) {}

/// No-op scope: compiles to nothing at the call site.
#[cfg(feature = "hostprof-off")]
#[inline(always)]
pub fn scope(_site: Site) -> ScopeGuard {
    ScopeGuard
}

/// No-op counter: compiles to nothing at the call site.
#[cfg(feature = "hostprof-off")]
#[inline(always)]
pub fn count(_counter: Counter, _n: u64) {}

/// No-op: nothing to discard.
#[cfg(feature = "hostprof-off")]
#[inline(always)]
pub fn reset() {}

/// Always the empty report in the `hostprof-off` build.
#[cfg(feature = "hostprof-off")]
pub fn collect() -> Report {
    Report::default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overflow_drops_and_counts_without_reallocating() {
        let mut ring: RingBuf<u64> = RingBuf::new(4);
        for i in 0..4 {
            assert!(ring.push(i));
        }
        assert_eq!(ring.capacity(), 4);
        // Overflow: dropped, counted, capacity untouched.
        assert!(!ring.push(99));
        assert!(!ring.push(100));
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.capacity(), 4);
        assert_eq!(ring.len(), 4);
        // FIFO order survives, and the dropped values never appear.
        assert_eq!(ring.pop(), Some(0));
        assert!(ring.push(5));
        let rest: Vec<u64> = std::iter::from_fn(|| ring.pop()).collect();
        assert_eq!(rest, vec![1, 2, 3, 5]);
        assert_eq!(ring.dropped(), 2, "draining does not rewrite history");
    }

    #[test]
    fn ring_clear_keeps_capacity_and_drop_count() {
        let mut ring: RingBuf<u8> = RingBuf::new(2);
        ring.push(1);
        ring.push(2);
        ring.push(3);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.capacity(), 2);
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn site_registry_is_complete_and_named() {
        for id in 0..SITE_COUNT as u8 {
            let site = Site::from_id(id).expect("every id under SITE_COUNT resolves");
            assert_eq!(site as u8, id);
            assert!(!site.name().is_empty());
            assert!(!site.subsystem().is_empty());
        }
        assert!(Site::from_id(SITE_COUNT as u8).is_none());
    }

    /// The recording tests mutate process-global profiler state
    /// (enable flag, epoch, registry); serialize them.
    #[cfg(not(feature = "hostprof-off"))]
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[cfg(not(feature = "hostprof-off"))]
    #[test]
    fn dropped_samples_are_attributed_to_their_thread() {
        let _serial = recording_lock();
        std::thread::Builder::new()
            .name("drop-source".into())
            .spawn(|| {
                engine::inject_drops_for_test(3);
                engine::inject_drops_for_test(2);
            })
            .expect("spawn drop-source")
            .join()
            .expect("join drop-source");
        let report = collect();
        let per_thread = report
            .dropped_by_thread
            .iter()
            .find(|(name, _)| name == "drop-source")
            .expect("dropping thread reported by name");
        assert_eq!(per_thread.1, 5);
        assert!(report.dropped >= 5, "total covers the per-thread rows");
        assert_eq!(
            report.dropped_by_thread.iter().map(|(_, d)| d).sum::<u64>(),
            report.dropped,
            "per-thread rows tile the total"
        );
        reset();
        assert!(collect().dropped_by_thread.is_empty());
    }

    // The recording tests mutate process-global profiler state, so they
    // run as one test body.
    #[cfg(not(feature = "hostprof-off"))]
    #[test]
    fn scopes_nest_counters_count_and_reset_clears() {
        let _serial = recording_lock();
        reset();
        set_enabled(true);
        {
            let _outer = scope(Site::Scenario);
            for _ in 0..3 {
                let _inner = scope(Site::PoolTake);
                std::hint::black_box(0u64);
            }
            count(Counter::PoolReuse, 2);
            count(Counter::PoolMiss, 1);
        }
        set_enabled(false);
        // Disarmed probes record nothing.
        {
            let _ghost = scope(Site::Flatten);
            count(Counter::FlattenHit, 7);
        }
        let report = collect();
        assert_eq!(report.dropped, 0);
        let outer = report
            .paths
            .iter()
            .find(|p| p.names() == "scenario")
            .expect("root path present");
        let inner = report
            .paths
            .iter()
            .find(|p| p.names() == "scenario;pool_take")
            .expect("nested path present");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        assert!(
            outer.total_ns >= inner.total_ns,
            "inclusive parent covers child"
        );
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(!report.paths.iter().any(|p| p.leaf() == Site::Flatten));
        let counters: std::collections::BTreeMap<_, _> = report.counters.iter().copied().collect();
        assert_eq!(counters["pool_reuse"], 2);
        assert_eq!(counters["pool_miss"], 1);
        assert_eq!(counters["flatten_hit"], 0);
        // by_site folds self time by leaf; collapsed emits one frame
        // per nonzero-self path.
        let by_site = report.by_site();
        assert!(by_site.iter().any(|s| s.site == Site::PoolTake && s.count == 3));
        assert!(report.collapsed().contains("scenario;pool_take "));
        assert_eq!(
            report.attributed_ns(),
            outer.total_ns,
            "self times tile the root's inclusive total"
        );
        // Subsystem fold covers both sampled subsystems.
        let subs = report.by_subsystem();
        assert!(subs.iter().any(|(s, _)| *s == "bench"));
        assert!(subs.iter().any(|(s, _)| *s == "simnet"));
        // Reset forgets everything, including counters.
        reset();
        let empty = collect();
        assert!(empty.paths.is_empty());
        assert!(empty.counters.iter().all(|(_, v)| *v == 0));
    }

    #[cfg(not(feature = "hostprof-off"))]
    #[test]
    fn deep_nesting_folds_into_deepest_representable_ancestor() {
        let _serial = recording_lock();
        // Depth > MAX_DEPTH must not lose time or unbalance the stack.
        fn nest(depth: usize) {
            if depth == 0 {
                return;
            }
            let _g = scope(Site::Pack);
            nest(depth - 1);
        }
        // Serialize against the other recording test via reset-epoch
        // semantics: this test only asserts on its own thread's paths
        // being balanced, not on global counts.
        nest(MAX_DEPTH + 3);
        let report = collect();
        for p in &report.paths {
            assert!(p.sites.len() <= MAX_DEPTH);
        }
    }
}
