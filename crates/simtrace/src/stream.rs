//! On-disk event chunks for the streaming sink, and exporters that
//! never hold the whole run in memory.
//!
//! [`TraceSink::streaming`](crate::TraceSink::streaming) spills each
//! track's event buffer to `dir/track_<label>.jsonl` whenever it
//! exceeds the chunk length. One line = one event, as a compact JSON
//! array:
//!
//! ```text
//! ["S", cat, name, start_us, dur_us, [[key, value], ...]]   span
//! ["I", cat, name, ts_us, [[key, value], ...]]              instant
//! ["C", name, ts_us, value]                                 counter
//! ```
//!
//! The round trip is *type-faithful*: `u64` arguments serialize without
//! a decimal point and parse back as `u64`, floats keep Rust's
//! shortest-roundtrip formatting, and `&'static str` names come back
//! through a global interner (each distinct instrumentation string is
//! leaked once per process — there are dozens of them, not millions).
//! A spilled-and-reloaded track is therefore `==` to the in-memory one,
//! which is what makes [`StreamedTrace::export_chrome_to`] byte-identical
//! to [`chrome_trace_json`](crate::chrome_trace_json) over the same run.
//!
//! Memory bounds: collection holds ≤ `tracks × chunk_events` events;
//! [`StreamedTrace::series`] and [`StreamedTrace::export_chrome_to`]
//! re-read one track at a time, so post-processing holds one track's
//! events plus O(intervals) fold state. Spill-file *bytes* for rank
//! tracks are deterministic (append order is); OST chunk files reflect
//! host scheduling, but every reader re-sorts them with the same
//! comparator [`TraceSink::finish`](crate::TraceSink::finish) uses, so
//! all derived artifacts stay byte-reproducible.

use crate::export::{event_json, meta_events_json, track_ids_for};
use crate::json::Json;
use crate::series::{SeriesBuilder, SeriesConfig, TimeSeries};
use crate::sink::{ost_event_cmp, ArgValue, Event, Hist, Trace, TrackData, TrackKey};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Intern a string so it can stand in for the `&'static str` fields of
/// [`Event`]. Each distinct string leaks once per process.
fn intern(s: &str) -> &'static str {
    static POOL: Mutex<std::collections::BTreeSet<&'static str>> =
        Mutex::new(std::collections::BTreeSet::new());
    let mut pool = POOL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

fn args_to_json(args: &[(&'static str, ArgValue)]) -> Json {
    Json::Arr(
        args.iter()
            .map(|(k, v)| {
                let value = match v {
                    ArgValue::U64(v) => Json::U64(*v),
                    ArgValue::F64(v) => Json::Num(*v),
                    ArgValue::Str(s) => Json::Str(s.to_string()),
                };
                Json::Arr(vec![Json::Str((*k).to_string()), value])
            })
            .collect(),
    )
}

fn args_from_json(doc: &Json) -> Option<Vec<(&'static str, ArgValue)>> {
    doc.as_array()?
        .iter()
        .map(|pair| {
            let items = pair.as_array()?;
            let key = intern(items.first()?.as_str()?);
            let value = match items.get(1)? {
                Json::U64(v) => ArgValue::U64(*v),
                Json::Num(v) => ArgValue::F64(*v),
                Json::I64(v) => ArgValue::F64(*v as f64),
                Json::Str(s) => ArgValue::Str(Cow::Owned(s.clone())),
                _ => return None,
            };
            Some((key, value))
        })
        .collect()
}

/// Append one event's spill line (no trailing newline) to `out`.
pub(crate) fn event_line(event: &Event, out: &mut String) {
    let doc = match event {
        Event::Span {
            cat,
            name,
            start_us,
            dur_us,
            args,
        } => Json::Arr(vec![
            Json::Str("S".into()),
            Json::Str((*cat).to_string()),
            Json::Str(name.to_string()),
            Json::Num(*start_us),
            Json::Num(*dur_us),
            args_to_json(args),
        ]),
        Event::Instant { cat, name, ts_us, args } => Json::Arr(vec![
            Json::Str("I".into()),
            Json::Str((*cat).to_string()),
            Json::Str(name.to_string()),
            Json::Num(*ts_us),
            args_to_json(args),
        ]),
        Event::Counter { name, ts_us, value } => Json::Arr(vec![
            Json::Str("C".into()),
            Json::Str((*name).to_string()),
            Json::Num(*ts_us),
            Json::Num(*value),
        ]),
    };
    out.push_str(&doc.compact());
}

/// Parse one spill line back into an [`Event`].
pub(crate) fn parse_event_line(line: &str) -> Option<Event> {
    let doc = Json::parse(line).ok()?;
    let items = doc.as_array()?;
    match items.first()?.as_str()? {
        "S" => Some(Event::Span {
            cat: intern(items.get(1)?.as_str()?),
            name: Cow::Owned(items.get(2)?.as_str()?.to_string()),
            start_us: items.get(3)?.as_f64()?,
            dur_us: items.get(4)?.as_f64()?,
            args: args_from_json(items.get(5)?)?,
        }),
        "I" => Some(Event::Instant {
            cat: intern(items.get(1)?.as_str()?),
            name: Cow::Owned(items.get(2)?.as_str()?.to_string()),
            ts_us: items.get(3)?.as_f64()?,
            args: args_from_json(items.get(4)?)?,
        }),
        "C" => Some(Event::Counter {
            name: intern(items.get(1)?.as_str()?),
            ts_us: items.get(2)?.as_f64()?,
            value: items.get(3)?.as_f64()?,
        }),
        _ => None,
    }
}

/// One track's identity and in-memory metrics after a streamed run.
#[derive(Debug, Clone)]
pub struct StreamTrackMeta {
    /// Which rank or OST.
    pub key: TrackKey,
    /// Physical node hosting the rank, when known.
    pub node: Option<usize>,
    /// Number of events spilled for this track.
    pub events: u64,
    /// Monotone counters (kept in memory — O(names)).
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms (kept in memory).
    pub hists: BTreeMap<&'static str, Hist>,
    /// The track's chunk file (absent when the track never produced a
    /// timeline event).
    pub events_path: PathBuf,
}

/// Collection statistics of a streamed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Events recorded over the whole run.
    pub total_events: u64,
    /// Largest number of events resident in memory at any instant —
    /// the streamed run's event-memory high-water mark.
    pub peak_buffered: u64,
    /// Latest event end seen, virtual µs.
    pub wall_us: f64,
}

impl StreamStats {
    /// How many times smaller the resident event buffer stayed compared
    /// to buffering the whole run (what `TraceSink::enabled` does).
    pub fn reduction(&self) -> f64 {
        self.total_events as f64 / self.peak_buffered.max(1) as f64
    }
}

/// Handle over a finished streamed run: per-track metrics in memory,
/// events on disk. Produced by
/// [`TraceSink::finish_stream`](crate::TraceSink::finish_stream).
#[derive(Debug, Clone)]
pub struct StreamedTrace {
    dir: PathBuf,
    tracks: Vec<StreamTrackMeta>,
    stats: StreamStats,
}

impl StreamedTrace {
    pub(crate) fn new(dir: PathBuf, tracks: Vec<StreamTrackMeta>, stats: StreamStats) -> Self {
        StreamedTrace { dir, tracks, stats }
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Track metadata, ranks first then OSTs (the merge order).
    pub fn tracks(&self) -> &[StreamTrackMeta] {
        &self.tracks
    }

    /// Collection statistics.
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// One track's events in deterministic order (OST chunk files are
    /// re-sorted with the merge comparator).
    fn track_events(&self, meta: &StreamTrackMeta) -> Result<Vec<Event>, String> {
        if meta.events == 0 {
            return Ok(Vec::new());
        }
        let text = std::fs::read_to_string(&meta.events_path)
            .map_err(|e| format!("cannot read {}: {e}", meta.events_path.display()))?;
        let mut events = Vec::with_capacity(meta.events as usize);
        for line in text.lines() {
            events.push(
                parse_event_line(line)
                    .ok_or_else(|| format!("bad spill line in {}", meta.events_path.display()))?,
            );
        }
        if matches!(meta.key, TrackKey::Ost(_)) {
            events.sort_by(ost_event_cmp);
        }
        Ok(events)
    }

    /// Reload the whole run as an in-memory [`Trace`] (convenience for
    /// tests and small runs — this is the O(events) path the streaming
    /// mode exists to avoid).
    pub fn load(&self) -> Result<Trace, String> {
        let mut tracks = Vec::with_capacity(self.tracks.len());
        for meta in &self.tracks {
            tracks.push(TrackData {
                key: meta.key,
                node: meta.node,
                events: self.track_events(meta)?,
                counters: meta.counters.clone(),
                hists: meta.hists.clone(),
            });
        }
        Ok(Trace { tracks })
    }

    /// Fold the run into interval'd time-series, one track resident at
    /// a time. Byte-equivalent to
    /// [`series_from_trace`](crate::series::series_from_trace) over the
    /// same run.
    pub fn series(&self, cfg: SeriesConfig) -> Result<TimeSeries, String> {
        let mut builder = SeriesBuilder::new(cfg, self.stats.wall_us);
        for meta in &self.tracks {
            let events = self.track_events(meta)?;
            builder.fold_track(meta.key, events.iter());
        }
        Ok(builder.build())
    }

    /// Write the Chrome/Perfetto trace-event JSON to `path`, streaming
    /// one track at a time. The output is byte-identical to
    /// [`chrome_trace_json`](crate::chrome_trace_json) over the same
    /// run's in-memory trace.
    pub fn export_chrome_to(&self, path: &Path) -> Result<(), String> {
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let mut writer = std::io::BufWriter::new(file);
        let mut out = String::with_capacity(1 << 20);
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [");
        let mut wrote_any = false;
        let emit = |writer: &mut std::io::BufWriter<std::fs::File>,
                        out: &mut String,
                        json: &Json,
                        wrote_any: &mut bool|
         -> Result<(), String> {
            if *wrote_any {
                out.push(',');
            }
            *wrote_any = true;
            out.push_str("\n    ");
            json.pretty_into(out, 2);
            if out.len() >= (1 << 20) {
                writer
                    .write_all(out.as_bytes())
                    .map_err(|e| format!("write failed: {e}"))?;
                out.clear();
            }
            Ok(())
        };

        let identities: Vec<(TrackKey, Option<usize>)> =
            self.tracks.iter().map(|t| (t.key, t.node)).collect();
        for meta_event in meta_events_json(&identities) {
            emit(&mut writer, &mut out, &meta_event, &mut wrote_any)?;
        }
        for meta in &self.tracks {
            let (pid, tid) = track_ids_for(meta.key, meta.node);
            for event in self.track_events(meta)? {
                emit(&mut writer, &mut out, &event_json(&event, pid, tid), &mut wrote_any)?;
            }
        }
        if wrote_any {
            out.push_str("\n  ]\n}");
        } else {
            // An empty array renders inline, matching `Json::pretty`.
            out.push_str("]\n}");
        }
        writer
            .write_all(out.as_bytes())
            .map_err(|e| format!("write failed: {e}"))?;
        writer.flush().map_err(|e| format!("flush failed: {e}"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::chrome_trace_json;
    use crate::series::series_from_trace;
    use crate::sink::TraceSink;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "simtrace_stream_{name}_{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record(sink: &TraceSink) {
        let r0 = sink.recorder_on_node(TrackKey::Rank(0), Some(0));
        let r1 = sink.recorder_on_node(TrackKey::Rank(1), Some(1));
        for i in 0..10u64 {
            let t = i as f64 * 10.0;
            r0.span("phase", "io", t, t + 6.5, vec![("i", i.into())]);
            r1.span("phase", "sync", t, t + 3.25, vec![("lbl", "x".into())]);
            r1.counter("mailbox_depth", t, i as f64);
        }
        r0.instant("parcoll", "autotune", 42.0, vec![("action", "hold".into())]);
        r0.count("calls", 10);
        r0.observe("bytes", 4096.0);
        let ost = sink.recorder(TrackKey::Ost(0));
        for i in 0..8u64 {
            ost.span(
                "ost",
                "serve",
                i as f64 * 12.0,
                i as f64 * 12.0 + 9.0,
                vec![("bytes", (1000 + i).into())],
            );
        }
    }

    #[test]
    fn spill_line_round_trips_every_event_shape() {
        let events = [
            Event::Span {
                cat: "phase",
                name: Cow::Borrowed("io"),
                start_us: 1.5,
                dur_us: 2.25,
                args: vec![
                    ("n", ArgValue::U64(7)),
                    ("f", ArgValue::F64(0.1)),
                    ("s", ArgValue::Str(Cow::Borrowed("lbl"))),
                ],
            },
            Event::Instant {
                cat: "parcoll",
                name: Cow::Owned("autotune".to_string()),
                ts_us: 99.0,
                args: vec![("whole", ArgValue::F64(4.0))],
            },
            Event::Counter {
                name: "depth",
                ts_us: 3.0,
                value: 2.0,
            },
        ];
        for event in &events {
            let mut line = String::new();
            event_line(event, &mut line);
            let back = parse_event_line(&line).unwrap();
            assert_eq!(&back, event, "line: {line}");
            // Serialization is a fixed point.
            let mut line2 = String::new();
            event_line(&back, &mut line2);
            assert_eq!(line, line2);
        }
    }

    #[test]
    fn streamed_chrome_export_matches_in_memory_bytes() {
        let mem = TraceSink::enabled();
        record(&mem);
        let expected = chrome_trace_json(&mem.finish());

        let dir = scratch("chrome");
        let stream = TraceSink::streaming(&dir, 3).unwrap();
        record(&stream);
        let st = stream.finish_stream().unwrap();
        let out = dir.join("trace.json");
        st.export_chrome_to(&out).unwrap();
        let got = std::fs::read_to_string(&out).unwrap();
        assert_eq!(got, expected, "streamed export must be byte-identical");

        // The reloaded trace also matches event-for-event.
        let mem2 = TraceSink::enabled();
        record(&mem2);
        let loaded = st.load().unwrap();
        let full = mem2.finish();
        assert_eq!(loaded.tracks.len(), full.tracks.len());
        for (a, b) in loaded.tracks.iter().zip(full.tracks.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.events, b.events);
            assert_eq!(a.counters, b.counters);
            assert_eq!(a.hists, b.hists);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streamed_series_matches_in_memory_fold() {
        let mem = TraceSink::enabled();
        record(&mem);
        let expected = series_from_trace(&mem.finish(), SeriesConfig::new(25.0));

        let dir = scratch("series");
        let stream = TraceSink::streaming(&dir, 4).unwrap();
        record(&stream);
        let st = stream.finish_stream().unwrap();
        assert_eq!(st.series(SeriesConfig::new(25.0)).unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streaming_bounds_resident_events() {
        let dir = scratch("bounds");
        let stream = TraceSink::streaming(&dir, 4).unwrap();
        record(&stream);
        let st = stream.finish_stream().unwrap();
        let stats = st.stats();
        assert_eq!(stats.total_events, 39);
        // 3 tracks × chunk 4: never more than 12 resident.
        assert!(stats.peak_buffered <= 12, "peak {}", stats.peak_buffered);
        assert!(stats.reduction() >= 3.0, "reduction {}", stats.reduction());
        assert!(stats.wall_us > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "use finish_stream")]
    fn finish_on_streaming_sink_panics() {
        let dir = scratch("panic");
        let sink = TraceSink::streaming(&dir, 8).unwrap();
        sink.recorder(TrackKey::Rank(0)).span("phase", "io", 0.0, 1.0, vec![]);
        let _ = sink.finish();
    }

    #[test]
    fn finish_stream_on_in_memory_sink_errors() {
        assert!(TraceSink::enabled().finish_stream().is_err());
        assert!(TraceSink::disabled().finish_stream().is_err());
    }
}
