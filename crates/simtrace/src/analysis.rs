//! Critical-path analysis over the recorded event graph.
//!
//! A finished [`Trace`] contains enough edge identity to reconstruct the
//! happens-before graph of the run without help from the simulator:
//!
//! * **program order** — every span on a rank track belongs to that
//!   rank's serial timeline;
//! * **rendezvous edges** — each `rdv` span ends at the collective's
//!   last arrival and names the `straggler` whose arrival released
//!   everyone (the wake strictly follows the straggler's program order);
//! * **message edges** — `p2p/recv` spans carry `src`/`sent_us`/
//!   `arrival_us`, and `p2p/waitall` spans carry the batch's *binding*
//!   message (`bind_src`/`bind_sent_us`/`bind_arrival_us`, the latest
//!   arrival that bounded the wait);
//! * **service edges** — `ost/serve` spans carry the requesting `rank`
//!   and the completion instant `done_us` the requester observed (used
//!   for enrichment; the requester's own span already bounds its time).
//!
//! [`critical_path`] walks this graph *backward* from the instant the
//! last rank finishes. At `(rank, t)` it finds the latest **binding
//! event** on that rank ending at or before `t` — the most recent point
//! where the rank's progress was determined by someone else — emits the
//! segment between, and follows the edge: to the straggler for a
//! rendezvous, through the wire to the sender for a message, or further
//! down the same rank when the event did not actually block. The
//! resulting segments tile `[0, wall]` exactly — the path's length *is*
//! the virtual wall time, asserted in tests — and each segment is
//! attributed to the `phase` spans (sync / p2p / io / local) that cover
//! it, which is what makes the what-if estimates mechanical rather than
//! statistical.

use crate::sink::{ArgValue, Event, Trace, TrackData, TrackKey};
use std::collections::BTreeMap;

/// Why the critical path entered a segment at its start instant.
#[derive(Debug, Clone, PartialEq)]
pub enum PathEdge {
    /// Base of the walk: virtual time zero.
    Start,
    /// Program order on the same rank (the preceding binding event did
    /// not actually block it).
    Program,
    /// A collective released this rank when `straggler` arrived.
    RdvArrival {
        /// Operation name of the collective (`barrier`, `allgather`, ...).
        op: String,
        /// Global rank whose late arrival set the meeting time.
        straggler: usize,
    },
    /// A blocking receive completed when the message from `src` landed.
    MessageArrival {
        /// Global sender rank.
        src: usize,
    },
    /// Network flight of the binding message from `src`.
    Wire {
        /// Global sender rank.
        src: usize,
    },
}

/// One contiguous interval of the critical path, lying on one rank's
/// timeline (wire segments are attributed to the sender).
#[derive(Debug, Clone)]
pub struct PathSegment {
    /// Global rank whose activity bounds progress during this interval.
    pub rank: usize,
    /// Interval start, virtual µs.
    pub start_us: f64,
    /// Interval end, virtual µs.
    pub end_us: f64,
    /// The edge through which the path entered this segment.
    pub edge: PathEdge,
    /// Phase attribution of the interval: µs per phase name
    /// (`sync`/`p2p`/`io`/`local`), with time covered by no phase span
    /// under `other`.
    pub breakdown: BTreeMap<String, f64>,
}

impl PathSegment {
    /// Segment duration, µs.
    pub fn dur_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// The extracted critical path: a chain of segments tiling `[0, wall]`.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// Virtual wall time of the run (max span end over rank tracks), µs.
    pub wall_us: f64,
    /// Rank whose final activity set the wall.
    pub end_rank: usize,
    /// Segments in ascending time order; adjacent segments share their
    /// boundary instant exactly.
    pub segments: Vec<PathSegment>,
}

impl CriticalPath {
    /// Path length: last segment end minus first segment start. Equal to
    /// [`wall_us`](CriticalPath::wall_us) by construction — the walk
    /// tiles the whole run.
    pub fn length_us(&self) -> f64 {
        match (self.segments.first(), self.segments.last()) {
            (Some(first), Some(last)) => last.end_us - first.start_us,
            _ => 0.0,
        }
    }

    /// Total µs per phase over the whole path.
    pub fn breakdown(&self) -> BTreeMap<String, f64> {
        let mut total = BTreeMap::new();
        for seg in &self.segments {
            for (phase, us) in &seg.breakdown {
                *total.entry(phase.clone()).or_insert(0.0) += us;
            }
        }
        total
    }

    /// Total path µs carried by each rank.
    pub fn time_on_rank(&self) -> BTreeMap<usize, f64> {
        let mut per_rank = BTreeMap::new();
        for seg in &self.segments {
            *per_rank.entry(seg.rank).or_insert(0.0) += seg.dur_us();
        }
        per_rank
    }

    /// The path compressed to its rank visits: consecutive segments on
    /// the same rank merge into one `(rank, µs)` step. This is the
    /// straggler chain — who the run was waiting on, in order.
    pub fn straggler_chain(&self) -> Vec<(usize, f64)> {
        let mut chain: Vec<(usize, f64)> = Vec::new();
        for seg in &self.segments {
            match chain.last_mut() {
                Some((rank, us)) if *rank == seg.rank => *us += seg.dur_us(),
                _ => chain.push((seg.rank, seg.dur_us())),
            }
        }
        chain
    }

    /// µs of the path spent inside `sync` phase spans — collective
    /// synchronization that no amount of overlap could hide, because it
    /// lies on the chain that determines the wall.
    pub fn sync_us(&self) -> f64 {
        self.segments
            .iter()
            .filter_map(|s| s.breakdown.get("sync"))
            .sum()
    }

    /// What-if: the wall with the path's synchronization time removed —
    /// the run length if every collective on the critical chain
    /// completed the instant its straggler arrived.
    pub fn what_if_sync_free_us(&self) -> f64 {
        self.wall_us - self.sync_us()
    }
}

/// Per-rank totals relating the rank's own timeline to the path.
#[derive(Debug, Clone)]
pub struct RankSlack {
    /// Global rank.
    pub rank: usize,
    /// Total µs the rank spent inside any `phase` span.
    pub busy_us: f64,
    /// µs of that inside `sync` phase spans (collective waits).
    pub sync_us: f64,
    /// µs of the critical path carried by this rank.
    pub on_path_us: f64,
    /// `wall - on_path`: how much this rank could slow down before its
    /// timeline bounds the run everywhere.
    pub slack_us: f64,
}

/// A binding event on one rank's timeline: the points where the rank's
/// progress was (potentially) determined by another rank.
#[derive(Debug, Clone)]
enum Binder {
    Rdv {
        op: String,
        start_us: f64,
        end_us: f64,
        straggler: usize,
    },
    Msg {
        start_us: f64,
        end_us: f64,
        src: usize,
        sent_us: f64,
        arrival_us: f64,
    },
}

impl Binder {
    fn end_us(&self) -> f64 {
        match self {
            Binder::Rdv { end_us, .. } | Binder::Msg { end_us, .. } => *end_us,
        }
    }

    fn start_us(&self) -> f64 {
        match self {
            Binder::Rdv { start_us, .. } | Binder::Msg { start_us, .. } => *start_us,
        }
    }
}

fn arg_u64(args: &[(&'static str, ArgValue)], key: &str) -> Option<u64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::U64(v) => Some(*v),
        _ => None,
    })
}

fn arg_f64(args: &[(&'static str, ArgValue)], key: &str) -> Option<f64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        ArgValue::F64(v) => Some(*v),
        ArgValue::U64(v) => Some(*v as f64),
        _ => None,
    })
}

/// One rank's timeline prepared for the backward walk.
struct RankTimeline {
    /// Binding events sorted ascending by `(end, start)`.
    binders: Vec<Binder>,
    /// `phase` spans `(start, end, name)` sorted ascending by start.
    phases: Vec<(f64, f64, String)>,
    /// Latest span end on this track.
    last_end_us: f64,
}

fn prepare(track: &TrackData) -> RankTimeline {
    let mut binders = Vec::new();
    let mut phases = Vec::new();
    let mut last_end_us = 0.0f64;
    for event in &track.events {
        let Event::Span {
            cat,
            name,
            start_us,
            dur_us,
            args,
        } = event
        else {
            continue;
        };
        let end_us = start_us + dur_us;
        last_end_us = last_end_us.max(end_us);
        match *cat {
            "rdv" => {
                if let Some(straggler) = arg_u64(args, "straggler") {
                    binders.push(Binder::Rdv {
                        op: name.to_string(),
                        start_us: *start_us,
                        end_us,
                        straggler: straggler as usize,
                    });
                }
            }
            "p2p" if name == "recv" => {
                if let (Some(src), Some(sent_us), Some(arrival_us)) = (
                    arg_u64(args, "src"),
                    arg_f64(args, "sent_us"),
                    arg_f64(args, "arrival_us"),
                ) {
                    binders.push(Binder::Msg {
                        start_us: *start_us,
                        end_us,
                        src: src as usize,
                        sent_us,
                        arrival_us,
                    });
                }
            }
            "p2p" if name == "waitall" => {
                if let (Some(src), Some(sent_us), Some(arrival_us)) = (
                    arg_u64(args, "bind_src"),
                    arg_f64(args, "bind_sent_us"),
                    arg_f64(args, "bind_arrival_us"),
                ) {
                    binders.push(Binder::Msg {
                        start_us: *start_us,
                        end_us,
                        src: src as usize,
                        sent_us,
                        arrival_us,
                    });
                }
            }
            "phase" => phases.push((*start_us, end_us, name.to_string())),
            _ => {}
        }
    }
    binders.sort_by(|a, b| {
        a.end_us()
            .total_cmp(&b.end_us())
            .then(a.start_us().total_cmp(&b.start_us()))
    });
    phases.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    RankTimeline {
        binders,
        phases,
        last_end_us,
    }
}

/// Attribute `[a, b]` on one rank to its phase spans; uncovered time
/// lands in `other`. Overlapping phase spans (which the timers do not
/// produce) would over-count; coverage is clamped to the interval.
fn attribute(phases: &[(f64, f64, String)], a: f64, b: f64) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let mut covered = 0.0f64;
    let first = phases.partition_point(|(_, end, _)| *end <= a);
    for (start, end, name) in &phases[first..] {
        if *start >= b {
            break;
        }
        let overlap = end.min(b) - start.max(a);
        if overlap > 0.0 {
            *out.entry(name.clone()).or_insert(0.0) += overlap;
            covered += overlap;
        }
    }
    let other = (b - a) - covered;
    if other > 0.0 {
        *out.entry("other".to_string()).or_insert(0.0) += other;
    }
    out
}

/// Pop the latest binder ending at or before `t`. Binders ending after
/// `t` are discarded: the walk's clock never increases, so they can
/// never bind a later visit to this rank.
fn take_latest(timeline: &RankTimeline, cursor: &mut usize, t: f64) -> Option<Binder> {
    while *cursor > 0 {
        *cursor -= 1;
        let b = &timeline.binders[*cursor];
        if b.end_us() <= t {
            return Some(b.clone());
        }
    }
    None
}

/// Extract the critical path of a finished trace. Returns `None` when
/// the trace has no rank spans (e.g. a disabled sink).
pub fn critical_path(trace: &Trace) -> Option<CriticalPath> {
    let mut timelines: BTreeMap<usize, RankTimeline> = BTreeMap::new();
    for track in trace.rank_tracks() {
        let TrackKey::Rank(r) = track.key else { continue };
        timelines.insert(r, prepare(track));
    }
    let (end_rank, wall_us) = timelines
        .iter()
        .map(|(r, tl)| (*r, tl.last_end_us))
        // Strict comparison: ties resolve to the lowest rank id.
        .fold(None, |best: Option<(usize, f64)>, (r, end)| match best {
            Some((_, best_end)) if end <= best_end => best,
            _ => Some((r, end)),
        })?;
    if wall_us <= 0.0 {
        return None;
    }

    let mut cursors: BTreeMap<usize, usize> =
        timelines.iter().map(|(r, tl)| (*r, tl.binders.len())).collect();

    // Built in reverse (walking backward from the wall), then flipped.
    let mut segments: Vec<PathSegment> = Vec::new();
    let push = |segments: &mut Vec<PathSegment>, seg: PathSegment| {
        if seg.end_us > seg.start_us {
            segments.push(seg);
        }
    };

    let mut rank = end_rank;
    let mut t = wall_us;
    loop {
        let timeline = &timelines[&rank];
        let cursor = cursors.get_mut(&rank).expect("cursor for visited rank");
        match take_latest(timeline, cursor, t) {
            None => {
                // Base of the walk: nothing below bound this rank.
                push(
                    &mut segments,
                    PathSegment {
                        rank,
                        start_us: 0.0,
                        end_us: t,
                        edge: PathEdge::Start,
                        breakdown: attribute(&timeline.phases, 0.0, t),
                    },
                );
                break;
            }
            Some(Binder::Rdv {
                op,
                start_us,
                end_us,
                straggler,
            }) => {
                let blocked = straggler != rank && timelines.contains_key(&straggler);
                push(
                    &mut segments,
                    PathSegment {
                        rank,
                        start_us: end_us,
                        end_us: t,
                        edge: if blocked {
                            PathEdge::RdvArrival { op, straggler }
                        } else {
                            PathEdge::Program
                        },
                        breakdown: attribute(&timeline.phases, end_us, t),
                    },
                );
                if blocked {
                    // The wake was the straggler's arrival: follow its
                    // program order from that instant.
                    rank = straggler;
                    t = end_us;
                } else {
                    // This rank arrived last itself (span has zero
                    // duration); continue its own program order.
                    t = start_us;
                }
            }
            Some(Binder::Msg {
                start_us,
                end_us,
                src,
                sent_us,
                arrival_us,
            }) => {
                if arrival_us > start_us && timelines.contains_key(&src) {
                    // The receive actually blocked: the span splits into
                    // completion overhead after the landing and the wire
                    // flight before it, then the walk crosses to the
                    // sender's post instant.
                    push(
                        &mut segments,
                        PathSegment {
                            rank,
                            start_us: end_us,
                            end_us: t,
                            edge: PathEdge::MessageArrival { src },
                            breakdown: attribute(&timeline.phases, end_us, t),
                        },
                    );
                    push(
                        &mut segments,
                        PathSegment {
                            rank,
                            start_us: arrival_us,
                            end_us,
                            edge: PathEdge::MessageArrival { src },
                            breakdown: attribute(&timeline.phases, arrival_us, end_us),
                        },
                    );
                    push(
                        &mut segments,
                        PathSegment {
                            rank: src,
                            start_us: sent_us,
                            end_us: arrival_us,
                            edge: PathEdge::Wire { src },
                            breakdown: BTreeMap::from([("p2p".to_string(), arrival_us - sent_us)]),
                        },
                    );
                    rank = src;
                    t = sent_us;
                } else {
                    // The message was already waiting (or the sender left
                    // no track): the span is local receive processing.
                    push(
                        &mut segments,
                        PathSegment {
                            rank,
                            start_us: end_us,
                            end_us: t,
                            edge: PathEdge::Program,
                            breakdown: attribute(&timeline.phases, end_us, t),
                        },
                    );
                    push(
                        &mut segments,
                        PathSegment {
                            rank,
                            start_us,
                            end_us,
                            edge: PathEdge::Program,
                            breakdown: attribute(&timeline.phases, start_us, end_us),
                        },
                    );
                    t = start_us;
                }
            }
        }
    }

    segments.reverse();
    Some(CriticalPath {
        wall_us,
        end_rank,
        segments,
    })
}

/// Per-rank slack against an extracted path, ordered by rank.
pub fn rank_slack(trace: &Trace, path: &CriticalPath) -> Vec<RankSlack> {
    let on_path = path.time_on_rank();
    let mut out = Vec::new();
    for track in trace.rank_tracks() {
        let TrackKey::Rank(rank) = track.key else { continue };
        let busy_us = track.span_total_us("phase", None);
        let sync_us = track.span_total_us("phase", Some("sync"));
        let on_path_us = on_path.get(&rank).copied().unwrap_or(0.0);
        out.push(RankSlack {
            rank,
            busy_us,
            sync_us,
            on_path_us,
            slack_us: path.wall_us - on_path_us,
        });
    }
    out
}

/// What-if: the wall if every collective wait cost nothing — contract
/// all rendezvous edges, leaving each rank its program-order chain of
/// non-sync work, and take the longest. Cross-rank message and service
/// dependencies could only push the true sync-free wall *up* from here,
/// so this is the achievable floor: no restructuring of the collective
/// protocol can beat it without also shrinking non-sync work.
pub fn what_if_rank_bound_us(trace: &Trace) -> f64 {
    trace
        .rank_tracks()
        .map(|t| t.span_total_us("phase", None) - t.span_total_us("phase", Some("sync")))
        .fold(0.0, f64::max)
}

/// The run's synchronization share as Figures 1/2 define it: total
/// rank-time inside `sync` phase spans over total rank-time inside any
/// phase span (equal to the mean per-rank profile ratio, since every
/// phase charge emits an identical span). This is the paper's "72 % of
/// the time is spent in synchronization" number, recomputed from the
/// trace alone.
pub fn sync_share(trace: &Trace) -> f64 {
    let mut sync = 0.0;
    let mut busy = 0.0;
    for track in trace.rank_tracks() {
        sync += track.span_total_us("phase", Some("sync"));
        busy += track.span_total_us("phase", None);
    }
    if busy > 0.0 {
        sync / busy
    } else {
        0.0
    }
}

/// The three sync-free estimates side by side. They answer different
/// questions and the gap between them is the finding:
///
/// * `sync_free_figure_us` — the paper's implied estimate: scale the
///   wall by one minus the Figure-1 sync share. Treats every rank's
///   blocked time as recoverable.
/// * `sync_free_rank_bound_us` — rendezvous edges contracted in the
///   event graph: the busiest rank's non-sync chain. The achievable
///   floor; typically well above the figure estimate because collective
///   waits overlap across ranks.
/// * `sync_free_path_us` — only the sync time actually lying on the
///   critical path removed: what the run saves if collectives complete
///   the instant their straggler arrives but nothing else changes.
///   Typically close to the wall, because the path follows stragglers,
///   who do not wait.
#[derive(Debug, Clone)]
pub struct WhatIf {
    /// The run's virtual wall, µs.
    pub wall_us: f64,
    /// Figure-1/2 sync share of total rank-time (0..1).
    pub sync_share: f64,
    /// `wall × (1 - sync_share)`.
    pub sync_free_figure_us: f64,
    /// Longest per-rank non-sync chain (rendezvous edges contracted).
    pub sync_free_rank_bound_us: f64,
    /// Sync time on the critical path, µs.
    pub path_sync_us: f64,
    /// `wall - path_sync`.
    pub sync_free_path_us: f64,
}

/// Compute every sync-free estimate for a finished trace and its
/// extracted critical path.
pub fn what_if(trace: &Trace, path: &CriticalPath) -> WhatIf {
    let share = sync_share(trace);
    WhatIf {
        wall_us: path.wall_us,
        sync_share: share,
        sync_free_figure_us: path.wall_us * (1.0 - share),
        sync_free_rank_bound_us: what_if_rank_bound_us(trace),
        path_sync_us: path.sync_us(),
        sync_free_path_us: path.what_if_sync_free_us(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    /// Two ranks, one barrier: rank 1 computes until 40 µs while rank 0
    /// arrives at 10 µs and waits. Both then do 20 µs of io.
    fn rdv_trace() -> Trace {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        let r1 = sink.recorder(TrackKey::Rank(1));
        let rdv_args = |straggler: u64| {
            vec![
                ("ctx", 0u64.into()),
                ("seq", 1u64.into()),
                ("n", 2u64.into()),
                ("straggler", straggler.into()),
            ]
        };
        r0.span("phase", "local", 0.0, 10.0, vec![]);
        r0.span("rdv", "barrier", 10.0, 40.0, rdv_args(1));
        r0.span("phase", "sync", 10.0, 40.0, vec![]);
        r0.span("phase", "io", 40.0, 60.0, vec![]);
        r1.span("phase", "local", 0.0, 40.0, vec![]);
        r1.span("rdv", "barrier", 40.0, 40.0, rdv_args(1));
        r1.span("phase", "io", 40.0, 60.0, vec![]);
        sink.finish()
    }

    #[test]
    fn rdv_path_follows_the_straggler() {
        let trace = rdv_trace();
        let path = critical_path(&trace).unwrap();
        assert_eq!(path.wall_us, 60.0);
        assert_eq!(path.length_us(), path.wall_us);
        // Tiling: adjacent segments share boundaries exactly.
        for pair in path.segments.windows(2) {
            assert_eq!(pair[0].end_us, pair[1].start_us);
        }
        // The waiting interval [10, 40] lies on rank 1 (the straggler),
        // not on rank 0's sync wait.
        let on_rank = path.time_on_rank();
        assert_eq!(on_rank[&1], 40.0);
        assert_eq!(on_rank[&0], 20.0);
        // No sync time on the path: the barrier wait is hidden behind
        // the straggler's computation.
        assert_eq!(path.sync_us(), 0.0);
        let chain = path.straggler_chain();
        assert_eq!(chain, vec![(1, 40.0), (0, 20.0)]);
    }

    #[test]
    fn rdv_slack_and_rank_bound() {
        let trace = rdv_trace();
        let path = critical_path(&trace).unwrap();
        let slack = rank_slack(&trace, &path);
        assert_eq!(slack.len(), 2);
        assert_eq!(slack[0].rank, 0);
        assert_eq!(slack[0].on_path_us, 20.0);
        assert_eq!(slack[0].slack_us, 40.0);
        assert_eq!(slack[0].sync_us, 30.0);
        assert_eq!(slack[1].slack_us, 20.0);
        // Sync-free rank bound: rank 0 has 30 µs of non-sync work,
        // rank 1 has 60 µs.
        assert_eq!(what_if_rank_bound_us(&trace), 60.0);
    }

    /// Rank 0 blocks in a receive; the binding message left rank 1 at
    /// 20 µs and landed at 30 µs; recv completion costs 5 µs more.
    fn msg_trace() -> Trace {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        let r1 = sink.recorder(TrackKey::Rank(1));
        r0.span("phase", "local", 0.0, 5.0, vec![]);
        r0.span(
            "p2p",
            "recv",
            5.0,
            35.0,
            vec![
                ("src", 1u64.into()),
                ("sent_us", 20.0.into()),
                ("arrival_us", 30.0.into()),
            ],
        );
        r0.span("phase", "p2p", 5.0, 35.0, vec![]);
        r0.span("phase", "io", 35.0, 50.0, vec![]);
        r1.span("phase", "local", 0.0, 20.0, vec![]);
        sink.finish()
    }

    #[test]
    fn blocking_recv_crosses_to_the_sender() {
        let trace = msg_trace();
        let path = critical_path(&trace).unwrap();
        assert_eq!(path.wall_us, 50.0);
        assert_eq!(path.length_us(), 50.0);
        for pair in path.segments.windows(2) {
            assert_eq!(pair[0].end_us, pair[1].start_us);
        }
        // Wire segment [20, 30] is attributed to the sender as p2p.
        let wire = path
            .segments
            .iter()
            .find(|s| matches!(s.edge, PathEdge::Wire { .. }))
            .unwrap();
        assert_eq!(wire.rank, 1);
        assert_eq!((wire.start_us, wire.end_us), (20.0, 30.0));
        assert_eq!(wire.breakdown["p2p"], 10.0);
        // Sender's computation [0, 20] is on the path.
        assert_eq!(path.time_on_rank()[&1], 30.0);
        // Completion overhead [30, 35] plus the io tail are on rank 0.
        assert_eq!(path.time_on_rank()[&0], 20.0);
    }

    #[test]
    fn non_blocking_recv_stays_on_rank() {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        // Message landed at 3 µs, recv posted at 10 µs: no block.
        r0.span("phase", "local", 0.0, 10.0, vec![]);
        r0.span(
            "p2p",
            "recv",
            10.0,
            12.0,
            vec![
                ("src", 1u64.into()),
                ("sent_us", 1.0.into()),
                ("arrival_us", 3.0.into()),
            ],
        );
        r0.span("phase", "p2p", 10.0, 12.0, vec![]);
        let r1 = sink.recorder(TrackKey::Rank(1));
        r1.span("phase", "local", 0.0, 2.0, vec![]);
        let trace = sink.finish();
        let path = critical_path(&trace).unwrap();
        assert_eq!(path.wall_us, 12.0);
        assert_eq!(path.length_us(), 12.0);
        assert!(path.segments.iter().all(|s| s.rank == 0));
    }

    #[test]
    fn waitall_binding_edge_is_followed() {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        let r2 = sink.recorder(TrackKey::Rank(2));
        r0.span(
            "p2p",
            "waitall",
            4.0,
            25.0,
            vec![
                ("n", 2u64.into()),
                ("bind_src", 2u64.into()),
                ("bind_sent_us", 15.0.into()),
                ("bind_arrival_us", 22.0.into()),
            ],
        );
        r2.span("phase", "io", 0.0, 15.0, vec![]);
        let trace = sink.finish();
        let path = critical_path(&trace).unwrap();
        assert_eq!(path.wall_us, 25.0);
        assert_eq!(path.length_us(), 25.0);
        // Path: rank 2 io [0,15], wire [15,22], completion [22,25].
        let chain = path.straggler_chain();
        assert_eq!(chain, vec![(2, 22.0), (0, 3.0)]);
        let bd = path.breakdown();
        assert_eq!(bd["io"], 15.0);
        assert_eq!(bd["p2p"], 7.0);
        assert_eq!(bd["other"], 3.0);
    }

    #[test]
    fn empty_trace_has_no_path() {
        assert!(critical_path(&TraceSink::disabled().finish()).is_none());
        let sink = TraceSink::enabled();
        sink.recorder(TrackKey::Ost(0)).span("ost", "serve", 0.0, 5.0, vec![]);
        assert!(critical_path(&sink.finish()).is_none());
    }

    #[test]
    fn what_if_sync_free_subtracts_path_sync() {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        // A lone rank whose sync phase tail (e.g. collective completion
        // beyond the rendezvous point) lies on the path.
        r0.span("phase", "io", 0.0, 30.0, vec![]);
        r0.span("phase", "sync", 30.0, 40.0, vec![]);
        let trace = sink.finish();
        let path = critical_path(&trace).unwrap();
        assert_eq!(path.sync_us(), 10.0);
        assert_eq!(path.what_if_sync_free_us(), 30.0);
    }
}
