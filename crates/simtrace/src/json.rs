//! Minimal JSON value, writer and parser.
//!
//! The build environment has no crates.io access, so the workspace carries
//! its own JSON support. Two properties matter here and are guaranteed:
//!
//! * **Deterministic output.** Object members serialize in insertion
//!   order and floats use Rust's shortest-roundtrip formatting (with a
//!   trailing `.0` forced onto integral floats), so identical values
//!   always produce identical bytes — the trace determinism test depends
//!   on this.
//! * **serde_json-compatible pretty form.** Two-space indentation and the
//!   same float style serde_json's `to_string_pretty` produced for the
//!   seed's `bench_results/*.json`, so regenerated figures are
//!   byte-compatible with the checked-in artifacts.

use std::fmt::Write as _;

/// A JSON document. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number carrying a fractional part or too large for `u64`/`i64`.
    Num(f64),
    /// Non-negative integer written without a decimal point.
    U64(u64),
    /// Negative integer written without a decimal point.
    I64(i64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The items of an array; `None` on other variants.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members of an object; `None` on other variants.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The value of a string; `None` on other variants.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Any numeric variant widened to `f64`; `None` on non-numbers.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Any numeric variant that is exactly a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::Num(v) if *v >= 0.0 && v.trunc() == *v => Some(*v as u64),
            Json::I64(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization: 2-space indent, serde_json-compatible.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Append the pretty form of this value to `out` as if it were
    /// nested `depth` levels deep in a larger document. The streamed
    /// trace exporter uses this to emit one event at a time while
    /// producing bytes identical to a single [`Json::pretty`] call over
    /// the whole document.
    pub fn pretty_into(&self, out: &mut String, depth: usize) {
        self.write(out, Some(2), depth);
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(out, *v),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (strict enough for our own artifacts).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

/// serde_json float style: shortest roundtrip, integral values keep `.0`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What was expected or found there.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 scalar starting at pos-1.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_matches_serde_json_style() {
        let doc = Json::Arr(vec![Json::Obj(vec![
            ("series".into(), Json::Str("sync-share".into())),
            ("x".into(), Json::Num(16.0)),
            ("y".into(), Json::Num(56.92683959583798)),
            ("unit".into(), Json::Str("%".into())),
            (
                "extra".into(),
                Json::Obj(vec![("io_s".into(), Json::Num(0.09081857041048932))]),
            ),
        ])]);
        let expected = "[\n  {\n    \"series\": \"sync-share\",\n    \"x\": 16.0,\n    \
                        \"y\": 56.92683959583798,\n    \"unit\": \"%\",\n    \"extra\": {\n      \
                        \"io_s\": 0.09081857041048932\n    }\n  }\n]";
        assert_eq!(doc.pretty(), expected);
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let doc = Json::Obj(vec![
            ("a".into(), Json::U64(123)),
            ("b".into(), Json::Num(1.5)),
            ("c".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("d".into(), Json::Str("quote \" slash \\ nl \n".into())),
            ("e".into(), Json::I64(-7)),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.pretty(), text);
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(Json::Num(16.0).compact(), "16.0");
        assert_eq!(Json::Num(-2.0).compact(), "-2.0");
        assert_eq!(Json::Num(0.5).compact(), "0.5");
        assert_eq!(Json::U64(16).compact(), "16");
    }

    #[test]
    fn integers_parse_without_float_damage() {
        assert_eq!(Json::parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(Json::parse("-42").unwrap(), Json::I64(-42));
        assert_eq!(Json::parse("42.0").unwrap(), Json::Num(42.0));
    }

    #[test]
    fn accessors_work() {
        let doc = Json::parse(r#"{"k": [1, 2.5, "s"]}"#).unwrap();
        let arr = doc.get("k").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("nope").is_err());
    }
}
