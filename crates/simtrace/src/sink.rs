//! Trace collection: per-track recorders feeding a shared sink.
//!
//! Each simulated rank (and each OST) owns a *track*: an append-only
//! buffer of timeline events plus monotone metrics (counters and log2
//! histograms). A rank's thread appends to its own track through a cached
//! [`Recorder`], so the per-event cost is an uncontended mutex acquire —
//! effectively lock-free append. Cross-track writes exist for exactly one
//! reason: a rendezvous combiner (which runs on the *last* arriving
//! participant while every other participant is parked inside the same
//! rendezvous) attributes the collective wall to every waiter. Because
//! those waiters are blocked for the duration, the combiner's appends land
//! at a deterministic position in each waiter's buffer, which is what
//! makes the merged trace reproducible run-to-run.
//!
//! The sink is **disabled by default** and every recording method returns
//! immediately after one branch in that state, so instrumented release
//! builds measure the same virtual and host times as uninstrumented ones.
//!
//! A third mode, [`TraceSink::streaming`], bounds memory for paper-scale
//! runs: each track spills its event buffer to a JSONL chunk file on
//! disk whenever it exceeds a configured length, so at most
//! `tracks × chunk_events` events are ever resident. Metrics (counters,
//! histograms) stay in memory — they are O(names), not O(events). See
//! [`crate::stream`] for the spill format and the streamed exporters.

use crate::stream::{self, StreamStats, StreamTrackMeta, StreamedTrace};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Identifies one timeline in the trace. `Rank` tracks order before `Ost`
/// tracks in the merged output (derived `Ord` on variant order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TrackKey {
    /// An MPI rank (global rank id).
    Rank(usize),
    /// An object storage target in the simulated file system.
    Ost(usize),
}

impl TrackKey {
    /// Stable short name used in metrics JSON ("rank3", "ost0").
    pub fn label(&self) -> String {
        match self {
            TrackKey::Rank(r) => format!("rank{r}"),
            TrackKey::Ost(o) => format!("ost{o}"),
        }
    }
}

/// A typed argument attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// An unsigned integer (ranks, counts, byte totals).
    U64(u64),
    /// A float (times, ratios).
    F64(f64),
    /// A label; borrowed when `'static`, owned otherwise.
    Str(Cow<'static, str>),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        ArgValue::F64(v)
    }
}

impl From<&'static str> for ArgValue {
    fn from(v: &'static str) -> Self {
        ArgValue::Str(Cow::Borrowed(v))
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(Cow::Owned(v))
    }
}

/// One timeline event. All timestamps are **virtual microseconds**.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A closed interval of activity.
    Span {
        /// Category (`"phase"`, `"rdv"`, `"ost"`, …) — the coarse filter.
        cat: &'static str,
        /// Event name within the category.
        name: Cow<'static, str>,
        /// Interval start, virtual µs.
        start_us: f64,
        /// Interval length, µs (clamped non-negative).
        dur_us: f64,
        /// Typed key/value annotations.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A point event.
    Instant {
        /// Category, as for spans.
        cat: &'static str,
        /// Event name within the category.
        name: Cow<'static, str>,
        /// Timestamp, virtual µs.
        ts_us: f64,
        /// Typed key/value annotations.
        args: Vec<(&'static str, ArgValue)>,
    },
    /// A sampled counter value (rendered as a counter track in Perfetto).
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sample timestamp, virtual µs.
        ts_us: f64,
        /// Sampled value.
        value: f64,
    },
}

/// The deterministic content order for OST-track events: OSTs are
/// served by many rank threads, so append order reflects host
/// scheduling; sorting by `(ts, dur/value, name, args)` erases it.
pub(crate) fn ost_event_cmp(a: &Event, b: &Event) -> std::cmp::Ordering {
    let (at, ad, an, ah) = a.sort_key();
    let (bt, bd, bn, bh) = b.sort_key();
    at.total_cmp(&bt)
        .then(ad.total_cmp(&bd))
        .then(an.cmp(bn))
        .then(ah.cmp(&bh))
}

impl Event {
    fn sort_key(&self) -> (f64, f64, &str, u64) {
        match self {
            Event::Span {
                name,
                start_us,
                dur_us,
                args,
                ..
            } => (*start_us, *dur_us, name, args_fingerprint(args)),
            Event::Instant { name, ts_us, args, .. } => (*ts_us, 0.0, name, args_fingerprint(args)),
            Event::Counter { name, ts_us, value } => (*ts_us, *value, name, 0),
        }
    }
}

fn args_fingerprint(args: &[(&'static str, ArgValue)]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for (k, v) in args {
        mix(k.as_bytes());
        match v {
            ArgValue::U64(v) => mix(&v.to_le_bytes()),
            ArgValue::F64(v) => mix(&v.to_bits().to_le_bytes()),
            ArgValue::Str(s) => mix(s.as_bytes()),
        }
    }
    h
}

/// Log2-bucketed histogram of non-negative observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Hist {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// bucket `b` counts observations with `floor(log2(v)) == b` (v >= 1);
    /// observations below 1 land in bucket `-1`.
    pub buckets: BTreeMap<i32, u64>,
}

impl Hist {
    /// Record one observation.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v < 1.0 { -1 } else { v.log2().floor() as i32 };
        *self.buckets.entry(bucket).or_insert(0) += 1;
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram into this one (used by the track merge).
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_insert(0) += n;
        }
    }
}

#[derive(Debug, Default)]
struct TrackBuf {
    node: Option<usize>,
    events: Vec<Event>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Hist>,
    /// Open spill file (streaming mode only, created on first spill).
    spill: Option<std::io::BufWriter<std::fs::File>>,
    /// Events already spilled from this track.
    spilled: u64,
}

/// Streaming-mode state shared by all tracks.
#[derive(Debug)]
struct StreamState {
    dir: PathBuf,
    chunk_events: usize,
    total_events: AtomicU64,
    buffered: AtomicU64,
    peak_buffered: AtomicU64,
    /// Latest event end seen, as non-negative f64 bits (bit order ==
    /// numeric order for non-negative floats).
    wall_bits: AtomicU64,
    /// First spill I/O error, surfaced by `finish_stream`.
    error: Mutex<Option<String>>,
}

impl StreamState {
    fn on_append(&self, end_us: f64) {
        self.total_events.fetch_add(1, Ordering::Relaxed);
        let buffered = self.buffered.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_buffered.fetch_max(buffered, Ordering::Relaxed);
        self.wall_bits
            .fetch_max(end_us.max(0.0).to_bits(), Ordering::Relaxed);
    }

    fn note_error(&self, e: String) {
        lock(&self.error).get_or_insert(e);
    }

    /// Write the track's buffered events out and clear the buffer. On
    /// I/O failure the events are dropped (memory stays bounded) and
    /// the first error is kept for `finish_stream`.
    fn spill(&self, key: TrackKey, buf: &mut TrackBuf) {
        // hostprof: chunk serialization + file write (blocking I/O, but
        // never a fiber yield).
        let _hp = crate::host::scope(crate::host::Site::TraceSpill);
        if buf.events.is_empty() {
            return;
        }
        if buf.spill.is_none() {
            let path = self.dir.join(format!("track_{}.jsonl", key.label()));
            match std::fs::File::create(&path) {
                Ok(f) => buf.spill = Some(std::io::BufWriter::new(f)),
                Err(e) => {
                    self.note_error(format!("cannot create {}: {e}", path.display()));
                    let n = buf.events.len() as u64;
                    buf.events.clear();
                    self.buffered.fetch_sub(n, Ordering::Relaxed);
                    return;
                }
            }
        }
        let writer = buf.spill.as_mut().expect("spill file just ensured");
        let mut chunk = String::new();
        for event in &buf.events {
            stream::event_line(event, &mut chunk);
            chunk.push('\n');
        }
        if let Err(e) = writer.write_all(chunk.as_bytes()) {
            self.note_error(format!("spill write failed: {e}"));
        }
        let n = buf.events.len() as u64;
        buf.spilled += n;
        buf.events.clear();
        self.buffered.fetch_sub(n, Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct Shared {
    tracks: Mutex<BTreeMap<TrackKey, Arc<Mutex<TrackBuf>>>>,
    stream: Option<StreamState>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn track(&self, key: TrackKey) -> Arc<Mutex<TrackBuf>> {
        Arc::clone(lock(&self.tracks).entry(key).or_default())
    }

    /// Append one event, spilling the track when streaming and over the
    /// chunk threshold.
    fn record(&self, key: TrackKey, buf: &Mutex<TrackBuf>, event: Event) {
        // hostprof: tracing overhead is self-measured (spills nest under
        // this frame as `trace_spill`).
        let _hp = crate::host::scope(crate::host::Site::TraceRecord);
        let end_us = match &event {
            Event::Span { start_us, dur_us, .. } => start_us + dur_us,
            Event::Instant { ts_us, .. } => *ts_us,
            Event::Counter { ts_us, .. } => *ts_us,
        };
        let mut buf = lock(buf);
        buf.events.push(event);
        if let Some(stream) = &self.stream {
            stream.on_append(end_us);
            if buf.events.len() >= stream.chunk_events {
                stream.spill(key, &mut buf);
            }
        }
    }
}

/// Shared handle to a trace collection. Cheap to clone; disabled by
/// default, in which case every operation is a no-op after one branch.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    shared: Option<Arc<Shared>>,
}

impl TraceSink {
    /// The no-op sink (also what `Default` yields).
    pub fn disabled() -> Self {
        TraceSink { shared: None }
    }

    /// A live sink collecting events and metrics.
    pub fn enabled() -> Self {
        TraceSink {
            shared: Some(Arc::new(Shared::default())),
        }
    }

    /// A live sink that bounds event memory: whenever a track's buffer
    /// reaches `chunk_events` events it is spilled to
    /// `dir/track_<label>.jsonl` (one compact JSON event per line) and
    /// cleared, so at most `tracks × chunk_events` events are resident
    /// at any instant. Close with [`TraceSink::finish_stream`];
    /// [`TraceSink::finish`] panics on a streaming sink because the
    /// spilled events are no longer in memory.
    pub fn streaming(dir: impl Into<PathBuf>, chunk_events: usize) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(TraceSink {
            shared: Some(Arc::new(Shared {
                tracks: Mutex::new(BTreeMap::new()),
                stream: Some(StreamState {
                    dir,
                    chunk_events: chunk_events.max(1),
                    total_events: AtomicU64::new(0),
                    buffered: AtomicU64::new(0),
                    peak_buffered: AtomicU64::new(0),
                    wall_bits: AtomicU64::new(0),
                    error: Mutex::new(None),
                }),
            })),
        })
    }

    /// True when this sink is collecting (the recording layers use this
    /// to skip argument construction).
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// A cached recorder appending to `key`'s track.
    pub fn recorder(&self, key: TrackKey) -> Recorder {
        self.recorder_on_node(key, None)
    }

    /// A recorder that also tags the track with the node hosting it
    /// (becomes the Perfetto "process" of a rank track).
    pub fn recorder_on_node(&self, key: TrackKey, node: Option<usize>) -> Recorder {
        match &self.shared {
            None => Recorder { inner: None },
            Some(shared) => {
                let buf = shared.track(key);
                if node.is_some() {
                    lock(&buf).node = node;
                }
                Recorder {
                    inner: Some(RecorderInner {
                        shared: Arc::clone(shared),
                        key,
                        buf,
                    }),
                }
            }
        }
    }

    /// Append an event to an arbitrary track (the cross-track path used
    /// by rendezvous combiners; see module docs for why this stays
    /// deterministic).
    pub fn append(&self, key: TrackKey, event: Event) {
        if let Some(shared) = &self.shared {
            let buf = shared.track(key);
            shared.record(key, &buf, event);
        }
    }

    /// Add to a metrics counter on an arbitrary track.
    pub fn add_count(&self, key: TrackKey, name: &'static str, delta: u64) {
        if let Some(shared) = &self.shared {
            *lock(&shared.track(key)).counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Record a histogram observation on an arbitrary track.
    pub fn observe(&self, key: TrackKey, name: &'static str, value: f64) {
        if let Some(shared) = &self.shared {
            lock(&shared.track(key))
                .hists
                .entry(name)
                .or_default()
                .observe(value);
        }
    }

    /// Snapshot and deterministically merge everything recorded so far.
    ///
    /// Rank tracks keep their (already deterministic) append order; OST
    /// tracks are served concurrently by many rank threads, so their
    /// events are sorted by `(start, duration, name, args)` to erase host
    /// scheduling from the output.
    pub fn finish(&self) -> Trace {
        let Some(shared) = &self.shared else {
            return Trace { tracks: Vec::new() };
        };
        assert!(
            shared.stream.is_none(),
            "TraceSink::finish on a streaming sink — spilled events are \
             on disk, use finish_stream()"
        );
        let tracks = lock(&shared.tracks);
        let mut out = Vec::with_capacity(tracks.len());
        for (key, buf) in tracks.iter() {
            let buf = lock(buf);
            let mut events = buf.events.clone();
            if matches!(key, TrackKey::Ost(_)) {
                events.sort_by(ost_event_cmp);
            }
            out.push(TrackData {
                key: *key,
                node: buf.node,
                events,
                counters: buf.counters.clone(),
                hists: buf.hists.clone(),
            });
        }
        Trace { tracks: out }
    }

    /// Close a streaming sink: spill every track's remaining buffer,
    /// flush and close the chunk files, and return a [`StreamedTrace`]
    /// handle over the on-disk events plus the in-memory metrics.
    ///
    /// Errors on a non-streaming sink and on any spill I/O failure.
    pub fn finish_stream(&self) -> Result<StreamedTrace, String> {
        let Some(shared) = &self.shared else {
            return Err("finish_stream on a disabled sink".to_string());
        };
        let Some(stream) = &shared.stream else {
            return Err("finish_stream on an in-memory sink — use finish()".to_string());
        };
        let tracks = lock(&shared.tracks);
        let mut metas = Vec::with_capacity(tracks.len());
        for (key, buf) in tracks.iter() {
            let mut buf = lock(buf);
            stream.spill(*key, &mut buf);
            if let Some(mut writer) = buf.spill.take() {
                if let Err(e) = writer.flush() {
                    stream.note_error(format!("spill flush failed: {e}"));
                }
            }
            metas.push(StreamTrackMeta {
                key: *key,
                node: buf.node,
                events: buf.spilled,
                counters: buf.counters.clone(),
                hists: buf.hists.clone(),
                events_path: stream.dir.join(format!("track_{}.jsonl", key.label())),
            });
        }
        if let Some(e) = lock(&stream.error).clone() {
            return Err(e);
        }
        Ok(StreamedTrace::new(
            stream.dir.clone(),
            metas,
            StreamStats {
                total_events: stream.total_events.load(Ordering::Relaxed),
                peak_buffered: stream.peak_buffered.load(Ordering::Relaxed),
                wall_us: f64::from_bits(stream.wall_bits.load(Ordering::Relaxed)),
            },
        ))
    }
}

#[derive(Debug, Clone)]
struct RecorderInner {
    shared: Arc<Shared>,
    key: TrackKey,
    buf: Arc<Mutex<TrackBuf>>,
}

/// Per-track recording handle cached by the owning thread.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    inner: Option<RecorderInner>,
}

impl Recorder {
    /// A recorder that drops everything (what a disabled sink hands out).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// True when recording; callers use this to skip building arguments
    /// on hot paths.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record a closed span `[start_us, end_us]` (virtual microseconds).
    pub fn span(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        start_us: f64,
        end_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            inner.shared.record(
                inner.key,
                &inner.buf,
                Event::Span {
                    cat,
                    name: name.into(),
                    start_us,
                    dur_us: (end_us - start_us).max(0.0),
                    args,
                },
            );
        }
    }

    /// Record a point event.
    pub fn instant(
        &self,
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        ts_us: f64,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        if let Some(inner) = &self.inner {
            inner.shared.record(
                inner.key,
                &inner.buf,
                Event::Instant {
                    cat,
                    name: name.into(),
                    ts_us,
                    args,
                },
            );
        }
    }

    /// Record a counter sample (timeline event).
    pub fn counter(&self, name: &'static str, ts_us: f64, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .shared
                .record(inner.key, &inner.buf, Event::Counter { name, ts_us, value });
        }
    }

    /// Add to a monotone metrics counter (no timeline event).
    pub fn count(&self, name: &'static str, delta: u64) {
        if let Some(inner) = &self.inner {
            *lock(&inner.buf).counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Record a histogram observation (no timeline event).
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(inner) = &self.inner {
            lock(&inner.buf).hists.entry(name).or_default().observe(value);
        }
    }
}

/// One merged track: its events in deterministic order plus its metrics.
#[derive(Debug, Clone)]
pub struct TrackData {
    /// Which rank or OST this track belongs to.
    pub key: TrackKey,
    /// Physical node hosting the rank, when known (groups Perfetto rows).
    pub node: Option<usize>,
    /// Timeline events in deterministic merge order.
    pub events: Vec<Event>,
    /// Monotone counters, by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histograms, by name.
    pub hists: BTreeMap<&'static str, Hist>,
}

impl TrackData {
    /// Sum of span durations matching `cat` (and `name`, if given), in µs.
    pub fn span_total_us(&self, cat: &str, name: Option<&str>) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    cat: c,
                    name: n,
                    dur_us,
                    ..
                } if *c == cat && name.is_none_or(|want| n == want) => Some(*dur_us),
                _ => None,
            })
            .sum()
    }
}

/// A deterministic snapshot of everything the sink collected.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All tracks, ranks first (ascending), then OSTs (ascending).
    pub tracks: Vec<TrackData>,
}

impl Trace {
    /// The track for `key`, if it recorded anything.
    pub fn track(&self, key: TrackKey) -> Option<&TrackData> {
        self.tracks.iter().find(|t| t.key == key)
    }

    /// All per-rank tracks, in rank order.
    pub fn rank_tracks(&self) -> impl Iterator<Item = &TrackData> {
        self.tracks
            .iter()
            .filter(|t| matches!(t.key, TrackKey::Rank(_)))
    }

    /// All per-OST tracks, in OST order.
    pub fn ost_tracks(&self) -> impl Iterator<Item = &TrackData> {
        self.tracks
            .iter()
            .filter(|t| matches!(t.key, TrackKey::Ost(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let sink = TraceSink::disabled();
        let rec = sink.recorder(TrackKey::Rank(0));
        assert!(!sink.is_enabled());
        assert!(!rec.enabled());
        rec.span("cat", "s", 0.0, 1.0, vec![]);
        rec.count("c", 1);
        sink.append(TrackKey::Rank(1), Event::Counter { name: "x", ts_us: 0.0, value: 1.0 });
        assert!(sink.finish().tracks.is_empty());
    }

    #[test]
    fn recorder_appends_in_order() {
        let sink = TraceSink::enabled();
        let rec = sink.recorder_on_node(TrackKey::Rank(2), Some(1));
        rec.span("phase", "Sync", 10.0, 25.0, vec![("k", ArgValue::U64(3))]);
        rec.instant("mark", "classify", 11.0, vec![]);
        rec.counter("depth", 12.0, 4.0);
        rec.count("events", 3);
        rec.observe("bytes", 1024.0);
        let trace = sink.finish();
        let track = trace.track(TrackKey::Rank(2)).unwrap();
        assert_eq!(track.node, Some(1));
        assert_eq!(track.events.len(), 3);
        assert_eq!(track.counters["events"], 3);
        assert_eq!(track.hists["bytes"].count, 1);
        assert_eq!(track.span_total_us("phase", Some("Sync")), 15.0);
        assert_eq!(track.span_total_us("phase", None), 15.0);
        assert_eq!(track.span_total_us("other", None), 0.0);
    }

    #[test]
    fn ost_tracks_sort_deterministically() {
        let mk = |order: &[usize]| {
            let sink = TraceSink::enabled();
            let events = [
                Event::Span {
                    cat: "ost",
                    name: Cow::Borrowed("serve"),
                    start_us: 5.0,
                    dur_us: 2.0,
                    args: vec![("bytes", ArgValue::U64(10))],
                },
                Event::Span {
                    cat: "ost",
                    name: Cow::Borrowed("serve"),
                    start_us: 1.0,
                    dur_us: 4.0,
                    args: vec![("bytes", ArgValue::U64(20))],
                },
                Event::Span {
                    cat: "ost",
                    name: Cow::Borrowed("serve"),
                    start_us: 5.0,
                    dur_us: 2.0,
                    args: vec![("bytes", ArgValue::U64(30))],
                },
            ];
            for &i in order {
                sink.append(TrackKey::Ost(0), events[i].clone());
            }
            sink.finish().track(TrackKey::Ost(0)).unwrap().events.clone()
        };
        assert_eq!(mk(&[0, 1, 2]), mk(&[2, 0, 1]));
        assert_eq!(mk(&[0, 1, 2]), mk(&[1, 2, 0]));
    }

    #[test]
    fn hist_buckets_and_merge() {
        let mut h = Hist::default();
        h.observe(0.5);
        h.observe(1.0);
        h.observe(3.0);
        h.observe(1024.0);
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[&-1], 1);
        assert_eq!(h.buckets[&0], 1);
        assert_eq!(h.buckets[&1], 1);
        assert_eq!(h.buckets[&10], 1);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1024.0);

        let mut other = Hist::default();
        other.observe(2.0);
        h.merge(&other);
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[&1], 2);
        let mut empty = Hist::default();
        empty.merge(&h);
        assert_eq!(empty, h);
    }

    #[test]
    fn tracks_merge_in_key_order() {
        let sink = TraceSink::enabled();
        sink.add_count(TrackKey::Ost(1), "n", 1);
        sink.add_count(TrackKey::Rank(3), "n", 1);
        sink.add_count(TrackKey::Rank(0), "n", 1);
        sink.add_count(TrackKey::Ost(0), "n", 1);
        let keys: Vec<TrackKey> = sink.finish().tracks.iter().map(|t| t.key).collect();
        assert_eq!(
            keys,
            vec![
                TrackKey::Rank(0),
                TrackKey::Rank(3),
                TrackKey::Ost(0),
                TrackKey::Ost(1)
            ]
        );
    }
}
