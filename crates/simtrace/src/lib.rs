//! # simtrace — cross-layer virtual-time tracing and metrics
//!
//! The reproduction's observability layer. Every simulated rank and OST
//! owns a *track* of timeline events (spans, instants, counter samples)
//! keyed by **virtual time**, plus monotone metrics (counters, log2
//! histograms). Recording goes through a [`TraceSink`] that is a no-op by
//! default: the instrumented layers pay one branch when tracing is off, so
//! release benchmark numbers are unchanged.
//!
//! What the five instrumented layers record:
//!
//! * **simnet rendezvous** — who-waits-for-whom: one `rdv` span per
//!   participant per collective (arrival → last arrival) carrying the
//!   straggler's global rank, the direct attribution of the paper's
//!   collective wall (§2.2, Figures 1–2).
//! * **simmpi** — collective op spans with algorithm and byte counts;
//!   p2p byte histograms and wait spans.
//! * **simfs** — per-OST service intervals, queue-wait, queue-depth
//!   counter samples.
//! * **mpiio::twophase** — `phase` spans mirroring [`PhaseProfile`]
//!   charges exactly (they reconcile to <1 µs), plus per-round brackets
//!   of the extended two-phase exchange.
//! * **parcoll** — pattern classification, file-area boundaries,
//!   aggregator assignment and subgroup splits.
//!
//! Merging is deterministic (see [`TraceSink::finish`]); export targets
//! are Chrome/Perfetto trace-event JSON ([`chrome_trace_json`]) and a
//! machine-readable metrics document ([`metrics_json`]).
//!
//! Three post-processing layers build on the trace:
//!
//! * [`diff`] — cross-run critical-path diffing: [`digest`] reduces a
//!   run to stably-keyed aggregates, [`diff::diff`] aligns two digests
//!   and emits a ranked root-cause table ("io grew 11.8% on ost 6 in
//!   rounds 3–5").
//! * [`series`] — interval'd time-series (per-OST bandwidth/queue,
//!   per-rank phase occupancy, counter maxima) folded in O(intervals)
//!   memory.
//! * [`stream`] — the storage behind [`TraceSink::streaming`]: raw
//!   spans spill to disk in chunks and every exporter re-reads one
//!   track at a time, bounding trace memory for paper-scale runs.
//!
//! One module is deliberately *not* about virtual time: [`host`]
//! (a.k.a. `hostprof`) attributes the simulator's own wall-clock to
//! named hot paths (fiber scheduling, mailboxes, buffer pooling,
//! pack/unpack memcpy, trace recording itself). Its samples never enter
//! the deterministic artifacts above.
//!
//! # Example: setting up a sink and exporting a trace
//!
//! In real use the enabled sink is threaded through the stack — set
//! `ClusterConfig::trace` when driving `simnet::run_cluster`, or
//! `RunConfig::trace` in the workloads runner — and every layer records
//! into it. The recording API itself is plain:
//!
//! ```
//! use simtrace::{chrome_trace_json, metrics_json, TraceSink, TrackKey};
//!
//! let sink = TraceSink::enabled();           // `disabled()` = free no-op
//! let rec = sink.recorder(TrackKey::Rank(0)); // one track per rank/OST
//! rec.span("phase", "io", 0.0, 125.0, vec![]); // virtual µs
//! rec.count("bytes_written", 4096);
//!
//! let trace = sink.finish();                 // deterministic merge
//! let perfetto = chrome_trace_json(&trace);  // load in ui.perfetto.dev
//! assert!(perfetto.contains("rank 0"));
//! assert!(metrics_json(&trace).contains("bytes_written"));
//! ```
//!
//! Identical runs produce byte-identical exports, so trace JSON can sit
//! behind equality assertions in tests (see
//! `workloads/tests/trace_determinism.rs`).
//!
//! [`PhaseProfile`]: https://crates.io/crates/mpiio (in-workspace)

#![warn(missing_docs)]

pub mod analysis;
pub mod diff;
pub mod host;
pub mod json;
pub mod series;
pub mod stream;

mod export;
mod sink;

pub use analysis::{
    critical_path, rank_slack, sync_share, what_if, what_if_rank_bound_us, CriticalPath,
    PathEdge, PathSegment, RankSlack, WhatIf,
};
pub use diff::{digest, digest_from_json, digest_json, DiffReport, Finding, RunDigest};
pub use export::{chrome_trace_json, collective_ops, metrics_json, CollectiveOp};
pub use series::{series_from_trace, series_json, SeriesConfig, TimeSeries, TrackSeries};
pub use sink::{ArgValue, Event, Hist, Recorder, Trace, TraceSink, TrackData, TrackKey};
pub use stream::{StreamStats, StreamTrackMeta, StreamedTrace};
