//! Interval'd time-series folded from trace events.
//!
//! A full event trace answers "what happened at t" but costs O(events)
//! to hold; most regression questions only need "how busy was OST 6
//! around t". This module folds a track's events onto a fixed grid of
//! virtual-time buckets, turning an arbitrarily long run into
//! O(intervals) numbers per named series:
//!
//! * **OST tracks** — `ost_busy_us` and `ost_queue_wait_us` (span time
//!   distributed proportionally over the buckets it overlaps),
//!   `ost_bandwidth_mbps` (served bytes per bucket over bucket length;
//!   1 B/µs ≡ 1 decimal MB/s), and the per-bucket maximum of every
//!   counter sample (`ost_queue_depth`, `ost_backlog_us`).
//! * **Rank tracks** — `phase/<name>` occupancy per bucket plus the
//!   per-bucket maximum of counter samples (`mailbox_depth`,
//!   `autotune_groups`).
//!
//! Determinism: every fold runs over a track's events in their
//! deterministic merge order (rank tracks keep append order, OST tracks
//! are content-sorted first — see [`crate::TraceSink::finish`]), so the
//! f64 summation order is fixed and [`series_json`] is byte-reproducible
//! across reruns of the same configuration.

use crate::json::Json;
use crate::sink::{Event, Trace, TrackKey};
use std::collections::BTreeMap;

/// Folding parameters.
#[derive(Debug, Clone, Copy)]
pub struct SeriesConfig {
    /// Bucket width, virtual µs.
    pub interval_us: f64,
}

impl SeriesConfig {
    /// A config with the given bucket width (clamped to ≥ 1 µs).
    pub fn new(interval_us: f64) -> Self {
        SeriesConfig {
            interval_us: interval_us.max(1.0),
        }
    }
}

impl Default for SeriesConfig {
    /// 1 ms buckets — fine enough to see rounds, coarse enough that a
    /// paper-scale run stays a few thousand points per series.
    fn default() -> Self {
        SeriesConfig { interval_us: 1000.0 }
    }
}

/// The folded series of one track.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackSeries {
    /// Which rank or OST the series describe.
    pub key: TrackKey,
    /// Named series, each `n_intervals` long.
    pub series: BTreeMap<String, Vec<f64>>,
}

/// All tracks folded onto one shared bucket grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Bucket width, µs.
    pub interval_us: f64,
    /// Number of buckets (`ceil(wall / interval)`, at least 1).
    pub n_intervals: usize,
    /// The wall the grid covers, µs.
    pub wall_us: f64,
    /// Per-track folded series, ranks first then OSTs.
    pub tracks: Vec<TrackSeries>,
}

/// Latest instant touched by an event (span end, instant/counter ts).
pub(crate) fn event_end_us(event: &Event) -> f64 {
    match event {
        Event::Span { start_us, dur_us, .. } => start_us + dur_us,
        Event::Instant { ts_us, .. } => *ts_us,
        Event::Counter { ts_us, .. } => *ts_us,
    }
}

/// Incremental folder: size the grid once (from the wall), then feed it
/// one track at a time. This is what bounds streamed-series memory to
/// O(intervals) plus a single track's events.
#[derive(Debug, Clone)]
pub struct SeriesBuilder {
    interval_us: f64,
    n_intervals: usize,
    wall_us: f64,
    tracks: Vec<TrackSeries>,
}

impl SeriesBuilder {
    /// A builder for a run whose last event ends at `wall_us`.
    pub fn new(cfg: SeriesConfig, wall_us: f64) -> Self {
        let wall = wall_us.max(0.0);
        let n = (wall / cfg.interval_us).ceil() as usize;
        SeriesBuilder {
            interval_us: cfg.interval_us,
            n_intervals: n.max(1),
            wall_us: wall,
            tracks: Vec::new(),
        }
    }

    /// Distribute `amount` over the buckets `[start_us, end_us)` overlaps,
    /// proportionally to the overlap.
    fn spread(&self, buckets: &mut [f64], start_us: f64, end_us: f64, amount: f64) {
        let dur = end_us - start_us;
        if dur <= 0.0 || amount == 0.0 {
            // Zero-length activity lands wholly in its start bucket.
            if amount != 0.0 {
                let i = self.bucket(start_us);
                buckets[i] += amount;
            }
            return;
        }
        let first = self.bucket(start_us);
        let last = self.bucket(end_us.min(self.wall_us).max(start_us));
        for (i, b) in buckets.iter_mut().enumerate().take(last + 1).skip(first) {
            let lo = i as f64 * self.interval_us;
            let hi = lo + self.interval_us;
            let overlap = end_us.min(hi) - start_us.max(lo);
            if overlap > 0.0 {
                *b += amount * overlap / dur;
            }
        }
    }

    fn bucket(&self, t: f64) -> usize {
        ((t / self.interval_us) as usize).min(self.n_intervals - 1)
    }

    /// Fold one track's events (in deterministic order) into the grid.
    pub fn fold_track<'a>(&mut self, key: TrackKey, events: impl Iterator<Item = &'a Event>) {
        let n = self.n_intervals;
        let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        let buckets = |name: String, series: &mut BTreeMap<String, Vec<f64>>| {
            // Closure-shaped entry() to satisfy the borrow checker below.
            series.entry(name).or_insert_with(|| vec![0.0; n]);
        };
        let is_ost = matches!(key, TrackKey::Ost(_));
        let mut bytes: Vec<f64> = Vec::new();
        for event in events {
            match event {
                Event::Span {
                    cat,
                    name,
                    start_us,
                    dur_us,
                    args,
                } => {
                    let end = start_us + dur_us;
                    match (*cat, is_ost) {
                        ("ost", true) if name == "serve" => {
                            buckets("ost_busy_us".into(), &mut series);
                            let b = series.get_mut("ost_busy_us").expect("just inserted");
                            self.spread(b, *start_us, end, *dur_us);
                            if let Some(v) = arg_f64(args, "bytes") {
                                if bytes.is_empty() {
                                    bytes = vec![0.0; n];
                                }
                                self.spread(&mut bytes, *start_us, end, v);
                            }
                        }
                        ("ost", true) if name == "queue" => {
                            buckets("ost_queue_wait_us".into(), &mut series);
                            let b = series.get_mut("ost_queue_wait_us").expect("just inserted");
                            self.spread(b, *start_us, end, *dur_us);
                        }
                        ("phase", false) => {
                            let key = format!("phase/{name}");
                            buckets(key.clone(), &mut series);
                            let b = series.get_mut(&key).expect("just inserted");
                            self.spread(b, *start_us, end, *dur_us);
                        }
                        _ => {}
                    }
                }
                Event::Counter { name, ts_us, value } => {
                    // Counters fold as the per-bucket sample maximum —
                    // right for depth/backlog gauges, harmless for the
                    // (monotone within an epoch) autotune group count.
                    buckets((*name).into(), &mut series);
                    let b = series.get_mut(*name).expect("just inserted");
                    let i = self.bucket(*ts_us);
                    b[i] = b[i].max(*value);
                }
                Event::Instant { .. } => {}
            }
        }
        if !bytes.is_empty() {
            let mbps: Vec<f64> = bytes.iter().map(|b| b / self.interval_us).collect();
            series.insert("ost_bandwidth_mbps".into(), mbps);
        }
        if !series.is_empty() {
            self.tracks.push(TrackSeries { key, series });
        }
    }

    /// Finish folding.
    pub fn build(self) -> TimeSeries {
        TimeSeries {
            interval_us: self.interval_us,
            n_intervals: self.n_intervals,
            wall_us: self.wall_us,
            tracks: self.tracks,
        }
    }
}

fn arg_f64(args: &[(&'static str, crate::sink::ArgValue)], key: &str) -> Option<f64> {
    args.iter().find(|(k, _)| *k == key).and_then(|(_, v)| match v {
        crate::sink::ArgValue::F64(v) => Some(*v),
        crate::sink::ArgValue::U64(v) => Some(*v as f64),
        _ => None,
    })
}

/// Fold a finished in-memory trace. (For a streamed trace, use
/// `StreamedTrace::series`, which never holds more than one track's
/// events.)
pub fn series_from_trace(trace: &Trace, cfg: SeriesConfig) -> TimeSeries {
    let wall = trace
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .map(event_end_us)
        .fold(0.0, f64::max);
    let mut builder = SeriesBuilder::new(cfg, wall);
    for track in &trace.tracks {
        builder.fold_track(track.key, track.events.iter());
    }
    builder.build()
}

/// Render a folded series as a machine-readable JSON document
/// (`kind: "simtrace_series"`). Byte-reproducible: identical runs fold
/// to identical bytes.
pub fn series_json(ts: &TimeSeries) -> String {
    let tracks = ts
        .tracks
        .iter()
        .map(|t| {
            Json::Obj(vec![
                ("track".into(), Json::Str(t.key.label())),
                (
                    "series".into(),
                    Json::Obj(
                        t.series
                            .iter()
                            .map(|(name, vals)| {
                                (
                                    name.clone(),
                                    Json::Arr(vals.iter().map(|v| Json::Num(*v)).collect()),
                                )
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("kind".into(), Json::Str("simtrace_series".into())),
        ("interval_us".into(), Json::Num(ts.interval_us)),
        ("n_intervals".into(), Json::U64(ts.n_intervals as u64)),
        ("wall_us".into(), Json::Num(ts.wall_us)),
        ("tracks".into(), Json::Arr(tracks)),
    ])
    .pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    fn sample() -> Trace {
        let sink = TraceSink::enabled();
        let r0 = sink.recorder(TrackKey::Rank(0));
        r0.span("phase", "io", 0.0, 15.0, vec![]);
        r0.span("phase", "sync", 15.0, 20.0, vec![]);
        r0.counter("mailbox_depth", 3.0, 2.0);
        r0.counter("mailbox_depth", 7.0, 5.0);
        let ost = sink.recorder(TrackKey::Ost(0));
        ost.span("ost", "serve", 5.0, 25.0, vec![("bytes", 2000u64.into())]);
        ost.span("ost", "queue", 2.0, 5.0, vec![]);
        ost.counter("ost_queue_depth", 6.0, 3.0);
        sink.finish()
    }

    #[test]
    fn spans_spread_proportionally() {
        let ts = series_from_trace(&sample(), SeriesConfig::new(10.0));
        assert_eq!(ts.n_intervals, 3); // wall 25 µs, 10 µs buckets
        let rank = &ts.tracks[0];
        assert_eq!(rank.key, TrackKey::Rank(0));
        assert_eq!(rank.series["phase/io"], vec![10.0, 5.0, 0.0]);
        assert_eq!(rank.series["phase/sync"], vec![0.0, 5.0, 0.0]);
        // Counter folds to per-bucket max.
        assert_eq!(rank.series["mailbox_depth"], vec![5.0, 0.0, 0.0]);
        let ost = &ts.tracks[1];
        assert_eq!(ost.series["ost_busy_us"], vec![5.0, 10.0, 5.0]);
        assert_eq!(ost.series["ost_queue_wait_us"], vec![3.0, 0.0, 0.0]);
        // 2000 B over [5,25): 500/1000/500 B per bucket, /10 µs each.
        assert_eq!(ost.series["ost_bandwidth_mbps"], vec![50.0, 100.0, 50.0]);
        assert_eq!(ost.series["ost_queue_depth"], vec![3.0, 0.0, 0.0]);
    }

    #[test]
    fn json_is_reproducible_and_tagged() {
        let a = series_json(&series_from_trace(&sample(), SeriesConfig::default()));
        let b = series_json(&series_from_trace(&sample(), SeriesConfig::default()));
        assert_eq!(a, b);
        let doc = Json::parse(&a).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("simtrace_series"));
        assert_eq!(doc.get("n_intervals").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn empty_trace_folds_to_one_empty_interval() {
        let ts = series_from_trace(&TraceSink::enabled().finish(), SeriesConfig::default());
        assert_eq!(ts.n_intervals, 1);
        assert!(ts.tracks.is_empty());
    }
}
