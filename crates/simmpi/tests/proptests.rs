//! Property-based tests for the MPI-like layer: collectives agree with
//! straightforward reference computations for arbitrary inputs and group
//! shapes.

use proptest::prelude::*;
use simmpi::{Communicator, ReduceOp};
use simnet::{run_cluster, ClusterConfig, IoBuffer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allgather returns everyone's contribution in rank order for any
    /// cluster size and payloads.
    #[test]
    fn allgather_matches_reference(n in 1usize..12,
                                   seeds in proptest::collection::vec(any::<u8>(), 1..12)) {
        prop_assume!(seeds.len() >= n);
        let seeds2 = seeds.clone();
        let out = run_cluster(ClusterConfig::ideal(n), move |ep| {
            let comm = Communicator::world(&ep);
            let mine = vec![seeds2[comm.rank()]; comm.rank() + 1];
            let got = comm.allgather(IoBuffer::from_slice(&mine));
            got.iter().map(|b| b.as_slice().unwrap().to_vec()).collect::<Vec<_>>()
        });
        for got in out {
            for (r, v) in got.iter().enumerate() {
                prop_assert_eq!(v, &vec![seeds[r]; r + 1]);
            }
        }
    }

    /// Allreduce equals a sequential fold for every operator.
    #[test]
    fn allreduce_matches_fold(n in 1usize..10,
                              vals in proptest::collection::vec(0u64..1000, 1..10),
                              op_pick in 0usize..4) {
        prop_assume!(vals.len() >= n);
        let op = [ReduceOp::Sum, ReduceOp::Max, ReduceOp::Min, ReduceOp::LOr][op_pick];
        let vals2 = vals.clone();
        let out = run_cluster(ClusterConfig::ideal(n), move |ep| {
            let comm = Communicator::world(&ep);
            comm.allreduce_u64(&[vals2[comm.rank()]], op)[0]
        });
        let expect = vals[..n].iter().copied().reduce(|a, b| op.apply_u64(a, b)).unwrap();
        prop_assert!(out.iter().all(|&v| v == expect));
    }

    /// Scan yields inclusive prefixes.
    #[test]
    fn scan_matches_prefix(n in 1usize..10,
                           vals in proptest::collection::vec(0u64..1000, 1..10)) {
        prop_assume!(vals.len() >= n);
        let vals2 = vals.clone();
        let out = run_cluster(ClusterConfig::ideal(n), move |ep| {
            let comm = Communicator::world(&ep);
            comm.scan_u64(&[vals2[comm.rank()]], ReduceOp::Sum)[0]
        });
        let mut acc = 0u64;
        for (r, &got) in out.iter().enumerate() {
            acc += vals[r];
            prop_assert_eq!(got, acc, "rank {}", r);
        }
    }

    /// Alltoall is an exact transpose for arbitrary pairwise payloads.
    #[test]
    fn alltoall_is_transpose(n in 1usize..8, salt in any::<u8>()) {
        let out = run_cluster(ClusterConfig::ideal(n), move |ep| {
            let comm = Communicator::world(&ep);
            let me = comm.rank() as u8;
            let bufs: Vec<IoBuffer> = (0..comm.size())
                .map(|d| IoBuffer::from_slice(&[me, d as u8, salt]))
                .collect();
            comm.alltoall(bufs)
                .iter()
                .map(|b| b.as_slice().unwrap().to_vec())
                .collect::<Vec<_>>()
        });
        for (dst, got) in out.iter().enumerate() {
            for (src, v) in got.iter().enumerate() {
                prop_assert_eq!(v, &vec![src as u8, dst as u8, salt]);
            }
        }
    }

    /// Split by arbitrary colors: each subgroup sums only its members.
    #[test]
    fn split_partitions_correctly(n in 2usize..10,
                                  colors in proptest::collection::vec(0i64..3, 2..10)) {
        prop_assume!(colors.len() >= n);
        let colors2 = colors.clone();
        let out = run_cluster(ClusterConfig::ideal(n), move |ep| {
            let comm = Communicator::world(&ep);
            let sub = comm.split(Some(colors2[comm.rank()]), 0).unwrap();
            (sub.size(), sub.allreduce_u64(&[comm.rank() as u64], ReduceOp::Sum)[0])
        });
        for (rank, (size, sum)) in out.iter().enumerate() {
            let members: Vec<usize> =
                (0..n).filter(|&r| colors[r] == colors[rank]).collect();
            prop_assert_eq!(*size, members.len());
            prop_assert_eq!(*sum, members.iter().map(|&r| r as u64).sum::<u64>());
        }
    }

    /// Point-to-point payloads arrive unmodified under arbitrary tags.
    #[test]
    fn p2p_payload_integrity(data in proptest::collection::vec(any::<u8>(), 0..200),
                             tag in 0i32..1000) {
        let data2 = data.clone();
        let out = run_cluster(ClusterConfig::ideal(2), move |ep| {
            let comm = Communicator::world(&ep);
            if comm.rank() == 0 {
                comm.send(1, tag, IoBuffer::from_slice(&data2));
                Vec::new()
            } else {
                comm.recv(0, tag).as_slice().unwrap().to_vec()
            }
        });
        prop_assert_eq!(&out[1], &data);
    }
}
