//! Point-to-point messaging on a communicator.
//!
//! Sends are *eager*: the payload is deposited at the destination mailbox
//! immediately (Catamount's Portals stack delivers user-space to user-space
//! without kernel buffering, and the two-phase exchange pre-posts receives,
//! so eager completion is the faithful model). `isend` therefore completes
//! locally at post time, and `irecv`/[`Communicator::waitall`] provide the
//! overlap semantics the two-phase protocol depends on: the clock advances
//! to the **maximum** arrival across the batch, not the sum.

use crate::comm::Communicator;
use simnet::{IoBuffer, SimTime};

/// Handle for a posted non-blocking receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecvRequest {
    pub(crate) src_local: usize,
    pub(crate) tag: i32,
}

impl Communicator<'_> {
    /// Blocking standard send to `dst` (local rank).
    pub fn send(&self, dst: usize, tag: i32, buf: IoBuffer) {
        let global = self.global_rank(dst);
        let rec = self.ep.trace();
        if rec.enabled() {
            rec.observe("p2p_send_bytes", buf.len() as f64);
            rec.count("p2p_sends", 1);
        }
        self.ep.send(global, self.shared.ctx, tag, buf);
    }

    /// Non-blocking send. With eager delivery this is identical to
    /// [`send`](Communicator::send); it exists so protocol code reads like
    /// its MPI original.
    pub fn isend(&self, dst: usize, tag: i32, buf: IoBuffer) {
        self.send(dst, tag, buf);
    }

    /// Blocking receive from `src` (local rank) with `tag`.
    pub fn recv(&self, src: usize, tag: i32) -> IoBuffer {
        let global = self.global_rank(src);
        let entry = self.ep.now();
        let (buf, info) = self.ep.recv_meta(global, self.shared.ctx, tag);
        self.ep.clock().advance_to(info.arrival);
        self.ep.clock().advance(self.ep.net().recv_overhead(buf.len()));
        let rec = self.ep.trace();
        if rec.enabled() {
            // Mailbox depth at entry, derived from virtual time (the
            // message had already landed iff arrival ≤ entry) — never
            // sampled from the host-side queue, which is racy.
            rec.counter(
                "mailbox_depth",
                entry.as_micros(),
                if info.arrival <= entry { 1.0 } else { 0.0 },
            );
            rec.span(
                "p2p",
                "recv",
                entry.as_micros(),
                self.ep.now().as_micros(),
                vec![
                    ("src", simtrace::ArgValue::from(global)),
                    ("tag", simtrace::ArgValue::from(tag as u64)),
                    ("bytes", simtrace::ArgValue::from(buf.len())),
                    // Send→recv edge identity for trace analysis: when
                    // the sender posted and when the last byte landed.
                    ("sent_us", simtrace::ArgValue::from(info.sent.as_micros())),
                    ("arrival_us", simtrace::ArgValue::from(info.arrival.as_micros())),
                ],
            );
        }
        buf
    }

    /// Post a non-blocking receive; complete it with
    /// [`waitall`](Communicator::waitall).
    pub fn irecv(&self, src: usize, tag: i32) -> RecvRequest {
        RecvRequest {
            src_local: src,
            tag,
        }
    }

    /// Complete a batch of posted receives. Payloads are returned in
    /// request order; the clock advances to the latest arrival plus one
    /// receive overhead per message (the CPU cost of completing each).
    pub fn waitall(&self, reqs: &[RecvRequest]) -> Vec<IoBuffer> {
        let entry = self.ep.now();
        let mut payloads = Vec::with_capacity(reqs.len());
        let mut latest = SimTime::ZERO;
        let mut overhead = SimTime::ZERO;
        // The message whose arrival bounds the batch (ties → first in
        // request order), exported as the waitall's binding edge.
        let mut bind: Option<(usize, simnet::RecvInfo)> = None;
        let mut ready_at_entry = 0u64;
        for req in reqs {
            let global = self.global_rank(req.src_local);
            let (payload, info) = self.ep.recv_meta(global, self.shared.ctx, req.tag);
            if info.arrival <= entry {
                ready_at_entry += 1;
            }
            if info.arrival > latest || bind.is_none() {
                bind = Some((global, info));
            }
            latest = latest.max(info.arrival);
            overhead += self.ep.net().recv_overhead(payload.len());
            payloads.push(payload);
        }
        // hostprof: completion bookkeeping after every packet is in hand
        // (the recv_meta loop above can block and stays outside the
        // scope); the trace span below nests under this frame.
        let _hp = simtrace::host::scope(simtrace::host::Site::P2pWaitall);
        self.ep.clock().advance_to(latest);
        self.ep.clock().advance(overhead);
        let rec = self.ep.trace();
        if rec.enabled() && !reqs.is_empty() {
            let bytes: usize = payloads.iter().map(IoBuffer::len).sum();
            let (bind_src, bind_info) = bind.expect("nonempty batch has a binding message");
            // Messages already landed when the wait began — the
            // virtual-time mailbox backlog this rank walked into.
            rec.counter("mailbox_depth", entry.as_micros(), ready_at_entry as f64);
            rec.span(
                "p2p",
                "waitall",
                entry.as_micros(),
                self.ep.now().as_micros(),
                vec![
                    ("n", simtrace::ArgValue::from(reqs.len())),
                    ("bytes", simtrace::ArgValue::from(bytes)),
                    // Binding-edge identity: the latest-arriving message
                    // (global sender, post instant, landing instant).
                    ("bind_src", simtrace::ArgValue::from(bind_src)),
                    ("bind_sent_us", simtrace::ArgValue::from(bind_info.sent.as_micros())),
                    ("bind_arrival_us", simtrace::ArgValue::from(bind_info.arrival.as_micros())),
                ],
            );
        }
        payloads
    }

    /// Combined send+receive (deadlock-free pairwise exchange).
    pub fn sendrecv(
        &self,
        dst: usize,
        send_tag: i32,
        buf: IoBuffer,
        src: usize,
        recv_tag: i32,
    ) -> IoBuffer {
        self.isend(dst, send_tag, buf);
        self.recv(src, recv_tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Communicator;
    use simnet::{run_cluster, ClusterConfig};

    #[test]
    fn send_recv_round_trip() {
        run_cluster(ClusterConfig::ideal(2), |ep| {
            let comm = Communicator::world(&ep);
            if comm.rank() == 0 {
                comm.send(1, 5, IoBuffer::from_slice(b"hello"));
            } else {
                let got = comm.recv(0, 5);
                assert_eq!(got.as_slice().unwrap(), b"hello");
            }
        });
    }

    #[test]
    fn p2p_respects_subcommunicator_rank_translation() {
        run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            // Odd ranks form a subgroup; sub rank 0 is global 1.
            let sub = world.split(Some((ep.rank() % 2) as i64), 0).unwrap();
            if ep.rank() % 2 == 1 {
                if sub.rank() == 0 {
                    sub.send(1, 0, IoBuffer::from_slice(&[9]));
                } else {
                    let got = sub.recv(0, 0);
                    assert_eq!(got.as_slice().unwrap(), &[9]);
                }
            }
        });
    }

    #[test]
    fn waitall_completes_at_max_arrival_not_sum() {
        let out = run_cluster(ClusterConfig::ideal(5), |ep| {
            let comm = Communicator::world(&ep);
            if comm.rank() == 0 {
                let reqs: Vec<RecvRequest> = (1..5).map(|s| comm.irecv(s, 0)).collect();
                let bufs = comm.waitall(&reqs);
                assert_eq!(bufs.len(), 4);
                for (i, b) in bufs.iter().enumerate() {
                    assert_eq!(b.len(), (i + 1) * 1000);
                }
                ep.now().as_secs()
            } else {
                comm.send(0, 0, IoBuffer::synthetic(comm.rank() * 1000));
                0.0
            }
        });
        // Ideal net: 1GB/s, 1us latency. Largest message 4000B ~ 4us + 1us.
        // If arrivals were summed the time would exceed ~10us.
        let t = out[0] * 1e6;
        assert!(t < 8.0, "waitall took {t}us — arrivals were summed, not maxed");
    }

    #[test]
    fn messages_on_same_key_do_not_overtake() {
        run_cluster(ClusterConfig::ideal(2), |ep| {
            let comm = Communicator::world(&ep);
            if comm.rank() == 0 {
                for i in 0..20u8 {
                    comm.send(1, 3, IoBuffer::from_slice(&[i]));
                }
            } else {
                for i in 0..20u8 {
                    let got = comm.recv(0, 3);
                    assert_eq!(got.as_slice().unwrap(), &[i]);
                }
            }
        });
    }

    #[test]
    fn sendrecv_pairwise_exchange() {
        let out = run_cluster(ClusterConfig::ideal(2), |ep| {
            let comm = Communicator::world(&ep);
            let peer = 1 - comm.rank();
            let got = comm.sendrecv(
                peer,
                1,
                IoBuffer::from_slice(&[comm.rank() as u8]),
                peer,
                1,
            );
            got.as_slice().unwrap()[0]
        });
        assert_eq!(out, vec![1, 0]);
    }

    #[test]
    fn synthetic_payloads_flow_through_p2p() {
        run_cluster(ClusterConfig::ideal(2), |ep| {
            let comm = Communicator::world(&ep);
            if comm.rank() == 0 {
                comm.send(1, 0, IoBuffer::synthetic(1 << 20));
            } else {
                let got = comm.recv(0, 0);
                assert_eq!(got, IoBuffer::synthetic(1 << 20));
                // Clock must reflect the 1MB transfer (1ms at 1GB/s).
                assert!(ep.now().as_millis() >= 1.0);
            }
        });
    }
}
