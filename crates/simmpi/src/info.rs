//! MPI_Info-style hint dictionary.
//!
//! MPI-IO tuning travels through string key/value hints (`MPI_Info`).
//! ROMIO's collective-buffering hints (`cb_nodes`, `cb_buffer_size`,
//! `cb_config_list`) and the ParColl extensions (`parcoll_groups`,
//! `parcoll_min_group`, aggregator lists — paper §4.2: "the number of I/O
//! aggregators to use from the default list, or a list of physical nodes
//! to use as I/O aggregators") are all passed this way, so applications
//! need no API changes to adopt ParColl — exactly the paper's
//! compatibility claim.

use std::collections::BTreeMap;
use std::fmt;

/// An ordered string key/value dictionary, mirroring `MPI_Info`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Info {
    kv: BTreeMap<String, String>,
}

impl Info {
    /// Empty hint set.
    pub fn new() -> Self {
        Info::default()
    }

    /// Set (or overwrite) a hint.
    pub fn set(&mut self, key: &str, value: impl fmt::Display) -> &mut Self {
        self.kv.insert(key.to_string(), value.to_string());
        self
    }

    /// Builder-style set.
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.set(key, value);
        self
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }

    /// Parse a hint as `usize`; `None` if absent or malformed (malformed
    /// hints are ignored, as MPI implementations do).
    pub fn get_usize(&self, key: &str) -> Option<usize> {
        self.get(key)?.trim().parse().ok()
    }

    /// Parse a hint as boolean (`true`/`false`/`1`/`0`/`enable`/`disable`).
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)?.trim().to_ascii_lowercase().as_str() {
            "true" | "1" | "enable" | "enabled" | "yes" => Some(true),
            "false" | "0" | "disable" | "disabled" | "no" => Some(false),
            _ => None,
        }
    }

    /// Parse a comma-separated list of `usize` (used for explicit
    /// aggregator rank lists).
    pub fn get_usize_list(&self, key: &str) -> Option<Vec<usize>> {
        let raw = self.get(key)?;
        let mut out = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            out.push(part.parse().ok()?);
        }
        Some(out)
    }

    /// Number of hints set.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// True if no hints are set.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Iterate hints in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.kv.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

impl fmt::Display for Info {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_round_trip() {
        let mut info = Info::new();
        info.set("cb_nodes", 16).set("cb_buffer_size", 4 << 20);
        assert_eq!(info.get("cb_nodes"), Some("16"));
        assert_eq!(info.get_usize("cb_buffer_size"), Some(4 << 20));
        assert_eq!(info.len(), 2);
    }

    #[test]
    fn builder_style() {
        let info = Info::new().with("parcoll_groups", 64).with("romio_cb_write", "enable");
        assert_eq!(info.get_usize("parcoll_groups"), Some(64));
        assert_eq!(info.get_bool("romio_cb_write"), Some(true));
    }

    #[test]
    fn malformed_numbers_are_ignored() {
        let info = Info::new().with("cb_nodes", "lots");
        assert_eq!(info.get_usize("cb_nodes"), None);
    }

    #[test]
    fn bool_spellings() {
        for (s, v) in [
            ("true", true),
            ("1", true),
            ("enable", true),
            ("false", false),
            ("0", false),
            ("disable", false),
        ] {
            let info = Info::new().with("k", s);
            assert_eq!(info.get_bool("k"), Some(v), "{s}");
        }
        assert_eq!(Info::new().with("k", "maybe").get_bool("k"), None);
    }

    #[test]
    fn usize_list_parsing() {
        let info = Info::new().with("cb_config_list", "0, 4,8 ,12");
        assert_eq!(info.get_usize_list("cb_config_list"), Some(vec![0, 4, 8, 12]));
        let bad = Info::new().with("cb_config_list", "0,x");
        assert_eq!(bad.get_usize_list("cb_config_list"), None);
    }

    #[test]
    fn overwrite_replaces() {
        let mut info = Info::new();
        info.set("k", 1);
        info.set("k", 2);
        assert_eq!(info.get_usize("k"), Some(2));
        assert_eq!(info.len(), 1);
    }

    #[test]
    fn display_is_stable_key_order() {
        let info = Info::new().with("b", 2).with("a", 1);
        assert_eq!(info.to_string(), "a=1 b=2");
    }
}
