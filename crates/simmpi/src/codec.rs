//! Byte encoding helpers for protocol metadata.
//!
//! The MPI-IO protocols exchange small metadata payloads — offset lists,
//! length lists, (start, end) ranges — over point-to-point messages. As in
//! a real MPI program, those travel as bytes; this module provides the
//! little-endian encode/decode pairs used throughout, so message layouts
//! live in one place.

use simnet::IoBuffer;

/// Encode a slice of `u64` as little-endian bytes.
pub fn encode_u64s(vals: &[u64]) -> IoBuffer {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    IoBuffer::from_vec(out)
}

/// Decode a buffer produced by [`encode_u64s`]. Panics on a synthetic or
/// misaligned buffer — metadata is always real, even in synthetic-data
/// performance runs.
pub fn decode_u64s(buf: &IoBuffer) -> Vec<u64> {
    let bytes = buf
        .as_slice()
        .expect("protocol metadata must be a real buffer");
    assert!(
        bytes.len().is_multiple_of(8),
        "u64 metadata payload has odd length {}",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode a slice of `i64` as little-endian bytes.
pub fn encode_i64s(vals: &[i64]) -> IoBuffer {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    IoBuffer::from_vec(out)
}

/// Decode a buffer produced by [`encode_i64s`].
pub fn decode_i64s(buf: &IoBuffer) -> Vec<i64> {
    let bytes = buf
        .as_slice()
        .expect("protocol metadata must be a real buffer");
    assert!(
        bytes.len().is_multiple_of(8),
        "i64 metadata payload has odd length {}",
        bytes.len()
    );
    bytes
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

/// Encode `(u64, u64)` pairs (e.g. offset/length runs).
pub fn encode_pairs(pairs: &[(u64, u64)]) -> IoBuffer {
    let mut out = Vec::with_capacity(pairs.len() * 16);
    for (a, b) in pairs {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
    IoBuffer::from_vec(out)
}

/// Decode a buffer produced by [`encode_pairs`].
pub fn decode_pairs(buf: &IoBuffer) -> Vec<(u64, u64)> {
    let vals = decode_u64s(buf);
    assert!(vals.len().is_multiple_of(2), "pair payload has odd element count");
    vals.chunks_exact(2).map(|c| (c[0], c[1])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trip() {
        let vals = vec![0u64, 1, u64::MAX, 42, 1 << 40];
        assert_eq!(decode_u64s(&encode_u64s(&vals)), vals);
    }

    #[test]
    fn i64_round_trip_with_negatives() {
        let vals = vec![0i64, -1, i64::MIN, i64::MAX, -12345];
        assert_eq!(decode_i64s(&encode_i64s(&vals)), vals);
    }

    #[test]
    fn pairs_round_trip() {
        let pairs = vec![(0u64, 7u64), (1 << 33, 4096), (u64::MAX, 0)];
        assert_eq!(decode_pairs(&encode_pairs(&pairs)), pairs);
    }

    #[test]
    fn empty_slices_round_trip() {
        assert!(decode_u64s(&encode_u64s(&[])).is_empty());
        assert!(decode_pairs(&encode_pairs(&[])).is_empty());
    }

    #[test]
    #[should_panic(expected = "real buffer")]
    fn synthetic_metadata_rejected() {
        decode_u64s(&IoBuffer::synthetic(8));
    }

    #[test]
    #[should_panic(expected = "odd length")]
    fn misaligned_payload_rejected() {
        decode_u64s(&IoBuffer::from_slice(&[1, 2, 3]));
    }
}
