//! Additional collective operations beyond the two-phase core set:
//! exclusive scan, reduce-scatter, and a vector broadcast. These round
//! out the MPI surface for applications built on this stack (Flash-style
//! codes use reduce-scatter for load statistics; checkpoint headers use
//! vector broadcasts).

use crate::comm::{Communicator, MeetLabel};
use crate::ReduceOp;
use simnet::IoBuffer;

impl Communicator<'_> {
    /// Exclusive prefix scan (`MPI_Exscan`): rank r receives the
    /// reduction of ranks `0..r`; rank 0 receives the identity for the
    /// operator (0 for Sum/LOr/Max over u64, `u64::MAX` for Min).
    pub fn exscan_u64(&self, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let net = self.ep.net().clone();
        let p = self.size();
        let bytes = vals.len() * 8;
        let me = self.rank();
        let label = MeetLabel {
            op: "exscan",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<u64>>, max| {
            let width = inputs[0].len();
            let identity = match op {
                ReduceOp::Min => u64::MAX,
                _ => 0,
            };
            let mut prefixes = Vec::with_capacity(inputs.len());
            let mut acc = vec![identity; width];
            for row in &inputs {
                assert_eq!(row.len(), width, "exscan width mismatch");
                prefixes.push(acc.clone());
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a = op.apply_u64(*a, b);
                }
            }
            (prefixes, max + net.scan_cost(p, bytes))
        });
        out[me].clone()
    }

    /// Reduce-scatter with equal blocks (`MPI_Reduce_scatter_block`):
    /// element-wise reduction of everyone's `p·n`-element vector, rank r
    /// receiving elements `r·n .. (r+1)·n` of the result.
    pub fn reduce_scatter_u64(&self, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let p = self.size();
        assert!(
            vals.len().is_multiple_of(p),
            "reduce_scatter needs a multiple of {p} elements, got {}",
            vals.len()
        );
        let n = vals.len() / p;
        let net = self.ep.net().clone();
        let bytes = vals.len() * 8;
        let me = self.rank();
        let label = MeetLabel {
            op: "reduce_scatter",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<u64>>, max| {
            let width = inputs[0].len();
            let mut acc = inputs[0].clone();
            for row in &inputs[1..] {
                assert_eq!(row.len(), width, "reduce_scatter width mismatch");
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a = op.apply_u64(*a, b);
                }
            }
            // Cost: a reduce plus a scatter of the blocks.
            let cost = net.reduce_cost(p, bytes) + net.scatter_cost(p, bytes / p);
            (acc, max + cost)
        });
        out[me * n..(me + 1) * n].to_vec()
    }

    /// Broadcast a vector of buffers from `root` (header + payload
    /// pattern). Non-roots pass `None`.
    pub fn bcast_vec(&self, root: usize, bufs: Option<Vec<IoBuffer>>) -> Vec<IoBuffer> {
        assert!(root < self.size(), "bcast root {root} out of range");
        debug_assert_eq!(bufs.is_some(), self.rank() == root);
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "bcast",
            alg: "binomial",
            bytes: bufs
                .as_ref()
                .map_or(0, |v| v.iter().map(IoBuffer::len).sum::<usize>() as u64),
        };
        let out = self.meet(label, bufs, move |inputs: Vec<Option<Vec<IoBuffer>>>, max| {
            let data = inputs
                .into_iter()
                .flatten()
                .next()
                .expect("bcast root supplied buffers");
            let total: usize = data.iter().map(IoBuffer::len).sum();
            (data, max + net.bcast_cost(p, total))
        });
        (*out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{run_cluster, ClusterConfig};

    #[test]
    fn exscan_sum_prefixes_exclude_self() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            comm.exscan_u64(&[comm.rank() as u64 + 1], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![0, 1, 3, 6]);
    }

    #[test]
    fn exscan_min_identity_is_max() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            comm.exscan_u64(&[comm.rank() as u64 + 5], ReduceOp::Min)[0]
        });
        assert_eq!(out, vec![u64::MAX, 5, 5]);
    }

    #[test]
    fn reduce_scatter_blocks() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            // Everyone contributes [r, r, r, 2r, 2r, 2r, 3r, 3r, 3r]-ish:
            let r = comm.rank() as u64 + 1;
            let vals: Vec<u64> = (0..9).map(|i| r * (i / 3 + 1)).collect();
            comm.reduce_scatter_u64(&vals, ReduceOp::Sum)
        });
        // Sum over ranks of r = 6; block k scaled by (k+1).
        assert_eq!(out[0], vec![6, 6, 6]);
        assert_eq!(out[1], vec![12, 12, 12]);
        assert_eq!(out[2], vec![18, 18, 18]);
    }

    #[test]
    #[should_panic(expected = "multiple of")]
    fn reduce_scatter_rejects_ragged_input() {
        run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let _ = comm.reduce_scatter_u64(&[1, 2, 3, 4], ReduceOp::Sum);
        });
    }

    #[test]
    fn bcast_vec_delivers_all_buffers() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let bufs = (comm.rank() == 1).then(|| {
                vec![
                    IoBuffer::from_slice(b"header"),
                    IoBuffer::from_slice(b"payload"),
                ]
            });
            let got = comm.bcast_vec(1, bufs);
            (
                got[0].as_slice().unwrap().to_vec(),
                got[1].as_slice().unwrap().to_vec(),
            )
        });
        for (h, p) in out {
            assert_eq!(h, b"header");
            assert_eq!(p, b"payload");
        }
    }
}
