//! Communicators: process groups with isolated contexts.

use simnet::rendezvous::Rendezvous;
use simnet::{Endpoint, SimTime};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Group state shared by all members of a communicator.
#[derive(Debug)]
pub(crate) struct CommShared {
    /// Context id isolating this communicator's point-to-point traffic.
    pub(crate) ctx: u32,
    /// Global rank of each local rank, ascending by local rank.
    pub(crate) members: Vec<usize>,
    /// Collective meeting point for this group.
    pub(crate) rdv: Arc<Rendezvous>,
}

/// A process group, mirroring `MPI_Comm`.
///
/// A `Communicator` borrows the rank's [`Endpoint`] (it cannot leave the
/// rank thread) and shares the group state with its peers. All the MPI-like
/// operations — point-to-point in [`crate::p2p`], collectives in
/// [`crate::coll`] — are methods on this type.
///
/// # Examples
///
/// ```
/// use simmpi::{Communicator, ReduceOp};
/// use simnet::{run_cluster, ClusterConfig};
///
/// let sums = run_cluster(ClusterConfig::ideal(4), |ep| {
///     let world = Communicator::world(&ep);
///     // Split into even/odd halves, sum ranks within each.
///     let half = world.split(Some((ep.rank() % 2) as i64), 0).unwrap();
///     half.allreduce_u64(&[ep.rank() as u64], ReduceOp::Sum)[0]
/// });
/// assert_eq!(sums, vec![2, 4, 2, 4]); // evens: 0+2, odds: 1+3
/// ```
pub struct Communicator<'ep> {
    pub(crate) ep: &'ep Endpoint,
    pub(crate) shared: Arc<CommShared>,
    pub(crate) my_local: usize,
}

/// Trace label for one collective entering the group rendezvous: the
/// MPI-level operation name, the algorithm the cost model charges for it,
/// and this rank's contributed byte count.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MeetLabel {
    pub(crate) op: &'static str,
    pub(crate) alg: &'static str,
    pub(crate) bytes: u64,
}

impl Clone for Communicator<'_> {
    fn clone(&self) -> Self {
        Communicator {
            ep: self.ep,
            shared: Arc::clone(&self.shared),
            my_local: self.my_local,
        }
    }
}

impl std::fmt::Debug for Communicator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Communicator")
            .field("ctx", &self.shared.ctx)
            .field("rank", &self.my_local)
            .field("size", &self.size())
            .finish()
    }
}

impl<'ep> Communicator<'ep> {
    /// The world communicator containing every rank of the cluster.
    pub fn world(ep: &'ep Endpoint) -> Self {
        let members: Vec<usize> = (0..ep.size()).collect();
        Communicator {
            ep,
            my_local: ep.rank(),
            shared: Arc::new(CommShared {
                ctx: 0,
                members,
                rdv: ep.world_rendezvous(),
            }),
        }
    }

    /// This rank's id within the communicator.
    pub fn rank(&self) -> usize {
        self.my_local
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// The underlying endpoint.
    pub fn endpoint(&self) -> &'ep Endpoint {
        self.ep
    }

    /// Translate a local rank to the cluster-global rank.
    pub fn global_rank(&self, local: usize) -> usize {
        self.shared.members[local]
    }

    /// Translate a global rank to a local rank, if a member.
    ///
    /// Linear scan: membership lists are consulted rarely (aggregator
    /// selection, once per open) and reordering keys make them unsorted.
    pub fn local_rank_of_global(&self, global: usize) -> Option<usize> {
        self.shared.members.iter().position(|&g| g == global)
    }

    /// Physical node hosting the given local rank.
    pub fn node_of(&self, local: usize) -> usize {
        self.ep.topology().node_of(self.global_rank(local))
    }

    /// Context id (diagnostic).
    pub fn context_id(&self) -> u32 {
        self.shared.ctx
    }

    /// Internal helper: run a collective through the group rendezvous,
    /// advancing this rank's clock to the common completion time.
    ///
    /// `combine` receives the inputs ordered by local rank and the maximum
    /// entry clock, and returns the shared result plus the completion time.
    ///
    /// When tracing is enabled, each rank emits a `rdv` span on its own
    /// timeline covering its entry to the last participant's arrival (the
    /// span duration *is* the collective wall this rank paid), tagged with
    /// the straggler's global rank and the operation's algorithm/volume.
    pub(crate) fn meet<T, R, F>(&self, label: MeetLabel, input: T, combine: F) -> Arc<R>
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>, SimTime) -> (R, SimTime),
    {
        let entry = self.ep.now();
        let (result, completion, info) =
            self.shared
                .rdv
                .meet_info(self.my_local, entry, input, combine);
        self.ep.clock().advance_to(completion);
        let rec = self.ep.trace();
        if rec.enabled() {
            rec.span(
                "rdv",
                label.op,
                entry.as_micros(),
                info.last_arrival.as_micros(),
                vec![
                    ("ctx", simtrace::ArgValue::from(self.shared.ctx as u64)),
                    ("seq", simtrace::ArgValue::from(info.seq)),
                    ("n", simtrace::ArgValue::from(self.size())),
                    (
                        "straggler",
                        simtrace::ArgValue::from(self.shared.members[info.straggler]),
                    ),
                    ("alg", simtrace::ArgValue::from(label.alg)),
                    ("bytes", simtrace::ArgValue::from(label.bytes)),
                    ("done_us", simtrace::ArgValue::from(completion.as_micros())),
                ],
            );
        }
        result
    }

    /// Run `f` exactly once at the group's meeting point and advance
    /// every member's clock to the completion instant `f` returns.
    ///
    /// `f` receives the latest entry clock among the members. Only the
    /// last-arriving member's closure executes, so side effects happen
    /// once per collective — which is what lets I/O layers charge a
    /// shared serial resource (e.g. a file system's metadata server) for
    /// the whole group at a virtual-time-keyed instant, independent of
    /// the order the OS happened to run the rank threads.
    pub fn once_at_meet<R, F>(&self, op: &'static str, f: F) -> Arc<R>
    where
        R: Send + Sync + 'static,
        F: FnOnce(SimTime) -> (R, SimTime),
    {
        self.meet(
            MeetLabel {
                op,
                alg: "rendezvous",
                bytes: 0,
            },
            (),
            move |_: Vec<()>, max| f(max),
        )
    }

    /// Split into disjoint sub-communicators by `color`, ordering members
    /// by `(key, parent rank)` — the `MPI_Comm_split` contract. Ranks
    /// passing `None` (MPI_UNDEFINED) receive `None`.
    ///
    /// This is a collective over the parent communicator; its cost is that
    /// of an 16-byte allgather (color+key), which is how implementations
    /// realize it.
    pub fn split(&self, color: Option<i64>, key: i64) -> Option<Communicator<'ep>> {
        let poison = self.ep.poison();
        let ctx_alloc = self.ep.ctx_allocator();
        let net = self.ep.net().clone();
        let p = self.size();
        let members = self.shared.members.clone();

        // Each rank contributes (color, key, global rank). The combiner
        // builds every subgroup once and hands each parent rank its
        // (shared state, local rank) assignment.
        type SplitOut = Vec<Option<(Arc<CommShared>, usize)>>;
        let assignment: Arc<SplitOut> = self.meet(
            MeetLabel {
                op: "comm_split",
                alg: "recursive_doubling",
                bytes: 16,
            },
            (color, key),
            move |inputs: Vec<(Option<i64>, i64)>, max_clock| {
                let mut by_color: std::collections::BTreeMap<i64, Vec<(i64, usize)>> =
                    std::collections::BTreeMap::new();
                for (parent_local, (c, k)) in inputs.iter().enumerate() {
                    if let Some(c) = c {
                        by_color.entry(*c).or_default().push((*k, parent_local));
                    }
                }
                let mut out: SplitOut = vec![None; inputs.len()];
                for group in by_color.values() {
                    let mut group = group.clone();
                    group.sort_by_key(|&(k, parent_local)| (k, parent_local));
                    let group_members: Vec<usize> =
                        group.iter().map(|&(_, pl)| members[pl]).collect();
                    debug_assert!(
                        group.iter().map(|&(k, _)| k).all(|k| k == group[0].0)
                            || group_members.windows(2).all(|w| w[0] != w[1]),
                        "split produced duplicate members"
                    );
                    let shared = Arc::new(CommShared {
                        ctx: ctx_alloc.fetch_add(1, Ordering::Relaxed),
                        rdv: Arc::new(Rendezvous::for_ranks(
                            group_members.clone(),
                            Arc::clone(&poison),
                        )),
                        members: group_members,
                    });
                    for (new_local, &(_, parent_local)) in group.iter().enumerate() {
                        out[parent_local] = Some((Arc::clone(&shared), new_local));
                    }
                }
                (out, max_clock + net.allgather_cost(p, 16))
            },
        );

        assignment[self.my_local]
            .as_ref()
            .map(|(shared, local)| Communicator {
                ep: self.ep,
                shared: Arc::clone(shared),
                my_local: *local,
            })
    }

    /// Duplicate this communicator (fresh context, same membership) —
    /// `MPI_Comm_dup`. Costs a barrier.
    pub fn dup(&self) -> Communicator<'ep> {
        let poison = self.ep.poison();
        let ctx_alloc = self.ep.ctx_allocator();
        let net = self.ep.net().clone();
        let p = self.size();
        let members = self.shared.members.clone();
        let label = MeetLabel {
            op: "comm_dup",
            alg: "dissemination",
            bytes: 0,
        };
        let shared: Arc<Arc<CommShared>> = self.meet(label, (), move |_inputs: Vec<()>, max_clock| {
            let shared = Arc::new(CommShared {
                ctx: ctx_alloc.fetch_add(1, Ordering::Relaxed),
                rdv: Arc::new(Rendezvous::for_ranks(
                    members.clone(),
                    Arc::clone(&poison),
                )),
                members,
            });
            (shared, max_clock + net.barrier_cost(p))
        });
        Communicator {
            ep: self.ep,
            shared: Arc::clone(&shared),
            my_local: self.my_local,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::{run_cluster, ClusterConfig};

    #[test]
    fn world_has_full_membership() {
        run_cluster(ClusterConfig::ideal(6), |ep| {
            let world = Communicator::world(&ep);
            assert_eq!(world.size(), 6);
            assert_eq!(world.rank(), ep.rank());
            for l in 0..6 {
                assert_eq!(world.global_rank(l), l);
                assert_eq!(world.local_rank_of_global(l), Some(l));
            }
        });
    }

    #[test]
    fn split_by_parity_forms_two_groups() {
        let out = run_cluster(ClusterConfig::ideal(8), |ep| {
            let world = Communicator::world(&ep);
            let sub = world.split(Some((ep.rank() % 2) as i64), 0).unwrap();
            (sub.size(), sub.rank(), sub.global_rank(sub.rank()))
        });
        for (rank, (size, local, global)) in out.iter().enumerate() {
            assert_eq!(*size, 4);
            assert_eq!(*local, rank / 2);
            assert_eq!(*global, rank);
        }
    }

    #[test]
    fn split_orders_by_key_then_rank() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            // Reverse order via key = -rank.
            let sub = world.split(Some(0), -(ep.rank() as i64)).unwrap();
            sub.rank()
        });
        assert_eq!(out, vec![3, 2, 1, 0]);
    }

    #[test]
    fn undefined_color_yields_none() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            let color = if ep.rank() < 2 { Some(7) } else { None };
            world.split(color, 0).map(|c| c.size())
        });
        assert_eq!(out, vec![Some(2), Some(2), None, None]);
    }

    #[test]
    fn subgroup_contexts_are_distinct_from_parent() {
        run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            let sub = world.split(Some((ep.rank() / 2) as i64), 0).unwrap();
            assert_ne!(sub.context_id(), world.context_id());
        });
    }

    #[test]
    fn dup_preserves_membership_with_new_context() {
        run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            let d = world.dup();
            assert_eq!(d.size(), world.size());
            assert_eq!(d.rank(), world.rank());
            assert_ne!(d.context_id(), world.context_id());
        });
    }

    #[test]
    fn split_advances_clock() {
        run_cluster(ClusterConfig::ideal(4), |ep| {
            let world = Communicator::world(&ep);
            let before = ep.now();
            let _ = world.split(Some(0), 0).unwrap();
            assert!(ep.now() > before, "split must charge collective cost");
        });
    }

    #[test]
    fn nested_split_works() {
        let out = run_cluster(ClusterConfig::ideal(8), |ep| {
            let world = Communicator::world(&ep);
            let half = world.split(Some((ep.rank() / 4) as i64), 0).unwrap();
            let quarter = half.split(Some((half.rank() / 2) as i64), 0).unwrap();
            (quarter.size(), quarter.global_rank(0))
        });
        // Groups: {0,1},{2,3},{4,5},{6,7}
        for (rank, (size, first_global)) in out.iter().enumerate() {
            assert_eq!(*size, 2);
            assert_eq!(*first_global, rank / 2 * 2);
        }
    }
}
