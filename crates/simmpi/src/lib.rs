//! # simmpi — an MPI-like message-passing layer over `simnet`
//!
//! This crate provides the communication API surface that MPI-IO
//! implementations (ROMIO's generic ADIO driver, the paper's OPAL library,
//! and our `mpiio`/`parcoll` crates) are written against:
//!
//! * [`Communicator`] — world, `split`, `dup`, local/global rank
//!   translation, node lookup;
//! * point-to-point — `send`/`recv`, non-blocking `isend`/`irecv` with
//!   [`Communicator::waitall`] (completion at the *maximum* arrival time,
//!   as for a real `MPI_Waitall` over independent messages);
//! * collectives — `barrier`, `bcast`, `gather(v)`, `scatter`,
//!   `allgather(v)`, `alltoall(v)`, `allreduce`, `reduce`, `scan`, plus
//!   typed convenience wrappers;
//! * [`Info`] — the string key/value hint dictionary of MPI, through which
//!   applications tune collective I/O (`cb_nodes`, `cb_buffer_size`,
//!   ParColl's group hints).
//!
//! ## Timing semantics
//!
//! Every operation advances the calling rank's virtual clock according to
//! the `simnet` cost model. Collective operations complete at
//! `max(entry clocks) + algorithmic cost`: a rank that arrives early pays
//! the *wait* for stragglers inside the collective, exactly the effect the
//! paper measures as the collective wall (§2.2). Data movement through
//! collectives and p2p alike is real — bytes sent are bytes received — so
//! data-path correctness is testable end to end.

#![warn(missing_docs)]

pub mod codec;
pub mod coll;
pub mod coll_ext;
pub mod comm;
pub mod info;
pub mod p2p;

pub use comm::Communicator;
pub use info::Info;
pub use p2p::RecvRequest;

/// Reduction operators for the typed reduce/allreduce/scan helpers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of elements.
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
    /// Logical OR over integer 0/1 flags.
    LOr,
}

impl ReduceOp {
    /// Apply to a pair of `u64` values.
    pub fn apply_u64(self, a: u64, b: u64) -> u64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::LOr => u64::from(a != 0 || b != 0),
        }
    }

    /// Apply to a pair of `f64` values (`LOr` treats non-zero as true).
    pub fn apply_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
            ReduceOp::LOr => f64::from(a != 0.0 || b != 0.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_op_u64_semantics() {
        assert_eq!(ReduceOp::Sum.apply_u64(3, 4), 7);
        assert_eq!(ReduceOp::Max.apply_u64(3, 4), 4);
        assert_eq!(ReduceOp::Min.apply_u64(3, 4), 3);
        assert_eq!(ReduceOp::LOr.apply_u64(0, 0), 0);
        assert_eq!(ReduceOp::LOr.apply_u64(0, 9), 1);
    }

    #[test]
    fn reduce_op_f64_semantics() {
        assert_eq!(ReduceOp::Sum.apply_f64(1.5, 2.5), 4.0);
        assert_eq!(ReduceOp::Max.apply_f64(1.5, 2.5), 2.5);
        assert_eq!(ReduceOp::Min.apply_f64(1.5, 2.5), 1.5);
        assert_eq!(ReduceOp::LOr.apply_f64(0.0, 0.0), 0.0);
        assert_eq!(ReduceOp::LOr.apply_f64(0.0, 0.1), 1.0);
    }
}
