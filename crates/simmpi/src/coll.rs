//! Collective operations.
//!
//! All collectives rendezvous the whole group: completion time is
//! `max(entry clocks) + algorithmic cost` from [`simnet::NetworkModel`],
//! and every member leaves with its clock set to that completion. The data
//! combination itself happens once, on whichever rank arrives last, which
//! keeps results bit-identical across hosts and runs.
//!
//! The operations mirror the MPI calls the ROMIO two-phase driver uses:
//! `MPI_Allgather` (file ranges), `MPI_Alltoall` (request counts, and
//! again *once per exchange round* — the proximate cause of the collective
//! wall), `MPI_Allreduce` (round count), plus the general set needed by
//! applications.

use crate::comm::{Communicator, MeetLabel};
use crate::ReduceOp;
use simnet::{CollectiveAlg, IoBuffer};

impl Communicator<'_> {
    /// Trace name of the algorithm the cost model charges for alltoall.
    fn alltoall_alg(&self) -> &'static str {
        match self.ep.net().alltoall_alg {
            CollectiveAlg::Bruck => "bruck",
            CollectiveAlg::Pairwise => "pairwise",
            CollectiveAlg::Binomial => "binomial",
            CollectiveAlg::RecursiveDoubling => "recursive_doubling",
        }
    }

    /// Synchronize all members (`MPI_Barrier`).
    pub fn barrier(&self) {
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "barrier",
            alg: "dissemination",
            bytes: 0,
        };
        let _ = self.meet(label, (), move |_: Vec<()>, max| {
            ((), max + net.barrier_cost(p))
        });
    }

    /// Broadcast `root`'s buffer to everyone (`MPI_Bcast`). Non-root ranks
    /// pass `None`.
    pub fn bcast(&self, root: usize, buf: Option<IoBuffer>) -> IoBuffer {
        assert!(root < self.size(), "bcast root {root} out of range");
        debug_assert_eq!(buf.is_some(), self.rank() == root, "only root supplies data");
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "bcast",
            alg: "binomial",
            bytes: buf.as_ref().map_or(0, |b| b.len() as u64),
        };
        let out = self.meet(label, buf, move |inputs: Vec<Option<IoBuffer>>, max| {
            let data = inputs
                .into_iter()
                .flatten()
                .next()
                .expect("bcast root supplied a buffer");
            let cost = net.bcast_cost(p, data.len());
            (data, max + cost)
        });
        (*out).clone()
    }

    /// Typed broadcast for protocol metadata; `bytes` is the serialized
    /// size charged to the cost model.
    pub fn bcast_t<T>(&self, root: usize, val: Option<T>, bytes: usize) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        assert!(root < self.size(), "bcast root {root} out of range");
        debug_assert_eq!(val.is_some(), self.rank() == root, "only root supplies data");
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "bcast",
            alg: "binomial",
            bytes: bytes as u64,
        };
        let out = self.meet(label, val, move |inputs: Vec<Option<T>>, max| {
            let data = inputs
                .into_iter()
                .flatten()
                .next()
                .expect("bcast root supplied a value");
            (data, max + net.bcast_cost(p, bytes))
        });
        (*out).clone()
    }

    /// Gather everyone's buffer at `root` (`MPI_Gather`/`MPI_Gatherv` —
    /// buffers may have different lengths). Non-root ranks receive `None`.
    pub fn gather(&self, root: usize, buf: IoBuffer) -> Option<Vec<IoBuffer>> {
        assert!(root < self.size(), "gather root {root} out of range");
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "gather",
            alg: "binomial",
            bytes: buf.len() as u64,
        };
        let out = self.meet(label, buf, move |inputs: Vec<IoBuffer>, max| {
            let n_each = inputs.iter().map(IoBuffer::len).max().unwrap_or(0);
            let cost = net.gather_cost(p, n_each);
            (inputs, max + cost)
        });
        (self.rank() == root).then(|| (*out).clone())
    }

    /// Scatter `root`'s vector of buffers, one to each member
    /// (`MPI_Scatter`/`MPI_Scatterv`).
    pub fn scatter(&self, root: usize, bufs: Option<Vec<IoBuffer>>) -> IoBuffer {
        assert!(root < self.size(), "scatter root {root} out of range");
        debug_assert_eq!(bufs.is_some(), self.rank() == root);
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "scatter",
            alg: "binomial",
            bytes: bufs
                .as_ref()
                .map_or(0, |v| v.iter().map(IoBuffer::len).sum::<usize>() as u64),
        };
        let out = self.meet(label, bufs, move |inputs: Vec<Option<Vec<IoBuffer>>>, max| {
            let data = inputs
                .into_iter()
                .flatten()
                .next()
                .expect("scatter root supplied buffers");
            assert_eq!(data.len(), p, "scatter needs one buffer per member");
            let n_each = data.iter().map(IoBuffer::len).max().unwrap_or(0);
            let cost = net.scatter_cost(p, n_each);
            (data, max + cost)
        });
        out[self.rank()].clone()
    }

    /// Allgather of byte buffers (`MPI_Allgather`/`MPI_Allgatherv` —
    /// lengths may differ). Returns all members' buffers by local rank.
    pub fn allgather(&self, buf: IoBuffer) -> Vec<IoBuffer> {
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "allgather",
            alg: "recursive_doubling",
            bytes: buf.len() as u64,
        };
        let out = self.meet(label, buf, move |inputs: Vec<IoBuffer>, max| {
            let n_each = inputs.iter().map(IoBuffer::len).max().unwrap_or(0);
            let cost = net.allgather_cost(p, n_each);
            (inputs, max + cost)
        });
        (*out).clone()
    }

    /// Typed allgather for protocol metadata; `bytes_each` is the
    /// serialized per-rank size charged to the cost model.
    pub fn allgather_t<T>(&self, val: T, bytes_each: usize) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let net = self.ep.net().clone();
        let p = self.size();
        let label = MeetLabel {
            op: "allgather",
            alg: "recursive_doubling",
            bytes: bytes_each as u64,
        };
        let out = self.meet(label, val, move |inputs: Vec<T>, max| {
            let cost = net.allgather_cost(p, bytes_each);
            (inputs, max + cost)
        });
        (*out).clone()
    }

    /// Alltoall: `bufs[d]` goes to member `d`; returns what each member
    /// sent to this rank, by source. Charged as a fixed-size alltoall of
    /// the largest pairwise message (`MPI_Alltoall`).
    pub fn alltoall(&self, bufs: Vec<IoBuffer>) -> Vec<IoBuffer> {
        self.alltoall_impl(bufs, false)
    }

    /// Vector alltoall (`MPI_Alltoallv`): identical data movement, but
    /// charged by total per-rank volume, which is how the pairwise
    /// algorithm behaves with irregular counts.
    pub fn alltoallv(&self, bufs: Vec<IoBuffer>) -> Vec<IoBuffer> {
        self.alltoall_impl(bufs, true)
    }

    fn alltoall_impl(&self, bufs: Vec<IoBuffer>, vector: bool) -> Vec<IoBuffer> {
        let p = self.size();
        assert_eq!(bufs.len(), p, "alltoall needs one buffer per member");
        let net = self.ep.net().clone();
        let me = self.rank();
        let label = MeetLabel {
            op: if vector { "alltoallv" } else { "alltoall" },
            alg: self.alltoall_alg(),
            bytes: bufs.iter().map(IoBuffer::len).sum::<usize>() as u64,
        };
        let out = self.meet(label, bufs, move |inputs: Vec<Vec<IoBuffer>>, max| {
            let cost = if vector {
                let max_total: usize = inputs
                    .iter()
                    .map(|row| row.iter().map(IoBuffer::len).sum::<usize>())
                    .max()
                    .unwrap_or(0);
                net.alltoallv_cost(p, max_total)
            } else {
                let max_pair = inputs
                    .iter()
                    .flat_map(|row| row.iter().map(IoBuffer::len))
                    .max()
                    .unwrap_or(0);
                net.alltoall_cost(p, max_pair)
            };
            // Transpose: output[dst][src] = inputs[src][dst].
            let transposed: Vec<Vec<IoBuffer>> = (0..p)
                .map(|dst| inputs.iter().map(|row| row[dst].clone()).collect())
                .collect();
            (transposed, max + cost)
        });
        out[me].clone()
    }

    /// Typed alltoall for protocol metadata (e.g. the per-round transfer
    /// size exchange of two-phase I/O): `row[d]` goes to member `d`;
    /// returns one value per source. `bytes_per_pair` is the serialized
    /// pairwise size charged to the cost model.
    pub fn alltoall_t<T>(&self, row: Vec<T>, bytes_per_pair: usize) -> Vec<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let p = self.size();
        assert_eq!(row.len(), p, "alltoall needs one value per member");
        let net = self.ep.net().clone();
        let me = self.rank();
        let label = MeetLabel {
            op: "alltoall",
            alg: self.alltoall_alg(),
            bytes: (bytes_per_pair * p) as u64,
        };
        let out = self.meet(label, row, move |inputs: Vec<Vec<T>>, max| {
            let cost = net.alltoall_cost(p, bytes_per_pair);
            let transposed: Vec<Vec<T>> = (0..p)
                .map(|dst| inputs.iter().map(|r| r[dst].clone()).collect())
                .collect();
            (transposed, max + cost)
        });
        out[me].clone()
    }

    /// The per-round transfer-size alltoall of two-phase collective I/O.
    /// Semantically an `alltoall_t::<u64>`, but it also detects whether
    /// the announced round moves any cross-rank bytes (off-diagonal
    /// entries) and charges the network model's congestion noise when it
    /// does — the size exchange then competes with the round's bulk data
    /// for links, which is where the collective wall's superlinear cost
    /// comes from.
    pub fn alltoall_sizes(&self, row: Vec<u64>) -> Vec<u64> {
        let p = self.size();
        assert_eq!(row.len(), p, "alltoall needs one value per member");
        let net = self.ep.net().clone();
        let me = self.rank();
        let label = MeetLabel {
            op: "alltoall_sizes",
            alg: self.alltoall_alg(),
            bytes: (row.len() * 8) as u64,
        };
        let out = self.meet(label, row, move |inputs: Vec<Vec<u64>>, max| {
            let cross: u64 = inputs
                .iter()
                .enumerate()
                .map(|(src, r)| {
                    r.iter()
                        .enumerate()
                        .filter(|&(dst, _)| dst != src)
                        .map(|(_, &b)| b)
                        .sum::<u64>()
                })
                .sum();
            let mut cost = net.alltoall_cost(p, 8);
            if cross > 0 {
                cost += net.congestion_noise(p);
            }
            let transposed: Vec<Vec<u64>> = (0..p)
                .map(|dst| inputs.iter().map(|r| r[dst]).collect())
                .collect();
            (transposed, max + cost)
        });
        out[me].clone()
    }

    /// Elementwise allreduce over `u64` vectors (`MPI_Allreduce`).
    /// Reduction is applied in ascending rank order, so results are
    /// deterministic for non-commutative uses too.
    pub fn allreduce_u64(&self, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let net = self.ep.net().clone();
        let p = self.size();
        let bytes = vals.len() * 8;
        let label = MeetLabel {
            op: "allreduce",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<u64>>, max| {
            let reduced = reduce_rows_u64(&inputs, op);
            (reduced, max + net.allreduce_cost(p, bytes))
        });
        (*out).clone()
    }

    /// Elementwise allreduce over `f64` vectors.
    pub fn allreduce_f64(&self, vals: &[f64], op: ReduceOp) -> Vec<f64> {
        let net = self.ep.net().clone();
        let p = self.size();
        let bytes = vals.len() * 8;
        let label = MeetLabel {
            op: "allreduce",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<f64>>, max| {
            let width = inputs[0].len();
            let mut acc = inputs[0].clone();
            for row in &inputs[1..] {
                assert_eq!(row.len(), width, "allreduce width mismatch");
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a = op.apply_f64(*a, b);
                }
            }
            (acc, max + net.allreduce_cost(p, bytes))
        });
        (*out).clone()
    }

    /// Reduce to `root` (`MPI_Reduce`); non-roots receive `None`.
    pub fn reduce_u64(&self, root: usize, vals: &[u64], op: ReduceOp) -> Option<Vec<u64>> {
        assert!(root < self.size(), "reduce root {root} out of range");
        let net = self.ep.net().clone();
        let p = self.size();
        let bytes = vals.len() * 8;
        let label = MeetLabel {
            op: "reduce",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<u64>>, max| {
            let reduced = reduce_rows_u64(&inputs, op);
            (reduced, max + net.reduce_cost(p, bytes))
        });
        (self.rank() == root).then(|| (*out).clone())
    }

    /// Inclusive prefix scan (`MPI_Scan`): rank r receives the reduction
    /// of ranks `0..=r`.
    pub fn scan_u64(&self, vals: &[u64], op: ReduceOp) -> Vec<u64> {
        let net = self.ep.net().clone();
        let p = self.size();
        let bytes = vals.len() * 8;
        let me = self.rank();
        let label = MeetLabel {
            op: "scan",
            alg: "recursive_doubling",
            bytes: bytes as u64,
        };
        let out = self.meet(label, vals.to_vec(), move |inputs: Vec<Vec<u64>>, max| {
            let width = inputs[0].len();
            let mut prefixes = Vec::with_capacity(inputs.len());
            let mut acc = inputs[0].clone();
            prefixes.push(acc.clone());
            for row in &inputs[1..] {
                assert_eq!(row.len(), width, "scan width mismatch");
                for (a, &b) in acc.iter_mut().zip(row) {
                    *a = op.apply_u64(*a, b);
                }
                prefixes.push(acc.clone());
            }
            (prefixes, max + net.scan_cost(p, bytes))
        });
        out[me].clone()
    }
}

fn reduce_rows_u64(inputs: &[Vec<u64>], op: ReduceOp) -> Vec<u64> {
    let width = inputs[0].len();
    let mut acc = inputs[0].clone();
    for row in &inputs[1..] {
        assert_eq!(row.len(), width, "allreduce width mismatch");
        for (a, &b) in acc.iter_mut().zip(row) {
            *a = op.apply_u64(*a, b);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Communicator;
    use simnet::{run_cluster, ClusterConfig, SimTime};

    #[test]
    fn barrier_aligns_clocks() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            // Skew the ranks, then barrier; afterwards all clocks agree.
            ep.compute(SimTime::secs(ep.rank() as f64));
            let comm = Communicator::world(&ep);
            comm.barrier();
            ep.now().as_secs()
        });
        let reference = out[0];
        assert!(out.iter().all(|&t| (t - reference).abs() < 1e-12));
        assert!(reference >= 3.0, "barrier completes no earlier than last entry");
    }

    #[test]
    fn bcast_delivers_root_data() {
        let out = run_cluster(ClusterConfig::ideal(5), |ep| {
            let comm = Communicator::world(&ep);
            let buf = (comm.rank() == 2).then(|| IoBuffer::from_slice(b"payload"));
            let got = comm.bcast(2, buf);
            got.as_slice().unwrap().to_vec()
        });
        assert!(out.iter().all(|v| v == b"payload"));
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            let mine = IoBuffer::from_slice(&[comm.rank() as u8; 2]);
            comm.gather(0, mine)
        });
        let at_root = out[0].as_ref().unwrap();
        for (r, buf) in at_root.iter().enumerate() {
            assert_eq!(buf.as_slice().unwrap(), &[r as u8; 2]);
        }
        assert!(out[1].is_none() && out[2].is_none() && out[3].is_none());
    }

    #[test]
    fn gatherv_with_unequal_lengths() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let mine = IoBuffer::from_vec(vec![7u8; comm.rank() * 3]);
            comm.gather(1, mine)
        });
        let at_root = out[1].as_ref().unwrap();
        assert_eq!(at_root.iter().map(|b| b.len()).collect::<Vec<_>>(), vec![0, 3, 6]);
    }

    #[test]
    fn scatter_distributes_by_rank() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let bufs = (comm.rank() == 0).then(|| {
                (0..3).map(|i| IoBuffer::from_slice(&[i as u8 * 10])).collect()
            });
            comm.scatter(0, bufs).as_slice().unwrap().to_vec()
        });
        assert_eq!(out, vec![vec![0], vec![10], vec![20]]);
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            comm.allgather(IoBuffer::from_slice(&[comm.rank() as u8]))
        });
        for got in &out {
            let vals: Vec<u8> = got.iter().map(|b| b.as_slice().unwrap()[0]).collect();
            assert_eq!(vals, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn allgather_t_shares_typed_values() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            comm.allgather_t((comm.rank(), comm.rank() * 100), 16)
        });
        for got in &out {
            assert_eq!(*got, vec![(0, 0), (1, 100), (2, 200)]);
        }
    }

    #[test]
    fn alltoall_transposes() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let me = comm.rank() as u8;
            let bufs: Vec<IoBuffer> = (0..3)
                .map(|dst| IoBuffer::from_slice(&[me, dst as u8]))
                .collect();
            comm.alltoall(bufs)
        });
        for (dst, got) in out.iter().enumerate() {
            for (src, buf) in got.iter().enumerate() {
                assert_eq!(buf.as_slice().unwrap(), &[src as u8, dst as u8]);
            }
        }
    }

    #[test]
    fn alltoallv_handles_irregular_sizes() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            let me = comm.rank();
            let bufs: Vec<IoBuffer> = (0..3)
                .map(|dst| IoBuffer::from_vec(vec![me as u8; me * 3 + dst]))
                .collect();
            comm.alltoallv(bufs)
        });
        for (dst, got) in out.iter().enumerate() {
            for (src, buf) in got.iter().enumerate() {
                assert_eq!(buf.len(), src * 3 + dst);
                assert!(buf.as_slice().unwrap().iter().all(|&b| b == src as u8));
            }
        }
    }

    #[test]
    fn alltoall_t_transposes_typed_rows() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            let row: Vec<u64> = (0..4).map(|d| (comm.rank() * 10 + d) as u64).collect();
            comm.alltoall_t(row, 8)
        });
        for (dst, got) in out.iter().enumerate() {
            let want: Vec<u64> = (0..4).map(|src| (src * 10 + dst) as u64).collect();
            assert_eq!(got, &want);
        }
    }

    #[test]
    fn alltoall_sizes_transposes_and_charges_congestion() {
        // Cross-rank traffic pays the congestion term; diagonal-only does
        // not.
        let run = |cross: bool| {
            run_cluster(
                {
                    let mut c = ClusterConfig::ideal(8);
                    c.net.noise_quad = simnet::SimTime::micros(100.0);
                    c
                },
                move |ep| {
                    let comm = Communicator::world(&ep);
                    let me = comm.rank();
                    let row: Vec<u64> = (0..8)
                        .map(|d| if cross || d == me { 100 } else { 0 })
                        .collect();
                    let got = comm.alltoall_sizes(row);
                    // Transposition check.
                    for (src, &v) in got.iter().enumerate() {
                        let expect = if cross || src == me { 100 } else { 0 };
                        assert_eq!(v, expect);
                    }
                    ep.now().as_secs()
                },
            )[0]
        };
        let t_self = run(false);
        let t_cross = run(true);
        // quad = 100us * 64 = 6.4ms difference.
        assert!(t_cross > t_self + 5e-3, "self {t_self} cross {t_cross}");
    }

    #[test]
    fn allreduce_sum_and_max() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            let r = comm.rank() as u64;
            let sum = comm.allreduce_u64(&[r, 1], ReduceOp::Sum);
            let max = comm.allreduce_u64(&[r, 1], ReduceOp::Max);
            (sum, max)
        });
        for (sum, max) in &out {
            assert_eq!(*sum, vec![6, 4]);
            assert_eq!(*max, vec![3, 1]);
        }
    }

    #[test]
    fn allreduce_f64_matches() {
        let out = run_cluster(ClusterConfig::ideal(3), |ep| {
            let comm = Communicator::world(&ep);
            comm.allreduce_f64(&[comm.rank() as f64 + 0.5], ReduceOp::Sum)
        });
        for v in &out {
            assert!((v[0] - 4.5).abs() < 1e-12);
        }
    }

    #[test]
    fn reduce_only_root_receives() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            comm.reduce_u64(3, &[comm.rank() as u64], ReduceOp::Max)
        });
        assert_eq!(out[3], Some(vec![3]));
        assert!(out[0].is_none() && out[1].is_none() && out[2].is_none());
    }

    #[test]
    fn scan_produces_inclusive_prefixes() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let comm = Communicator::world(&ep);
            comm.scan_u64(&[comm.rank() as u64 + 1], ReduceOp::Sum)
        });
        assert_eq!(out, vec![vec![1], vec![3], vec![6], vec![10]]);
    }

    #[test]
    fn collectives_on_subcommunicators_are_independent() {
        let out = run_cluster(ClusterConfig::ideal(6), |ep| {
            let world = Communicator::world(&ep);
            let sub = world.split(Some((ep.rank() % 2) as i64), 0).unwrap();
            let sums = sub.allreduce_u64(&[ep.rank() as u64], ReduceOp::Sum);
            sums[0]
        });
        // Even group {0,2,4}: 6. Odd group {1,3,5}: 9.
        assert_eq!(out, vec![6, 9, 6, 9, 6, 9]);
    }

    #[test]
    fn collective_cost_grows_with_group_size() {
        let time_for = |n: usize| {
            let out = run_cluster(ClusterConfig::cray_xt(n, simnet::Mapping::Block), |ep| {
                let comm = Communicator::world(&ep);
                let bufs: Vec<IoBuffer> = (0..comm.size()).map(|_| IoBuffer::synthetic(8)).collect();
                let _ = comm.alltoall(bufs);
                ep.now().as_secs()
            });
            out[0]
        };
        let t8 = time_for(8);
        let t64 = time_for(64);
        assert!(
            t64 > 4.0 * t8,
            "pairwise alltoall cost must grow ~linearly: t8={t8} t64={t64}"
        );
    }
}
