//! The container file: collective create/open/close, dataset registry,
//! attributes.

use crate::dataset::Dataset;
use crate::meta::{AttrValue, DatasetInfo, Metadata, DATA_REGION_START};
use mpiio::PhaseProfile;
use parcoll::ParcollFile;
use simfs::FileSystem;
use simmpi::{Communicator, Info};
use simnet::IoBuffer;

/// An open h5lite container.
///
/// All metadata operations (`create_dataset`, `set_attr`, `close`) are
/// collective, like HDF5's; dataset payload I/O goes through the wrapped
/// [`ParcollFile`], so the same `MPI_Info` hints that tune ParColl for a
/// raw MPI-IO file tune it here.
pub struct H5File<'ep> {
    file: ParcollFile<'ep>,
    meta: Metadata,
    writable: bool,
}

impl<'ep> H5File<'ep> {
    /// Collectively create a new container (truncating any previous one).
    pub fn create(
        comm: &Communicator<'ep>,
        fs: &FileSystem,
        path: &str,
        info: &Info,
    ) -> H5File<'ep> {
        // One rank truncates; everyone opens the fresh entry afterwards
        // (racing unlinks would orphan other ranks' handles).
        if comm.rank() == 0 {
            fs.unlink(path);
        }
        comm.barrier();
        let file = ParcollFile::open(comm, fs, path, info);
        H5File {
            file,
            meta: Metadata::default(),
            writable: true,
        }
    }

    /// Collectively open an existing container read-only. Panics if the
    /// metadata region is not a valid h5lite header.
    pub fn open(
        comm: &Communicator<'ep>,
        fs: &FileSystem,
        path: &str,
        info: &Info,
    ) -> H5File<'ep> {
        let mut file = ParcollFile::open(comm, fs, path, info);
        let blob = file.read_at(0, DATA_REGION_START);
        let meta = Metadata::decode(blob.as_slice().expect("metadata is real data"))
            .expect("not an h5lite file");
        H5File {
            file,
            meta,
            writable: false,
        }
    }

    /// The metadata (datasets and attributes).
    pub fn metadata(&self) -> &Metadata {
        &self.meta
    }

    /// Collectively create a dataset. Every rank passes identical
    /// arguments (HDF5's rule), so the descriptor — including the payload
    /// offset — is computed locally and identically everywhere with no
    /// communication.
    pub fn create_dataset(
        &mut self,
        name: &str,
        dims: &[u64],
        elem_size: u64,
    ) -> Dataset {
        assert!(self.writable, "container opened read-only");
        assert!(
            self.meta.dataset(name).is_none(),
            "dataset {name:?} already exists"
        );
        assert!(!dims.is_empty() && dims.iter().all(|&d| d > 0), "bad dims");
        let info = DatasetInfo {
            name: name.to_string(),
            elem_size,
            dims: dims.to_vec(),
            data_offset: self.meta.next_data_offset(),
        };
        self.meta.datasets.push(info.clone());
        Dataset::new(info)
    }

    /// Open an existing dataset by name.
    pub fn dataset(&self, name: &str) -> Dataset {
        Dataset::new(
            self.meta
                .dataset(name)
                .unwrap_or_else(|| panic!("no dataset {name:?}"))
                .clone(),
        )
    }

    /// Set an attribute on a dataset (`""` = the file root). Collective;
    /// all ranks pass identical values.
    pub fn set_attr(&mut self, dataset: &str, key: &str, value: AttrValue) {
        assert!(self.writable, "container opened read-only");
        self.meta
            .attrs
            .insert((dataset.to_string(), key.to_string()), value);
    }

    /// Read an attribute.
    pub fn attr(&self, dataset: &str, key: &str) -> Option<&AttrValue> {
        self.meta.attrs.get(&(dataset.to_string(), key.to_string()))
    }

    /// The wrapped ParColl file (for hyperslab I/O — see
    /// [`Dataset`]).
    pub fn raw(&mut self) -> &mut ParcollFile<'ep> {
        &mut self.file
    }

    /// Collectively close. On a writable container rank 0 flushes the
    /// metadata region first (HDF5's header flush at `H5Fclose`).
    pub fn close(mut self) -> PhaseProfile {
        if self.writable {
            let comm = self.file.inner().comm().clone();
            // Dataset I/O leaves a subarray view installed; metadata is
            // addressed in raw bytes.
            self.file.set_view(0, &mpiio::Datatype::contiguous_bytes(1));
            if comm.rank() == 0 {
                let blob = self.meta.encode();
                self.file.write_at(0, &IoBuffer::from_slice(&blob));
            }
            comm.barrier();
        }
        self.file.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simfs::FsConfig;
    use simnet::{run_cluster, ClusterConfig, Mapping};

    #[test]
    fn create_write_reopen_read() {
        let fs = FileSystem::new(FsConfig::tiny());
        let fs2 = fs.clone();
        run_cluster(ClusterConfig::cray_xt(4, Mapping::Block), move |ep| {
            let comm = Communicator::world(&ep);
            let rank = comm.rank();
            let info = Info::new().with("parcoll_groups", 2).with("parcoll_min_group", 1);
            {
                let mut h5 = H5File::create(&comm, &fs2, "/chk.h5", &info);
                let ds = h5.create_dataset("dens", &[4, 8], 2); // 4 rows x 8 cols, 2B
                // Each rank writes its row collectively.
                let row: Vec<u8> = (0..16).map(|i| (rank * 16 + i) as u8).collect();
                ds.write_slab_all(h5.raw(), &[rank as u64, 0], &[1, 8], &IoBuffer::from_slice(&row));
                h5.set_attr("dens", "time", AttrValue::Float(0.5));
                h5.set_attr("", "nstep", AttrValue::Int(7));
                h5.close();
            }
            comm.barrier();
            {
                let mut h5 = H5File::open(&comm, &fs2, "/chk.h5", &info);
                assert_eq!(h5.attr("dens", "time"), Some(&AttrValue::Float(0.5)));
                assert_eq!(h5.attr("", "nstep"), Some(&AttrValue::Int(7)));
                let ds = h5.dataset("dens");
                assert_eq!(ds.info().dims, vec![4, 8]);
                // Read back the next rank's row.
                let peer = (rank + 1) % 4;
                let got = ds.read_slab_all(h5.raw(), &[peer as u64, 0], &[1, 8]);
                let expect: Vec<u8> = (0..16).map(|i| (peer * 16 + i) as u8).collect();
                assert_eq!(got.as_slice().unwrap(), expect.as_slice());
                h5.close();
            }
            let _ = ep;
        });
    }

    #[test]
    fn multiple_datasets_do_not_overlap() {
        let fs = FileSystem::new(FsConfig::tiny());
        let fs2 = fs.clone();
        run_cluster(ClusterConfig::cray_xt(2, Mapping::Block), move |ep| {
            let comm = Communicator::world(&ep);
            let mut h5 = H5File::create(&comm, &fs2, "/multi.h5", &Info::new());
            let a = h5.create_dataset("a", &[2, 4], 1);
            let b = h5.create_dataset("b", &[2, 4], 1);
            assert_eq!(b.info().data_offset, a.info().data_offset + 8);
            let fill = |v: u8| IoBuffer::from_slice(&[v; 4]);
            a.write_slab_all(h5.raw(), &[comm.rank() as u64, 0], &[1, 4], &fill(1));
            b.write_slab_all(h5.raw(), &[comm.rank() as u64, 0], &[1, 4], &fill(2));
            comm.barrier();
            let got_a = a.read_slab_all(h5.raw(), &[comm.rank() as u64, 0], &[1, 4]);
            let got_b = b.read_slab_all(h5.raw(), &[comm.rank() as u64, 0], &[1, 4]);
            assert_eq!(got_a.as_slice().unwrap(), &[1; 4]);
            assert_eq!(got_b.as_slice().unwrap(), &[2; 4]);
            let _ = ep;
            h5.close();
        });
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_dataset_rejected() {
        let fs = FileSystem::new(FsConfig::tiny());
        let fs2 = fs.clone();
        run_cluster(ClusterConfig::cray_xt(1, Mapping::Block), move |ep| {
            let comm = Communicator::world(&ep);
            let mut h5 = H5File::create(&comm, &fs2, "/dup.h5", &Info::new());
            let _ = h5.create_dataset("x", &[4], 1);
            let _ = ep;
            let _ = h5.create_dataset("x", &[4], 1);
        });
    }
}
