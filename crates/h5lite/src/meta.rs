//! On-disk metadata: superblock, dataset table, attributes.
//!
//! Everything is little-endian and length-prefixed; the whole metadata
//! region is (de)serialized as one blob so rank 0 can write it with a
//! single independent I/O at close, the way HDF5 flushes its object
//! headers.

use std::collections::BTreeMap;

/// File magic, version 1.
pub const MAGIC: &[u8; 4] = b"H5L1";

/// First byte of the dataset payload region; the metadata region is
/// everything before it.
pub const DATA_REGION_START: u64 = 64 * 1024;

/// One dataset's descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetInfo {
    /// Dataset name (unique within the file).
    pub name: String,
    /// Bytes per element.
    pub elem_size: u64,
    /// Dimensions, slowest-varying first.
    pub dims: Vec<u64>,
    /// Absolute file offset of the payload.
    pub data_offset: u64,
}

impl DatasetInfo {
    /// Total payload bytes.
    pub fn nbytes(&self) -> u64 {
        self.dims.iter().product::<u64>() * self.elem_size
    }
}

/// An attribute value: small typed metadata attached to a dataset (or
/// the file root, keyed by the empty dataset name).
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer attribute.
    Int(i64),
    /// Floating-point attribute.
    Float(f64),
    /// Text attribute.
    Text(String),
}

/// The file's full metadata: dataset table plus attributes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metadata {
    /// Datasets in creation order.
    pub datasets: Vec<DatasetInfo>,
    /// Attributes keyed by `(dataset name, key)`.
    pub attrs: BTreeMap<(String, String), AttrValue>,
}

impl Metadata {
    /// Look up a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&DatasetInfo> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// The next free payload offset.
    pub fn next_data_offset(&self) -> u64 {
        self.datasets
            .last()
            .map(|d| d.data_offset + d.nbytes())
            .unwrap_or(DATA_REGION_START)
    }

    /// Serialize to the metadata blob.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.datasets.len() as u64);
        for d in &self.datasets {
            put_str(&mut out, &d.name);
            put_u64(&mut out, d.elem_size);
            put_u64(&mut out, d.dims.len() as u64);
            for &dim in &d.dims {
                put_u64(&mut out, dim);
            }
            put_u64(&mut out, d.data_offset);
        }
        put_u64(&mut out, self.attrs.len() as u64);
        for ((ds, key), val) in &self.attrs {
            put_str(&mut out, ds);
            put_str(&mut out, key);
            match val {
                AttrValue::Int(v) => {
                    out.push(0);
                    put_u64(&mut out, *v as u64);
                }
                AttrValue::Float(v) => {
                    out.push(1);
                    put_u64(&mut out, v.to_bits());
                }
                AttrValue::Text(s) => {
                    out.push(2);
                    put_str(&mut out, s);
                }
            }
        }
        assert!(
            out.len() as u64 <= DATA_REGION_START,
            "metadata region overflow: {} bytes (max {DATA_REGION_START})",
            out.len()
        );
        out
    }

    /// Parse a metadata blob. Returns `None` on bad magic or truncation.
    pub fn decode(bytes: &[u8]) -> Option<Metadata> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.take(4)? != MAGIC.as_slice() {
            return None;
        }
        let ndatasets = cur.u64()?;
        let mut datasets = Vec::with_capacity(ndatasets as usize);
        for _ in 0..ndatasets {
            let name = cur.string()?;
            let elem_size = cur.u64()?;
            let ndims = cur.u64()?;
            let dims = (0..ndims).map(|_| cur.u64()).collect::<Option<Vec<_>>>()?;
            let data_offset = cur.u64()?;
            datasets.push(DatasetInfo {
                name,
                elem_size,
                dims,
                data_offset,
            });
        }
        let nattrs = cur.u64()?;
        let mut attrs = BTreeMap::new();
        for _ in 0..nattrs {
            let ds = cur.string()?;
            let key = cur.string()?;
            let tag = cur.take(1)?[0];
            let val = match tag {
                0 => AttrValue::Int(cur.u64()? as i64),
                1 => AttrValue::Float(f64::from_bits(cur.u64()?)),
                2 => AttrValue::Text(cur.string()?),
                _ => return None,
            };
            attrs.insert((ds, key), val);
        }
        Some(Metadata { datasets, attrs })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn string(&mut self) -> Option<String> {
        let n = self.u64()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Metadata {
        let mut m = Metadata::default();
        m.datasets.push(DatasetInfo {
            name: "dens".into(),
            elem_size: 8,
            dims: vec![160, 32, 32, 32],
            data_offset: DATA_REGION_START,
        });
        m.datasets.push(DatasetInfo {
            name: "pres".into(),
            elem_size: 8,
            dims: vec![160, 32, 32, 32],
            data_offset: m.next_data_offset(),
        });
        m.attrs
            .insert(("".into(), "nstep".into()), AttrValue::Int(42));
        m.attrs
            .insert(("dens".into(), "time".into()), AttrValue::Float(0.125));
        m.attrs.insert(
            ("pres".into(), "unit".into()),
            AttrValue::Text("dyn/cm^2".into()),
        );
        m
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = sample();
        let blob = m.encode();
        let back = Metadata::decode(&blob).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn offsets_are_sequential() {
        let m = sample();
        let d0 = &m.datasets[0];
        let d1 = &m.datasets[1];
        assert_eq!(d0.data_offset, DATA_REGION_START);
        assert_eq!(d1.data_offset, d0.data_offset + d0.nbytes());
        assert_eq!(d0.nbytes(), 160 * 32 * 32 * 32 * 8);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut blob = sample().encode();
        blob[0] = b'X';
        assert!(Metadata::decode(&blob).is_none());
    }

    #[test]
    fn truncation_rejected() {
        let blob = sample().encode();
        for cut in [3, 11, blob.len() - 1] {
            assert!(Metadata::decode(&blob[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn empty_metadata_round_trips() {
        let m = Metadata::default();
        assert_eq!(Metadata::decode(&m.encode()).unwrap(), m);
        assert_eq!(m.next_data_offset(), DATA_REGION_START);
    }

    #[test]
    fn lookup_by_name() {
        let m = sample();
        assert!(m.dataset("dens").is_some());
        assert!(m.dataset("nope").is_none());
    }
}
