//! Datasets and hyperslab selections.

use crate::meta::DatasetInfo;
use mpiio::Datatype;
use parcoll::ParcollFile;
use simnet::IoBuffer;

/// A hyperslab selection: a rectangular sub-block of an n-dimensional
/// dataset (HDF5's simple hyperslab with unit stride).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hyperslab {
    /// Start coordinate per dimension.
    pub start: Vec<u64>,
    /// Extent per dimension.
    pub count: Vec<u64>,
}

impl Hyperslab {
    /// Elements selected.
    pub fn nelems(&self) -> u64 {
        self.count.iter().product()
    }
}

/// A handle to one dataset of an [`crate::H5File`].
///
/// Slab I/O methods take the container's raw [`ParcollFile`] so multiple
/// dataset handles can coexist; the selection is translated into an
/// MPI-IO subarray view positioned at the dataset's payload, which is
/// exactly how parallel HDF5 drives MPI-IO collective transfers.
#[derive(Debug, Clone)]
pub struct Dataset {
    info: DatasetInfo,
}

impl Dataset {
    pub(crate) fn new(info: DatasetInfo) -> Self {
        Dataset { info }
    }

    /// The descriptor.
    pub fn info(&self) -> &DatasetInfo {
        &self.info
    }

    fn slab_type(&self, start: &[u64], count: &[u64]) -> (Datatype, u64) {
        assert_eq!(start.len(), self.info.dims.len(), "rank mismatch");
        assert_eq!(count.len(), self.info.dims.len(), "rank mismatch");
        for (d, (&s, &c)) in start.iter().zip(count).enumerate() {
            assert!(
                s + c <= self.info.dims[d],
                "slab [{s}, {s}+{c}) exceeds dim {d} of {}",
                self.info.dims[d]
            );
        }
        let ft = Datatype::Subarray {
            sizes: self.info.dims.iter().map(|&d| d as usize).collect(),
            subsizes: count.iter().map(|&c| c as usize).collect(),
            starts: start.iter().map(|&s| s as usize).collect(),
            elem: self.info.elem_size,
        };
        let bytes = count.iter().product::<u64>() * self.info.elem_size;
        (ft, bytes)
    }

    /// Collectively write a hyperslab; `data` holds `count` elements in
    /// row-major order. All ranks of the container's communicator must
    /// participate (ranks with nothing to write pass an empty slab of
    /// zero count in one dimension — or simply matching empty data).
    pub fn write_slab_all(
        &self,
        file: &mut ParcollFile<'_>,
        start: &[u64],
        count: &[u64],
        data: &IoBuffer,
    ) {
        let (ft, bytes) = self.slab_type(start, count);
        assert_eq!(data.len() as u64, bytes, "data/slab size mismatch");
        file.set_view(self.info.data_offset, &ft);
        file.write_at_all(0, data);
    }

    /// Collectively read a hyperslab.
    pub fn read_slab_all(
        &self,
        file: &mut ParcollFile<'_>,
        start: &[u64],
        count: &[u64],
    ) -> IoBuffer {
        let (ft, bytes) = self.slab_type(start, count);
        file.set_view(self.info.data_offset, &ft);
        file.read_at_all(0, bytes)
    }

    /// Independent hyperslab write (no collective coordination).
    pub fn write_slab(
        &self,
        file: &mut ParcollFile<'_>,
        start: &[u64],
        count: &[u64],
        data: &IoBuffer,
    ) {
        let (ft, bytes) = self.slab_type(start, count);
        assert_eq!(data.len() as u64, bytes, "data/slab size mismatch");
        file.set_view(self.info.data_offset, &ft);
        file.write_at(0, data);
    }

    /// Independent hyperslab read.
    pub fn read_slab(
        &self,
        file: &mut ParcollFile<'_>,
        start: &[u64],
        count: &[u64],
    ) -> IoBuffer {
        let (ft, bytes) = self.slab_type(start, count);
        file.set_view(self.info.data_offset, &ft);
        file.read_at(0, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::DATA_REGION_START;

    fn ds(dims: &[u64], elem: u64) -> Dataset {
        Dataset::new(DatasetInfo {
            name: "t".into(),
            elem_size: elem,
            dims: dims.to_vec(),
            data_offset: DATA_REGION_START,
        })
    }

    #[test]
    fn slab_type_is_a_subarray_at_the_payload() {
        let d = ds(&[4, 6], 2);
        let (ft, bytes) = d.slab_type(&[1, 2], &[2, 3]);
        assert_eq!(bytes, 12);
        let flat = ft.flatten();
        assert_eq!(flat.size, 12);
        assert_eq!(flat.extent, 4 * 6 * 2);
    }

    #[test]
    #[should_panic(expected = "exceeds dim")]
    fn out_of_bounds_slab_rejected() {
        ds(&[4, 6], 2).slab_type(&[3, 0], &[2, 6]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn wrong_rank_rejected() {
        ds(&[4, 6], 2).slab_type(&[0], &[1]);
    }

    #[test]
    fn hyperslab_element_count() {
        let h = Hyperslab {
            start: vec![0, 0, 0],
            count: vec![2, 3, 4],
        };
        assert_eq!(h.nelems(), 24);
    }
}
