//! # h5lite — a minimal parallel hierarchical data format over MPI-IO
//!
//! The paper's Flash-IO kernel writes its checkpoints "through the HDF5
//! data format. MPI-IO is used internally in the HDF5 library" (§5.4).
//! This crate plays HDF5's role in the reproduction: a self-describing
//! container of named n-dimensional datasets with attributes, whose bulk
//! data moves through `mpiio`/`parcoll` collective I/O — so ParColl's
//! hints tune a high-level library exactly the way the paper tunes HDF5.
//!
//! ## Format (version 1)
//!
//! ```text
//! [0 .. 64 KiB)   metadata region
//!     superblock: magic "H5L1", dataset count, attribute count
//!     dataset table: (name, elem_size, ndims, dims[], data offset)
//!     attribute table: (dataset name, key, value bytes)
//! [64 KiB ..)     dataset payloads, allocated sequentially
//! ```
//!
//! Metadata lives at fixed offsets and is (re)written by rank 0 at close;
//! dataset payloads are written by everyone through collective I/O.
//! Dataset creation is collective and deterministic, so every rank can
//! compute every offset locally — the property that lets hyperslab writes
//! proceed with no metadata traffic, mirroring HDF5's collective mode.

#![warn(missing_docs)]

pub mod dataset;
pub mod file;
pub mod meta;

pub use dataset::{Dataset, Hyperslab};
pub use file::H5File;
pub use meta::{AttrValue, DatasetInfo, Metadata, DATA_REGION_START, MAGIC};
