//! Property-based tests for the simnet substrate.

use proptest::prelude::*;
use simnet::buffer::{BufferBuilder, IoBuffer};
use simnet::{Mapping, SimTime, SplitMix64, Topology};

proptest! {
    /// Sub-slicing a real buffer always matches slicing the underlying bytes.
    #[test]
    fn real_sub_matches_slice(bytes in proptest::collection::vec(any::<u8>(), 0..256),
                              a in 0usize..256, b in 0usize..256) {
        let buf = IoBuffer::from_slice(&bytes);
        let start = a.min(bytes.len());
        let len = b.min(bytes.len() - start);
        let sub = buf.sub(start, len);
        prop_assert_eq!(sub.as_slice().unwrap(), &bytes[start..start + len]);
    }

    /// Builder concatenation length equals the sum of piece lengths whether
    /// or not synthetic pieces are present.
    #[test]
    fn builder_length_is_sum(pieces in proptest::collection::vec(
        (any::<bool>(), 0usize..64), 0..16)) {
        let mut bb = BufferBuilder::new();
        let mut expect = 0usize;
        let mut any_synth = false;
        for (synth, len) in &pieces {
            expect += len;
            if *synth {
                any_synth = true;
                bb.push(&IoBuffer::synthetic(*len));
            } else {
                bb.push(&IoBuffer::zeroed(*len));
            }
        }
        let out = bb.finish();
        prop_assert_eq!(out.len(), expect);
        prop_assert_eq!(out.is_real(), !any_synth);
    }

    /// copy_in of real into real matches a reference implementation.
    #[test]
    fn copy_in_matches_reference(dst in proptest::collection::vec(any::<u8>(), 1..128),
                                 src in proptest::collection::vec(any::<u8>(), 0..64),
                                 off in 0usize..128) {
        prop_assume!(off + src.len() <= dst.len());
        let mut buf = IoBuffer::from_slice(&dst);
        buf.copy_in(off, &IoBuffer::from_slice(&src));
        let mut expect = dst.clone();
        expect[off..off + src.len()].copy_from_slice(&src);
        prop_assert_eq!(buf.as_slice().unwrap(), expect.as_slice());
    }

    /// Every rank maps to exactly one valid node, and node_of is the
    /// inverse of ranks_on_node, for both mappings and arbitrary shapes.
    #[test]
    fn topology_partition_property(nnodes in 1usize..32, cores in 1usize..8,
                                   fill in 1usize..100, cyclic in any::<bool>()) {
        let cap = nnodes * cores;
        let nranks = 1 + fill % cap;
        let mapping = if cyclic { Mapping::Cyclic } else { Mapping::Block };
        let t = Topology::new(nnodes, cores, nranks, mapping).unwrap();
        let mut count = vec![0usize; nranks];
        for node in 0..nnodes {
            for r in t.ranks_on_node(node) {
                prop_assert_eq!(t.node_of(r), node);
                count[r] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        // No node exceeds its core count under block mapping.
        if mapping == Mapping::Block {
            for node in 0..nnodes {
                prop_assert!(t.ranks_on_node(node).len() <= cores);
            }
        }
    }

    /// SimTime max/min are a lattice: max(a,b) >= both, min(a,b) <= both.
    #[test]
    fn simtime_lattice(a in 0.0f64..1e6, b in 0.0f64..1e6) {
        let (ta, tb) = (SimTime::secs(a), SimTime::secs(b));
        prop_assert!(ta.max(tb) >= ta && ta.max(tb) >= tb);
        prop_assert!(ta.min(tb) <= ta && ta.min(tb) <= tb);
    }

    /// Jitter is always strictly positive for any cv and seed.
    #[test]
    fn jitter_positive(seed in any::<u64>(), cv in 0.0f64..1.0) {
        let mut g = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(g.jitter(cv) > 0.0);
        }
    }
}
