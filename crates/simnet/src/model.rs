//! Analytic cost model for communication and local data movement.
//!
//! The model is LogGP-flavoured: a message of `n` bytes costs the sender a
//! CPU overhead `o`, travels for `L + n·G` (latency plus serialization at
//! the link bandwidth), and costs the receiver another `o`. Collective
//! operations are charged with the textbook cost formulas of the algorithms
//! MPI implementations actually use (binomial trees, recursive doubling,
//! pairwise exchange, Bruck), selectable per operation so the benchmark
//! harness can run algorithmic ablations.
//!
//! Default constants are calibrated to the Cray XT SeaStar interconnect of
//! the paper's era (Brightwell et al., IEEE Micro 2006): ~6 µs end-to-end
//! small-message latency, ~2 GB/s sustained per-link bandwidth. Catamount
//! memory copy bandwidth is set to 2.5 GB/s (single Opteron core).
//!
//! A small *straggler noise* term models OS/network interference that
//! makes every synchronizing operation complete a little later the more
//! participants it has. On real MPPs this term is what turns "a few
//! microseconds of allreduce" into "milliseconds of waiting" at scale;
//! see `DESIGN.md` §6 for calibration notes.

use crate::time::SimTime;

/// Selectable collective algorithm, used for cost accounting (the data
/// combination itself is performed at a rendezvous, see [`crate::Rendezvous`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlg {
    /// Binomial tree (bcast, reduce, gather, scatter).
    Binomial,
    /// Recursive doubling (allgather, allreduce, barrier).
    RecursiveDoubling,
    /// Pairwise exchange: `p-1` rounds of one send + one receive (alltoall
    /// with large messages).
    Pairwise,
    /// Bruck's algorithm: `⌈log₂ p⌉` rounds with data growth (alltoall with
    /// small messages).
    Bruck,
}

/// Network cost parameters (LogGP-style).
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// One-way wire latency `L` (seconds).
    pub latency: SimTime,
    /// Per-message CPU overhead `o` at each end (seconds).
    pub overhead: SimTime,
    /// Per-byte time `G` = 1 / link bandwidth (seconds/byte).
    pub byte_time: f64,
    /// Straggler-noise scale added to each synchronizing collective:
    /// `noise_base · ln(p)` (seconds). Zero disables.
    pub noise_base: SimTime,
    /// Congestion amplification: an additional `noise_quad · p²` per
    /// collective. Pairwise exchange patterns (alltoall) inject O(p²)
    /// messages that contend on shared torus links — especially while the
    /// two-phase protocol's bulk data exchange is in flight — so the
    /// effective cost of whole-group synchronization grows superlinearly
    /// with the group. This term, calibrated against the paper's Figure 1
    /// profile, is the quantitative heart of the *collective wall*; it is
    /// also why splitting the group (ParColl) pays off so steeply:
    /// `(p/G)²·G = p²/G`.
    pub noise_quad: SimTime,
    /// Algorithm used for alltoall cost accounting.
    pub alltoall_alg: CollectiveAlg,
    /// Serialize message injection through each node's single NIC (both
    /// cores of a Cray XT PE share one SeaStar). Off by default — the
    /// calibrated figures fold NIC effects into the link constants — and
    /// enabled by the mapping ablation, where block vs cyclic placement
    /// changes which ranks contend for an injection port.
    pub nic_serialize: bool,
}

impl NetworkModel {
    /// Cray XT SeaStar-like defaults (see module docs).
    pub fn cray_xt_seastar() -> Self {
        NetworkModel {
            latency: SimTime::micros(6.3),
            overhead: SimTime::micros(1.2),
            byte_time: 1.0 / 2.0e9,
            noise_base: SimTime::micros(35.0),
            noise_quad: SimTime::nanos(800.0),
            alltoall_alg: CollectiveAlg::Pairwise,
            nic_serialize: false,
        }
    }

    /// An idealized, noise-free network for unit tests: 1 µs latency,
    /// zero overhead/noise, 1 GB/s.
    pub fn ideal() -> Self {
        NetworkModel {
            latency: SimTime::micros(1.0),
            overhead: SimTime::ZERO,
            byte_time: 1e-9,
            noise_base: SimTime::ZERO,
            noise_quad: SimTime::ZERO,
            alltoall_alg: CollectiveAlg::Pairwise,
            nic_serialize: false,
        }
    }

    /// Time for the payload of `n` bytes to become available at the
    /// receiver after the send is posted: `L + n·G`.
    pub fn transfer_time(&self, n: usize) -> SimTime {
        self.latency + SimTime::secs(n as f64 * self.byte_time)
    }

    /// Sender-side busy time for posting one message.
    pub fn send_overhead(&self, _n: usize) -> SimTime {
        self.overhead
    }

    /// Receiver-side busy time for completing one message.
    pub fn recv_overhead(&self, _n: usize) -> SimTime {
        self.overhead
    }

    fn log2_ceil(p: usize) -> f64 {
        if p <= 1 {
            0.0
        } else {
            (p as f64).log2().ceil()
        }
    }

    /// Per-hop cost in a tree/doubling algorithm moving `n` bytes.
    fn hop(&self, n: f64) -> SimTime {
        self.latency + self.overhead + self.overhead + SimTime::secs(n * self.byte_time)
    }

    /// Baseline interference for a `p`-party synchronizing operation:
    /// `noise_base·ln(p)`.
    pub fn straggler_noise(&self, p: usize) -> SimTime {
        if p <= 1 {
            SimTime::ZERO
        } else {
            self.noise_base * (p as f64).ln()
        }
    }

    /// Congestion amplification, `noise_quad·p²`, paid by whole-group
    /// synchronization that overlaps bulk data exchange (the per-round
    /// size alltoall of two-phase I/O while the round's data is in
    /// flight). Protocol code charges this explicitly when a round moves
    /// cross-rank bytes; rounds whose data is all self-assigned (e.g.
    /// contiguous IOR or Flash-IO patterns) do not congest the network
    /// and pay only the baseline term.
    pub fn congestion_noise(&self, p: usize) -> SimTime {
        if p <= 1 {
            SimTime::ZERO
        } else {
            self.noise_quad * (p as f64) * (p as f64)
        }
    }

    /// Barrier over `p` ranks (recursive doubling / dissemination).
    pub fn barrier_cost(&self, p: usize) -> SimTime {
        self.hop(0.0) * Self::log2_ceil(p) + self.straggler_noise(p)
    }

    /// Broadcast of `n` bytes to `p` ranks (binomial tree).
    pub fn bcast_cost(&self, p: usize, n: usize) -> SimTime {
        self.hop(n as f64) * Self::log2_ceil(p) + self.straggler_noise(p)
    }

    /// Gather of `n_each` bytes from each of `p` ranks to a root
    /// (binomial tree; total data `(p-1)·n_each` crosses the root link).
    pub fn gather_cost(&self, p: usize, n_each: usize) -> SimTime {
        if p <= 1 {
            return SimTime::ZERO;
        }
        self.hop(0.0) * Self::log2_ceil(p)
            + SimTime::secs((p - 1) as f64 * n_each as f64 * self.byte_time)
            + self.straggler_noise(p)
    }

    /// Scatter: symmetric to gather.
    pub fn scatter_cost(&self, p: usize, n_each: usize) -> SimTime {
        self.gather_cost(p, n_each)
    }

    /// Allgather of `n_each` bytes from each rank (recursive doubling:
    /// `log₂ p` latencies, `(p-1)·n_each` bytes through each rank).
    pub fn allgather_cost(&self, p: usize, n_each: usize) -> SimTime {
        if p <= 1 {
            return SimTime::ZERO;
        }
        self.hop(0.0) * Self::log2_ceil(p)
            + SimTime::secs((p - 1) as f64 * n_each as f64 * self.byte_time)
            + self.straggler_noise(p)
    }

    /// Allreduce of `n` bytes (recursive doubling; reduction arithmetic is
    /// folded into the per-hop byte cost — it is bandwidth-bound).
    pub fn allreduce_cost(&self, p: usize, n: usize) -> SimTime {
        self.hop(n as f64) * Self::log2_ceil(p) + self.straggler_noise(p)
    }

    /// Reduce to a root: same structure as allreduce.
    pub fn reduce_cost(&self, p: usize, n: usize) -> SimTime {
        self.allreduce_cost(p, n)
    }

    /// Inclusive scan: recursive doubling, same shape as allreduce.
    pub fn scan_cost(&self, p: usize, n: usize) -> SimTime {
        self.allreduce_cost(p, n)
    }

    /// Alltoall where each rank sends `n_per_pair` bytes to every other
    /// rank. Algorithm selected by [`NetworkModel::alltoall_alg`].
    pub fn alltoall_cost(&self, p: usize, n_per_pair: usize) -> SimTime {
        if p <= 1 {
            return SimTime::ZERO;
        }
        let n = n_per_pair as f64;
        let cost = match self.alltoall_alg {
            CollectiveAlg::Pairwise => self.hop(n) * (p - 1) as f64,
            CollectiveAlg::Bruck => {
                // log₂p rounds, each moving ~p/2 · n bytes per rank.
                self.hop(n * p as f64 / 2.0) * Self::log2_ceil(p)
            }
            // Tree algorithms are not meaningful for alltoall; fall back
            // to pairwise so an accidental selection stays conservative.
            CollectiveAlg::Binomial | CollectiveAlg::RecursiveDoubling => {
                self.hop(n) * (p - 1) as f64
            }
        };
        cost + self.straggler_noise(p)
    }

    /// Alltoallv cost given this rank's total send volume and the maximum
    /// pairwise message size across the operation. Pairwise exchange still
    /// pays `p-1` latencies even when most counts are zero — this is
    /// exactly why replacing collectives by point-to-point does not remove
    /// the wall (paper §1).
    pub fn alltoallv_cost(&self, p: usize, max_total_send: usize) -> SimTime {
        if p <= 1 {
            return SimTime::ZERO;
        }
        self.hop(0.0) * (p - 1) as f64
            + SimTime::secs(max_total_send as f64 * self.byte_time)
            + self.straggler_noise(p)
    }
}

/// Local-machine cost parameters.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Memory copy bandwidth in bytes/second (pack/unpack of non-contiguous
    /// datatypes is charged at this rate).
    pub memcpy_bps: f64,
    /// Fixed per-call CPU cost of entering an MPI-IO operation (argument
    /// checking, flattening bookkeeping).
    pub call_overhead: SimTime,
}

impl MachineModel {
    /// Catamount-era Opteron defaults.
    pub fn catamount() -> Self {
        MachineModel {
            memcpy_bps: 2.5e9,
            call_overhead: SimTime::micros(2.0),
        }
    }

    /// Zero-cost machine for unit tests.
    pub fn ideal() -> Self {
        MachineModel {
            memcpy_bps: f64::INFINITY,
            call_overhead: SimTime::ZERO,
        }
    }

    /// Time to copy `n` bytes within a rank's memory.
    pub fn memcpy_time(&self, n: usize) -> SimTime {
        if self.memcpy_bps.is_infinite() {
            SimTime::ZERO
        } else {
            SimTime::secs(n as f64 / self.memcpy_bps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> NetworkModel {
        NetworkModel {
            latency: SimTime::micros(10.0),
            overhead: SimTime::micros(1.0),
            byte_time: 1e-9, // 1 GB/s
            noise_base: SimTime::ZERO,
            noise_quad: SimTime::ZERO,
            alltoall_alg: CollectiveAlg::Pairwise,
            nic_serialize: false,
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_bandwidth() {
        let m = net();
        let t = m.transfer_time(1_000_000);
        // 10us + 1MB at 1GB/s = 10us + 1ms
        assert!((t.as_micros() - 1010.0).abs() < 1e-6);
    }

    #[test]
    fn single_rank_collectives_are_free() {
        let m = net();
        assert_eq!(m.barrier_cost(1), SimTime::ZERO);
        assert_eq!(m.allgather_cost(1, 100), SimTime::ZERO);
        assert_eq!(m.alltoall_cost(1, 100), SimTime::ZERO);
        assert_eq!(m.gather_cost(1, 100), SimTime::ZERO);
    }

    #[test]
    fn barrier_scales_logarithmically() {
        let m = net();
        let c4 = m.barrier_cost(4).as_secs();
        let c16 = m.barrier_cost(16).as_secs();
        let c256 = m.barrier_cost(256).as_secs();
        assert!((c16 / c4 - 2.0).abs() < 1e-9); // log2 16 / log2 4
        assert!((c256 / c4 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_alltoall_scales_linearly() {
        let m = net();
        let c64 = m.alltoall_cost(64, 4).as_secs();
        let c512 = m.alltoall_cost(512, 4).as_secs();
        assert!((c512 / c64 - 511.0 / 63.0).abs() < 1e-9);
    }

    #[test]
    fn bruck_beats_pairwise_for_small_messages_at_scale() {
        let mut m = net();
        let pw = m.alltoall_cost(512, 4);
        m.alltoall_alg = CollectiveAlg::Bruck;
        let br = m.alltoall_cost(512, 4);
        assert!(br < pw, "bruck {br} should beat pairwise {pw} for 4-byte msgs");
    }

    #[test]
    fn pairwise_beats_bruck_for_large_messages() {
        let mut m = net();
        let pw = m.alltoall_cost(64, 1 << 20);
        m.alltoall_alg = CollectiveAlg::Bruck;
        let br = m.alltoall_cost(64, 1 << 20);
        assert!(pw < br, "pairwise {pw} should beat bruck {br} for 1MB msgs");
    }

    #[test]
    fn allgather_bandwidth_term_counts_total_data() {
        let m = net();
        // 1KB from each of 128 ranks: bandwidth term = 127KB at 1GB/s = 127us.
        let c = m.allgather_cost(128, 1024);
        let latency_term = m.hop(0.0) * 7.0; // log2 128
        let bw = (c - latency_term).as_micros();
        assert!((bw - 127.0 * 1.024).abs() < 1e-6, "bw term {bw}us");
    }

    #[test]
    fn noise_grows_with_party_count() {
        let mut m = net();
        m.noise_base = SimTime::micros(10.0);
        assert_eq!(m.straggler_noise(1), SimTime::ZERO);
        let n64 = m.straggler_noise(64);
        let n512 = m.straggler_noise(512);
        assert!(n512 > n64);
        assert!((n512.as_secs() / n64.as_secs() - 512f64.ln() / 64f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn quadratic_congestion_term_dominates_at_scale() {
        let mut m = net();
        m.noise_quad = SimTime::nanos(800.0);
        let n8 = m.congestion_noise(8).as_secs();
        let n512 = m.congestion_noise(512).as_secs();
        // (512/8)^2 = 4096x growth of the quadratic term.
        assert!((n512 / n8 - 4096.0).abs() < 1.0, "n8={n8} n512={n512}");
        // Splitting 512 into 64 groups of 8 cuts total collective cost
        // by ~p²/G even though every subgroup still synchronizes.
        assert!(64.0 * n8 < 0.1 * n512);
        // The baseline term stays logarithmic.
        assert!(m.straggler_noise(512) < SimTime::micros(100.0));
    }

    #[test]
    fn alltoallv_pays_latencies_even_when_empty() {
        let m = net();
        let c = m.alltoallv_cost(256, 0);
        assert!(c >= m.hop(0.0) * 255.0);
    }

    #[test]
    fn memcpy_time_matches_bandwidth() {
        let mm = MachineModel {
            memcpy_bps: 2e9,
            call_overhead: SimTime::ZERO,
        };
        assert!((mm.memcpy_time(2_000_000).as_millis() - 1.0).abs() < 1e-9);
        assert_eq!(MachineModel::ideal().memcpy_time(1 << 30), SimTime::ZERO);
    }

    #[test]
    fn presets_are_sane() {
        let n = NetworkModel::cray_xt_seastar();
        assert!(n.latency.as_micros() > 1.0 && n.latency.as_micros() < 20.0);
        assert!(1.0 / n.byte_time > 1e9); // at least 1 GB/s
        let m = MachineModel::catamount();
        assert!(m.memcpy_bps > 1e9);
    }
}
