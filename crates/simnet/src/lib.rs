//! # simnet — virtual-time cluster substrate
//!
//! This crate provides the execution substrate on which the ParColl
//! reproduction runs. The paper's platform is Jaguar, a Cray XT with the
//! Catamount lightweight kernel, a SeaStar interconnect and a Lustre file
//! system. None of that hardware is available here, so we substitute a
//! *virtual-time* cluster:
//!
//! * Every MPI rank is a real OS thread that really exchanges bytes, so all
//!   protocol logic (two-phase collective I/O, ParColl partitioning) is
//!   executed faithfully and its data-path correctness is testable.
//! * *Time* is virtual. Each rank owns a [`Clock`] advanced by an analytic
//!   cost model ([`NetworkModel`], plus the Lustre model in the `simfs`
//!   crate). Synchronizing operations (collectives, message receives) make
//!   ranks wait for each other in virtual time exactly the way MPI
//!   operations do in wall time, which is the phenomenon the paper studies
//!   (the "collective wall").
//!
//! The design goal is **determinism**: for a fixed configuration, virtual
//! timestamps are a pure function of the program, independent of host
//! scheduling, as long as message matching is deterministic (no wildcard
//! receives — the MPI-IO protocols in this repository never use them).
//!
//! The crate deliberately knows nothing about MPI or files; it provides
//! four primitives that the higher layers compose:
//!
//! 1. [`Endpoint`] — a rank's handle: clock, compute/copy charging, raw
//!    point-to-point `send`/`recv` with `(context, tag)` matching.
//! 2. [`Rendezvous`] — a deterministic N-party meeting point used to build
//!    collective operations: all parties deposit a value, the last arrival
//!    runs a combiner once, everyone observes the same result and the same
//!    completion clock.
//! 3. [`Topology`] — node layout and block/cyclic rank-to-node mapping
//!    (the Cray XT placement schemes from Figure 5 of the paper).
//! 4. [`run_cluster`] — spawns `n` ranks as threads and joins their
//!    results.

#![warn(missing_docs)]

pub mod buffer;
pub mod cksum;
pub mod clock;
pub mod endpoint;
pub mod error;
pub mod fault;
pub mod fiber;
pub mod mailbox;
pub mod model;
pub mod nic;
pub mod noise;
pub mod progress;
pub mod rendezvous;
pub mod runtime;
pub mod time;
pub mod topology;

pub use buffer::{buffer_pooling, set_buffer_pooling, IoBuffer};
pub use clock::Clock;
pub use endpoint::{Endpoint, RecvInfo};
pub use error::{SimError, SimResult};
pub use cksum::{fnv1a, Fnv1a};
pub use fault::{corrupt_flip, FaultPlan, FaultRule, FaultState, MsgFault};
pub use fiber::{executor, set_executor, set_workers, workers, Executor};
pub use model::{CollectiveAlg, MachineModel, NetworkModel};
pub use noise::SplitMix64;
pub use progress::{admit, current_rank, Admission};
pub use rendezvous::{MeetInfo, Rendezvous};
pub use runtime::{default_stack_size, run_cluster, set_default_stack_size, ClusterConfig};
pub use time::SimTime;
pub use topology::{Mapping, Topology};
