//! Byte buffers that may carry real data or only a size.
//!
//! The paper's experiments move hundreds of gigabytes (IOR writes 512 MB
//! per process from 512 processes; the 1024-process Flash-IO checkpoint is
//! 486 GB). A laptop-scale reproduction cannot materialize those bytes, but
//! the *cost model* only needs byte counts, and the *protocol logic* only
//! needs lengths and offsets. [`IoBuffer`] therefore comes in two flavours:
//!
//! * [`IoBuffer::Real`] — owns actual bytes. Used by correctness tests and
//!   small examples: data written through the full ParColl/two-phase stack
//!   is read back and compared byte-for-byte.
//! * [`IoBuffer::Synthetic`] — carries only a length. Used by the paper's
//!   full-scale benchmark configurations. All slicing/packing arithmetic is
//!   still performed (and bounds-checked), so the protocol executes the
//!   identical control flow either way.
//!
//! Mixing: combining any synthetic content into a builder degrades the
//! result to synthetic. Performance runs are all-synthetic and correctness
//! runs are all-real, so degradation never silently loses test data; it is
//! nevertheless well-defined.
//!
//! # Zero-copy representation
//!
//! Real contents live behind a shared backing store ([`RealBuf`]:
//! `Arc<Vec<u8>>` plus an `(offset, len)` window). [`IoBuffer::sub`] and
//! the single-piece [`BufferBuilder`] path are O(1) reference bumps, so
//! the pack/unpack choreography of two-phase exchange touches each byte
//! once instead of once per slicing step. Mutation goes through
//! [`IoBuffer::as_mut_slice`], which copies the window out first when the
//! backing is shared (copy-on-write) — handles never observe each other's
//! writes, exactly as with the old owned-`Vec` representation.
//!
//! Host-side copies are *performance* of the simulator, not of the
//! simulated machine: the cost model's `charge_memcpy` calls are issued by
//! the protocols independently of what this module really does, so
//! virtual timestamps are bit-identical with or without the fast paths.
//!
//! # Scratch-buffer pooling
//!
//! Freshly-allocated backing stores come from a per-thread pool of
//! recycled `Vec`s ([`set_buffer_pooling`] gates it, default on; sizes
//! outside [64 B, 16 MiB] bypass it). A backing store returns to its
//! thread's pool when the last handle drops. Pooling changes neither
//! contents (buffers are cleared and zero-filled exactly as a fresh
//! allocation would be) nor virtual time; `trace_determinism` asserts the
//! ON/OFF equivalence byte-for-byte.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Gate for the per-thread scratch pool (process-global, default on).
static POOLING: AtomicBool = AtomicBool::new(true);

/// Enable or disable scratch-buffer pooling process-wide. Purely a host
/// performance knob: results and virtual times are identical either way.
pub fn set_buffer_pooling(on: bool) {
    POOLING.store(on, Ordering::SeqCst);
}

/// True if scratch-buffer pooling is enabled.
pub fn buffer_pooling() -> bool {
    POOLING.load(Ordering::SeqCst)
}

/// Most recycled buffers a thread retains.
const POOL_MAX_BUFS: usize = 32;
/// Capacity bounds for pooled backing stores: tiny ones are cheaper to
/// allocate fresh, huge ones would pin memory for the thread's lifetime.
const POOL_MIN_CAP: usize = 64;
const POOL_MAX_CAP: usize = 16 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// An empty `Vec` with at least `min_cap` capacity, recycled when the
/// pool has one that fits.
fn pool_take(min_cap: usize) -> Vec<u8> {
    use simtrace::host;
    let _hp = host::scope(host::Site::PoolTake);
    if buffer_pooling() && (POOL_MIN_CAP..=POOL_MAX_CAP).contains(&min_cap) {
        let recycled = POOL.with_borrow_mut(|pool| {
            pool.iter()
                .position(|v| v.capacity() >= min_cap)
                .map(|i| pool.swap_remove(i))
        });
        if let Some(mut v) = recycled {
            v.clear();
            host::count(host::Counter::PoolReuse, 1);
            return v;
        }
    }
    host::count(host::Counter::PoolMiss, 1);
    Vec::with_capacity(min_cap)
}

/// Offer a no-longer-used backing store to this thread's pool.
fn pool_put(mut v: Vec<u8>) {
    let _hp = simtrace::host::scope(simtrace::host::Site::PoolPut);
    if !buffer_pooling() || !(POOL_MIN_CAP..=POOL_MAX_CAP).contains(&v.capacity()) {
        return;
    }
    v.clear();
    POOL.with_borrow_mut(|pool| {
        if pool.len() < POOL_MAX_BUFS {
            pool.push(v);
        }
    });
}

/// Shared real contents: a window into a reference-counted backing store.
/// Slicing clones the `Arc` and narrows the window; mutation copies the
/// window out first unless this handle is the only one (copy-on-write).
#[derive(Clone)]
pub struct RealBuf {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl RealBuf {
    fn new(v: Vec<u8>) -> Self {
        let len = v.len();
        RealBuf {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Drop for RealBuf {
    fn drop(&mut self) {
        // Last handle to the backing store: recycle it. `get_mut`
        // succeeding is exactly the uniqueness test.
        if let Some(v) = Arc::get_mut(&mut self.data) {
            pool_put(std::mem::take(v));
        }
    }
}

impl std::fmt::Debug for RealBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RealBuf").field(&self.as_slice()).finish()
    }
}

/// A buffer of bytes that may be real (shared backing store) or synthetic
/// (length only). See the module documentation for the rationale.
///
/// # Examples
///
/// ```
/// use simnet::IoBuffer;
///
/// let real = IoBuffer::from_slice(&[1, 2, 3, 4]);
/// assert_eq!(real.sub(1, 2).as_slice().unwrap(), &[2, 3]);
///
/// // A terabyte that costs nothing to hold:
/// let huge = IoBuffer::synthetic(1 << 40);
/// assert_eq!(huge.len(), 1 << 40);
/// assert!(huge.as_slice().is_none());
/// ```
#[derive(Debug, Clone)]
pub enum IoBuffer {
    /// A buffer with actual contents.
    Real(RealBuf),
    /// A buffer that only tracks its length; contents are unmaterialized.
    Synthetic {
        /// The number of bytes this buffer stands for.
        len: usize,
    },
}

/// Equality is by content (and kind), not by backing-store identity: two
/// real buffers are equal iff their bytes are.
impl PartialEq for IoBuffer {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (IoBuffer::Real(a), IoBuffer::Real(b)) => a.as_slice() == b.as_slice(),
            (IoBuffer::Synthetic { len: a }, IoBuffer::Synthetic { len: b }) => a == b,
            _ => false,
        }
    }
}

impl Eq for IoBuffer {}

impl IoBuffer {
    /// An empty real buffer.
    pub fn empty() -> Self {
        IoBuffer::Real(RealBuf::new(Vec::new()))
    }

    /// A real buffer initialized to zero.
    pub fn zeroed(len: usize) -> Self {
        let mut v = pool_take(len);
        v.resize(len, 0);
        IoBuffer::Real(RealBuf::new(v))
    }

    /// A real buffer copying the given bytes.
    pub fn from_slice(bytes: &[u8]) -> Self {
        let mut v = pool_take(bytes.len());
        v.extend_from_slice(bytes);
        IoBuffer::Real(RealBuf::new(v))
    }

    /// A real buffer taking ownership of `bytes` — no copy. Prefer this
    /// over [`from_slice`](Self::from_slice) whenever the `Vec` was built
    /// for the purpose; `from_slice(&v)` on a just-built vector copies the
    /// contents a second time.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        IoBuffer::Real(RealBuf::new(bytes))
    }

    /// A synthetic buffer of the given length.
    pub fn synthetic(len: usize) -> Self {
        IoBuffer::Synthetic { len }
    }

    /// Number of bytes represented.
    pub fn len(&self) -> usize {
        match self {
            IoBuffer::Real(b) => b.len,
            IoBuffer::Synthetic { len } => *len,
        }
    }

    /// True if zero bytes are represented.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this buffer owns real bytes.
    pub fn is_real(&self) -> bool {
        matches!(self, IoBuffer::Real(_))
    }

    /// Borrow the contents if real.
    pub fn as_slice(&self) -> Option<&[u8]> {
        match self {
            IoBuffer::Real(b) => Some(b.as_slice()),
            IoBuffer::Synthetic { .. } => None,
        }
    }

    /// Mutably borrow the contents if real. Copies the window into a
    /// private backing store first when it is shared with other handles
    /// (copy-on-write), so no other buffer observes the writes.
    pub fn as_mut_slice(&mut self) -> Option<&mut [u8]> {
        match self {
            IoBuffer::Real(b) => {
                if Arc::get_mut(&mut b.data).is_none() {
                    let owned = {
                        let s = b.as_slice();
                        let mut v = pool_take(s.len());
                        v.extend_from_slice(s);
                        v
                    };
                    *b = RealBuf::new(owned);
                }
                let (off, len) = (b.off, b.len);
                let v = Arc::get_mut(&mut b.data).expect("unique after copy-on-write");
                Some(&mut v[off..off + len])
            }
            IoBuffer::Synthetic { .. } => None,
        }
    }

    /// Extract a sub-range `[start, start+len)` as a new buffer.
    ///
    /// A synthetic buffer yields a synthetic sub-buffer; a real one
    /// yields a zero-copy window into the same backing store. Panics if
    /// the range exceeds the buffer, mirroring slice semantics: range
    /// errors in the I/O protocols are bugs, not recoverable conditions.
    pub fn sub(&self, start: usize, len: usize) -> IoBuffer {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len()),
            "IoBuffer::sub out of range: [{start}, {start}+{len}) of {}",
            self.len()
        );
        match self {
            IoBuffer::Real(b) => IoBuffer::Real(RealBuf {
                data: Arc::clone(&b.data),
                off: b.off + start,
                len,
            }),
            IoBuffer::Synthetic { .. } => IoBuffer::Synthetic { len },
        }
    }

    /// Overwrite `[dst_off, dst_off+src.len())` of `self` with `src`.
    ///
    /// If either side is synthetic, `self` degrades to synthetic of its
    /// current length (the region's contents are no longer knowable).
    /// Panics on out-of-range writes.
    pub fn copy_in(&mut self, dst_off: usize, src: &IoBuffer) {
        let n = src.len();
        assert!(
            dst_off.checked_add(n).is_some_and(|end| end <= self.len()),
            "IoBuffer::copy_in out of range: [{dst_off}, {dst_off}+{n}) of {}",
            self.len()
        );
        match (src.as_slice(), self.as_mut_slice()) {
            (Some(s), Some(dst)) => dst[dst_off..dst_off + n].copy_from_slice(s),
            _ => {
                let len = self.len();
                *self = IoBuffer::Synthetic { len };
            }
        }
    }

    /// Consume and return the real bytes, or a zero vector of the right
    /// length for a synthetic buffer (used only at sinks that must emit
    /// bytes, e.g. debugging dumps). A uniquely-held full-window real
    /// buffer gives its backing store away without copying.
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            IoBuffer::Real(mut b) => {
                if b.off == 0 && b.len == b.data.len() {
                    // Detach the backing store so Drop doesn't pool it.
                    let data = std::mem::replace(&mut b.data, Arc::new(Vec::new()));
                    drop(b);
                    match Arc::try_unwrap(data) {
                        Ok(v) => v,
                        Err(shared) => shared[..].to_vec(),
                    }
                } else {
                    b.as_slice().to_vec()
                }
            }
            IoBuffer::Synthetic { len } => vec![0u8; len],
        }
    }
}

impl From<Vec<u8>> for IoBuffer {
    fn from(v: Vec<u8>) -> Self {
        IoBuffer::from_vec(v)
    }
}

impl From<&[u8]> for IoBuffer {
    fn from(v: &[u8]) -> Self {
        IoBuffer::from_slice(v)
    }
}

/// Incrementally concatenates buffer pieces, degrading to synthetic if any
/// piece is synthetic. Used by packing/unpacking code in the MPI-IO layer.
///
/// Fast path: when exactly one real piece is pushed,
/// [`BufferBuilder::finish`] hands back a zero-copy window of it — the
/// common "whole transfer lands in one aggregator window" case of
/// two-phase exchange never copies. The copying path draws its backing
/// store from the scratch pool.
#[derive(Debug, Default)]
pub struct BufferBuilder {
    /// Zero-copy candidate: the sole (real) piece pushed so far.
    single: Option<IoBuffer>,
    /// Materialized concatenation, once a second piece arrives.
    real: Option<Vec<u8>>,
    len: usize,
    synthetic: bool,
    cap_hint: usize,
}

impl BufferBuilder {
    /// New empty builder. Until the first push it is "real by default":
    /// finishing immediately yields an empty real buffer.
    pub fn new() -> Self {
        BufferBuilder::default()
    }

    /// New builder with a capacity hint for the real backing store.
    pub fn with_capacity(cap: usize) -> Self {
        BufferBuilder {
            cap_hint: cap,
            ..BufferBuilder::default()
        }
    }

    /// Total bytes appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The materialized concatenation buffer, moving the deferred single
    /// piece into it first.
    fn materialize(&mut self) -> &mut Vec<u8> {
        if self.real.is_none() {
            let mut v = pool_take(self.cap_hint.max(self.len));
            if let Some(first) = self.single.take() {
                v.extend_from_slice(first.as_slice().expect("single piece is real"));
            }
            self.real = Some(v);
        }
        self.real.as_mut().expect("just materialized")
    }

    /// Append a piece.
    pub fn push(&mut self, piece: &IoBuffer) {
        let was_empty = self.len == 0;
        self.len += piece.len();
        if self.synthetic {
            return;
        }
        match piece.as_slice() {
            None => {
                self.synthetic = true;
                self.single = None;
                self.real = None;
            }
            Some(s) => {
                if was_empty && self.real.is_none() {
                    // First piece: defer, it may be the only one.
                    self.single = Some(piece.clone());
                } else {
                    self.materialize().extend_from_slice(s);
                }
            }
        }
    }

    /// Append raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.len += bytes.len();
        if !self.synthetic {
            self.materialize().extend_from_slice(bytes);
        }
    }

    /// Finish, producing a single buffer.
    pub fn finish(self) -> IoBuffer {
        if self.synthetic {
            return IoBuffer::Synthetic { len: self.len };
        }
        if let Some(single) = self.single {
            return single; // zero-copy: the one piece is the result
        }
        match self.real {
            Some(v) => IoBuffer::from_vec(v),
            None => IoBuffer::empty(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_round_trip() {
        let b = IoBuffer::from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert!(b.is_real());
        assert_eq!(b.as_slice().unwrap(), &[1, 2, 3, 4]);
        assert_eq!(b.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_vec_takes_ownership_without_copy() {
        let v = vec![9u8, 8, 7];
        let ptr = v.as_ptr();
        let b = IoBuffer::from_vec(v);
        assert_eq!(b.as_slice().unwrap(), &[9, 8, 7]);
        // Round-trips the same allocation (unique, full-window).
        let back = b.into_bytes();
        assert_eq!(back.as_ptr(), ptr);
    }

    #[test]
    fn synthetic_tracks_length_only() {
        let b = IoBuffer::synthetic(1 << 30);
        assert_eq!(b.len(), 1 << 30);
        assert!(!b.is_real());
        assert!(b.as_slice().is_none());
    }

    #[test]
    fn sub_of_real_is_zero_copy_view() {
        let b = IoBuffer::from_slice(&[10, 11, 12, 13, 14]);
        let s = b.sub(1, 3);
        assert_eq!(s.as_slice().unwrap(), &[11, 12, 13]);
        // Same backing store, narrowed window.
        let (IoBuffer::Real(a), IoBuffer::Real(c)) = (&b, &s) else {
            panic!("both real");
        };
        assert!(Arc::ptr_eq(&a.data, &c.data));
    }

    #[test]
    fn sub_of_sub_composes_offsets() {
        let b = IoBuffer::from_slice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.sub(2, 5).sub(1, 3);
        assert_eq!(s.as_slice().unwrap(), &[3, 4, 5]);
    }

    #[test]
    fn sub_of_synthetic_is_synthetic() {
        let b = IoBuffer::synthetic(100);
        let s = b.sub(50, 25);
        assert_eq!(s, IoBuffer::synthetic(25));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_out_of_range_panics() {
        IoBuffer::synthetic(10).sub(5, 6);
    }

    #[test]
    fn mutation_does_not_leak_into_shared_views() {
        let base = IoBuffer::from_slice(&[1, 2, 3, 4]);
        let mut view = base.sub(1, 2);
        view.as_mut_slice().unwrap()[0] = 99; // copy-on-write
        assert_eq!(view.as_slice().unwrap(), &[99, 3]);
        assert_eq!(base.as_slice().unwrap(), &[1, 2, 3, 4], "base unchanged");
    }

    #[test]
    fn unique_buffer_mutates_in_place() {
        let mut b = IoBuffer::from_slice(&[5, 6, 7]);
        b.as_mut_slice().unwrap()[1] = 0;
        assert_eq!(b.as_slice().unwrap(), &[5, 0, 7]);
    }

    #[test]
    fn copy_in_real_to_real() {
        let mut b = IoBuffer::zeroed(6);
        b.copy_in(2, &IoBuffer::from_slice(&[7, 8]));
        assert_eq!(b.as_slice().unwrap(), &[0, 0, 7, 8, 0, 0]);
    }

    #[test]
    fn copy_in_synthetic_degrades_target() {
        let mut b = IoBuffer::zeroed(6);
        b.copy_in(0, &IoBuffer::synthetic(3));
        assert_eq!(b, IoBuffer::synthetic(6));
    }

    #[test]
    fn copy_in_into_synthetic_stays_synthetic_with_len() {
        let mut b = IoBuffer::synthetic(6);
        b.copy_in(0, &IoBuffer::from_slice(&[1, 2, 3]));
        assert_eq!(b, IoBuffer::synthetic(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_in_out_of_range_panics() {
        let mut b = IoBuffer::zeroed(4);
        b.copy_in(3, &IoBuffer::from_slice(&[1, 2]));
    }

    #[test]
    fn equality_ignores_backing_identity() {
        let a = IoBuffer::from_slice(&[1, 2, 3, 4]).sub(1, 2);
        let b = IoBuffer::from_slice(&[2, 3]);
        assert_eq!(a, b);
        assert_ne!(a, IoBuffer::synthetic(2));
    }

    #[test]
    fn builder_all_real_yields_real_concat() {
        let mut bb = BufferBuilder::new();
        bb.push(&IoBuffer::from_slice(&[1, 2]));
        bb.push_bytes(&[3]);
        bb.push(&IoBuffer::from_slice(&[4, 5]));
        let out = bb.finish();
        assert_eq!(out.as_slice().unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn builder_single_piece_is_zero_copy() {
        let src = IoBuffer::from_slice(&[1, 2, 3, 4]);
        let mut bb = BufferBuilder::with_capacity(4);
        bb.push(&src.sub(1, 3));
        let out = bb.finish();
        assert_eq!(out.as_slice().unwrap(), &[2, 3, 4]);
        let (IoBuffer::Real(a), IoBuffer::Real(b)) = (&src, &out) else {
            panic!("both real");
        };
        assert!(Arc::ptr_eq(&a.data, &b.data), "no copy for one piece");
    }

    #[test]
    fn builder_degrades_on_synthetic_piece() {
        let mut bb = BufferBuilder::new();
        bb.push(&IoBuffer::from_slice(&[1, 2]));
        bb.push(&IoBuffer::synthetic(10));
        bb.push_bytes(&[3]);
        let out = bb.finish();
        assert_eq!(out, IoBuffer::synthetic(13));
    }

    #[test]
    fn builder_empty_real_piece_then_data() {
        // A zero-length first piece must not hijack the fast path.
        let mut bb = BufferBuilder::new();
        bb.push(&IoBuffer::empty());
        bb.push(&IoBuffer::from_slice(&[7, 8]));
        assert_eq!(bb.finish().as_slice().unwrap(), &[7, 8]);
    }

    #[test]
    fn builder_empty_is_empty_real() {
        let out = BufferBuilder::new().finish();
        assert!(out.is_real());
        assert!(out.is_empty());
    }

    #[test]
    fn synthetic_into_bytes_zero_fills() {
        assert_eq!(IoBuffer::synthetic(3).into_bytes(), vec![0, 0, 0]);
    }

    #[test]
    fn into_bytes_of_window_copies_just_the_window() {
        let b = IoBuffer::from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(b.sub(1, 3).into_bytes(), vec![2, 3, 4]);
    }

    #[test]
    fn pooling_toggle_preserves_contents() {
        let was = buffer_pooling();
        for on in [true, false] {
            set_buffer_pooling(on);
            let mut b = IoBuffer::zeroed(256);
            b.copy_in(0, &IoBuffer::from_slice(&[0xAA; 16]));
            drop(b); // with pooling on, backing returns to the pool
            let c = IoBuffer::zeroed(256); // may reuse that backing
            assert!(c.as_slice().unwrap().iter().all(|&x| x == 0), "pool reuse must zero-fill");
        }
        set_buffer_pooling(was);
    }
}
