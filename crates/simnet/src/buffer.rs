//! Byte buffers that may carry real data or only a size.
//!
//! The paper's experiments move hundreds of gigabytes (IOR writes 512 MB
//! per process from 512 processes; the 1024-process Flash-IO checkpoint is
//! 486 GB). A laptop-scale reproduction cannot materialize those bytes, but
//! the *cost model* only needs byte counts, and the *protocol logic* only
//! needs lengths and offsets. [`IoBuffer`] therefore comes in two flavours:
//!
//! * [`IoBuffer::Real`] — owns actual bytes. Used by correctness tests and
//!   small examples: data written through the full ParColl/two-phase stack
//!   is read back and compared byte-for-byte.
//! * [`IoBuffer::Synthetic`] — carries only a length. Used by the paper's
//!   full-scale benchmark configurations. All slicing/packing arithmetic is
//!   still performed (and bounds-checked), so the protocol executes the
//!   identical control flow either way.
//!
//! Mixing: combining any synthetic content into a builder degrades the
//! result to synthetic. Performance runs are all-synthetic and correctness
//! runs are all-real, so degradation never silently loses test data; it is
//! nevertheless well-defined.

/// A buffer of bytes that may be real (`Vec<u8>`) or synthetic (length
/// only). See the module documentation for the rationale.
///
/// # Examples
///
/// ```
/// use simnet::IoBuffer;
///
/// let real = IoBuffer::from_slice(&[1, 2, 3, 4]);
/// assert_eq!(real.sub(1, 2).as_slice().unwrap(), &[2, 3]);
///
/// // A terabyte that costs nothing to hold:
/// let huge = IoBuffer::synthetic(1 << 40);
/// assert_eq!(huge.len(), 1 << 40);
/// assert!(huge.as_slice().is_none());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IoBuffer {
    /// A buffer with actual contents.
    Real(Vec<u8>),
    /// A buffer that only tracks its length; contents are unmaterialized.
    Synthetic {
        /// The number of bytes this buffer stands for.
        len: usize,
    },
}

impl IoBuffer {
    /// An empty real buffer.
    pub fn empty() -> Self {
        IoBuffer::Real(Vec::new())
    }

    /// A real buffer initialized to zero.
    pub fn zeroed(len: usize) -> Self {
        IoBuffer::Real(vec![0u8; len])
    }

    /// A real buffer copying the given bytes.
    pub fn from_slice(bytes: &[u8]) -> Self {
        IoBuffer::Real(bytes.to_vec())
    }

    /// A synthetic buffer of the given length.
    pub fn synthetic(len: usize) -> Self {
        IoBuffer::Synthetic { len }
    }

    /// Number of bytes represented.
    pub fn len(&self) -> usize {
        match self {
            IoBuffer::Real(v) => v.len(),
            IoBuffer::Synthetic { len } => *len,
        }
    }

    /// True if zero bytes are represented.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if this buffer owns real bytes.
    pub fn is_real(&self) -> bool {
        matches!(self, IoBuffer::Real(_))
    }

    /// Borrow the contents if real.
    pub fn as_slice(&self) -> Option<&[u8]> {
        match self {
            IoBuffer::Real(v) => Some(v),
            IoBuffer::Synthetic { .. } => None,
        }
    }

    /// Mutably borrow the contents if real.
    pub fn as_mut_slice(&mut self) -> Option<&mut [u8]> {
        match self {
            IoBuffer::Real(v) => Some(v),
            IoBuffer::Synthetic { .. } => None,
        }
    }

    /// Extract a sub-range `[start, start+len)` as a new buffer.
    ///
    /// A synthetic buffer yields a synthetic sub-buffer. Panics if the
    /// range exceeds the buffer, mirroring slice semantics: range errors
    /// in the I/O protocols are bugs, not recoverable conditions.
    pub fn sub(&self, start: usize, len: usize) -> IoBuffer {
        assert!(
            start.checked_add(len).is_some_and(|end| end <= self.len()),
            "IoBuffer::sub out of range: [{start}, {start}+{len}) of {}",
            self.len()
        );
        match self {
            IoBuffer::Real(v) => IoBuffer::Real(v[start..start + len].to_vec()),
            IoBuffer::Synthetic { .. } => IoBuffer::Synthetic { len },
        }
    }

    /// Overwrite `[dst_off, dst_off+src.len())` of `self` with `src`.
    ///
    /// If either side is synthetic, `self` degrades to synthetic of its
    /// current length (the region's contents are no longer knowable).
    /// Panics on out-of-range writes.
    pub fn copy_in(&mut self, dst_off: usize, src: &IoBuffer) {
        let n = src.len();
        assert!(
            dst_off.checked_add(n).is_some_and(|end| end <= self.len()),
            "IoBuffer::copy_in out of range: [{dst_off}, {dst_off}+{n}) of {}",
            self.len()
        );
        match (self.as_mut_slice(), src.as_slice()) {
            (Some(dst), Some(s)) => dst[dst_off..dst_off + n].copy_from_slice(s),
            _ => {
                let len = self.len();
                *self = IoBuffer::Synthetic { len };
            }
        }
    }

    /// Consume and return the real bytes, or a zero vector of the right
    /// length for a synthetic buffer (used only at sinks that must emit
    /// bytes, e.g. debugging dumps).
    pub fn into_bytes(self) -> Vec<u8> {
        match self {
            IoBuffer::Real(v) => v,
            IoBuffer::Synthetic { len } => vec![0u8; len],
        }
    }
}

impl From<Vec<u8>> for IoBuffer {
    fn from(v: Vec<u8>) -> Self {
        IoBuffer::Real(v)
    }
}

impl From<&[u8]> for IoBuffer {
    fn from(v: &[u8]) -> Self {
        IoBuffer::from_slice(v)
    }
}

/// Incrementally concatenates buffer pieces, degrading to synthetic if any
/// piece is synthetic. Used by packing/unpacking code in the MPI-IO layer.
#[derive(Debug, Default)]
pub struct BufferBuilder {
    real: Option<Vec<u8>>,
    len: usize,
    any: bool,
}

impl BufferBuilder {
    /// New empty builder. Until the first push it is "real by default":
    /// finishing immediately yields an empty real buffer.
    pub fn new() -> Self {
        BufferBuilder {
            real: Some(Vec::new()),
            len: 0,
            any: false,
        }
    }

    /// New builder with a capacity hint for the real backing store.
    pub fn with_capacity(cap: usize) -> Self {
        BufferBuilder {
            real: Some(Vec::with_capacity(cap)),
            len: 0,
            any: false,
        }
    }

    /// Total bytes appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a piece.
    pub fn push(&mut self, piece: &IoBuffer) {
        self.any = true;
        self.len += piece.len();
        match (&mut self.real, piece.as_slice()) {
            (Some(v), Some(s)) => v.extend_from_slice(s),
            _ => self.real = None,
        }
    }

    /// Append raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        self.any = true;
        self.len += bytes.len();
        if let Some(v) = &mut self.real {
            v.extend_from_slice(bytes);
        }
    }

    /// Finish, producing a single buffer.
    pub fn finish(self) -> IoBuffer {
        match self.real {
            Some(v) => IoBuffer::Real(v),
            None => IoBuffer::Synthetic { len: self.len },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_round_trip() {
        let b = IoBuffer::from_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert!(b.is_real());
        assert_eq!(b.as_slice().unwrap(), &[1, 2, 3, 4]);
        assert_eq!(b.into_bytes(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn synthetic_tracks_length_only() {
        let b = IoBuffer::synthetic(1 << 30);
        assert_eq!(b.len(), 1 << 30);
        assert!(!b.is_real());
        assert!(b.as_slice().is_none());
    }

    #[test]
    fn sub_of_real_copies_range() {
        let b = IoBuffer::from_slice(&[10, 11, 12, 13, 14]);
        let s = b.sub(1, 3);
        assert_eq!(s.as_slice().unwrap(), &[11, 12, 13]);
    }

    #[test]
    fn sub_of_synthetic_is_synthetic() {
        let b = IoBuffer::synthetic(100);
        let s = b.sub(50, 25);
        assert_eq!(s, IoBuffer::synthetic(25));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sub_out_of_range_panics() {
        IoBuffer::synthetic(10).sub(5, 6);
    }

    #[test]
    fn copy_in_real_to_real() {
        let mut b = IoBuffer::zeroed(6);
        b.copy_in(2, &IoBuffer::from_slice(&[7, 8]));
        assert_eq!(b.as_slice().unwrap(), &[0, 0, 7, 8, 0, 0]);
    }

    #[test]
    fn copy_in_synthetic_degrades_target() {
        let mut b = IoBuffer::zeroed(6);
        b.copy_in(0, &IoBuffer::synthetic(3));
        assert_eq!(b, IoBuffer::synthetic(6));
    }

    #[test]
    fn copy_in_into_synthetic_stays_synthetic_with_len() {
        let mut b = IoBuffer::synthetic(6);
        b.copy_in(0, &IoBuffer::from_slice(&[1, 2, 3]));
        assert_eq!(b, IoBuffer::synthetic(6));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_in_out_of_range_panics() {
        let mut b = IoBuffer::zeroed(4);
        b.copy_in(3, &IoBuffer::from_slice(&[1, 2]));
    }

    #[test]
    fn builder_all_real_yields_real_concat() {
        let mut bb = BufferBuilder::new();
        bb.push(&IoBuffer::from_slice(&[1, 2]));
        bb.push_bytes(&[3]);
        bb.push(&IoBuffer::from_slice(&[4, 5]));
        let out = bb.finish();
        assert_eq!(out.as_slice().unwrap(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn builder_degrades_on_synthetic_piece() {
        let mut bb = BufferBuilder::new();
        bb.push(&IoBuffer::from_slice(&[1, 2]));
        bb.push(&IoBuffer::synthetic(10));
        bb.push_bytes(&[3]);
        let out = bb.finish();
        assert_eq!(out, IoBuffer::synthetic(13));
    }

    #[test]
    fn builder_empty_is_empty_real() {
        let out = BufferBuilder::new().finish();
        assert!(out.is_real());
        assert!(out.is_empty());
    }

    #[test]
    fn synthetic_into_bytes_zero_fills() {
        assert_eq!(IoBuffer::synthetic(3).into_bytes(), vec![0, 0, 0]);
    }
}
