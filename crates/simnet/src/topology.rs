//! Node topology and rank-to-node mapping.
//!
//! Cray XT launchers place consecutive ranks on nodes either in *block*
//! fashion (fill a node's cores, then the next node) or *cyclic* fashion
//! (round-robin over nodes). ParColl's aggregator-distribution rules are
//! stated in terms of physical nodes (paper §4.2, Figure 5): no node's
//! processes may serve as aggregators for different subgroups. This module
//! provides the mapping both the paper's examples and the benchmarks use.

use crate::error::{SimError, SimResult};

/// Rank-to-node placement scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mapping {
    /// Ranks 0..c fill node 0, ranks c..2c fill node 1, ... (c = cores per
    /// node). Figure 5's "Block" column: N0 (P0, P1), N1 (P2, P3), ...
    Block,
    /// Rank r lives on node r mod nnodes. Figure 5's "Cyclic" column:
    /// N0 (P0, P4), N1 (P1, P5), ...
    Cyclic,
}

/// A cluster's node layout.
#[derive(Debug, Clone)]
pub struct Topology {
    nnodes: usize,
    cores_per_node: usize,
    nranks: usize,
    mapping: Mapping,
}

impl Topology {
    /// Build a topology. `nranks` must fit in `nnodes × cores_per_node`.
    pub fn new(
        nnodes: usize,
        cores_per_node: usize,
        nranks: usize,
        mapping: Mapping,
    ) -> SimResult<Self> {
        if nnodes == 0 || cores_per_node == 0 {
            return Err(SimError::BadConfig(
                "topology needs at least one node and one core".into(),
            ));
        }
        if nranks == 0 {
            return Err(SimError::BadConfig("topology needs at least one rank".into()));
        }
        if nranks > nnodes * cores_per_node {
            return Err(SimError::BadConfig(format!(
                "{nranks} ranks do not fit on {nnodes} nodes x {cores_per_node} cores"
            )));
        }
        Ok(Topology {
            nnodes,
            cores_per_node,
            nranks,
            mapping,
        })
    }

    /// Dual-core Cray XT style topology sized exactly for `nranks` ranks
    /// with the given mapping ("All our tests are conducted using both
    /// cores on the compute PEs", paper §5).
    pub fn dual_core(nranks: usize, mapping: Mapping) -> Self {
        let nnodes = nranks.div_ceil(2).max(1);
        Topology::new(nnodes, 2, nranks.max(1), mapping).expect("dual_core sizing is always valid")
    }

    /// Number of nodes.
    pub fn nnodes(&self) -> usize {
        self.nnodes
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node
    }

    /// Number of ranks placed.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The placement scheme.
    pub fn mapping(&self) -> Mapping {
        self.mapping
    }

    /// The node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        assert!(rank < self.nranks, "rank {rank} out of {}", self.nranks);
        match self.mapping {
            Mapping::Block => rank / self.cores_per_node,
            Mapping::Cyclic => rank % self.nnodes,
        }
    }

    /// All ranks hosted on `node`, ascending.
    pub fn ranks_on_node(&self, node: usize) -> Vec<usize> {
        assert!(node < self.nnodes, "node {node} out of {}", self.nnodes);
        (0..self.nranks).filter(|&r| self.node_of(r) == node).collect()
    }

    /// True if both ranks share a physical node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_block_mapping() {
        // Paper Figure 5: 8 processes, 4 nodes, 2 cores. Block:
        // N0 (P0, P1), N1 (P2, P3), N2 (P4, P5), N3 (P6, P7).
        let t = Topology::new(4, 2, 8, Mapping::Block).unwrap();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 0);
        assert_eq!(t.node_of(2), 1);
        assert_eq!(t.node_of(3), 1);
        assert_eq!(t.node_of(6), 3);
        assert_eq!(t.node_of(7), 3);
        assert_eq!(t.ranks_on_node(2), vec![4, 5]);
    }

    #[test]
    fn figure5_cyclic_mapping() {
        // Cyclic: N0 (P0, P4), N1 (P1, P5), N2 (P2, P6), N3 (P3, P7).
        let t = Topology::new(4, 2, 8, Mapping::Cyclic).unwrap();
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(4), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.node_of(3), 3);
        assert_eq!(t.node_of(7), 3);
        assert_eq!(t.ranks_on_node(0), vec![0, 4]);
    }

    #[test]
    fn same_node_relation() {
        let t = Topology::new(4, 2, 8, Mapping::Block).unwrap();
        assert!(t.same_node(0, 1));
        assert!(!t.same_node(1, 2));
        let t = Topology::new(4, 2, 8, Mapping::Cyclic).unwrap();
        assert!(t.same_node(0, 4));
        assert!(!t.same_node(0, 1));
    }

    #[test]
    fn dual_core_sizes_nodes() {
        let t = Topology::dual_core(8, Mapping::Block);
        assert_eq!(t.nnodes(), 4);
        assert_eq!(t.cores_per_node(), 2);
        let t = Topology::dual_core(7, Mapping::Block);
        assert_eq!(t.nnodes(), 4); // 7 ranks need ceil(7/2)=4 nodes
        assert_eq!(t.nranks(), 7);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Topology::new(0, 2, 1, Mapping::Block).is_err());
        assert!(Topology::new(2, 0, 1, Mapping::Block).is_err());
        assert!(Topology::new(2, 2, 0, Mapping::Block).is_err());
        assert!(Topology::new(2, 2, 5, Mapping::Block).is_err());
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn node_of_rejects_out_of_range() {
        Topology::new(2, 2, 4, Mapping::Block).unwrap().node_of(4);
    }

    #[test]
    fn every_rank_lands_on_exactly_one_node() {
        for mapping in [Mapping::Block, Mapping::Cyclic] {
            let t = Topology::new(5, 3, 13, mapping).unwrap();
            let mut seen = vec![0usize; t.nranks()];
            for node in 0..t.nnodes() {
                for r in t.ranks_on_node(node) {
                    seen[r] += 1;
                    assert_eq!(t.node_of(r), node);
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "{mapping:?}: {seen:?}");
        }
    }

    #[test]
    fn block_never_exceeds_cores_per_node() {
        let t = Topology::new(4, 2, 8, Mapping::Block).unwrap();
        for node in 0..4 {
            assert!(t.ranks_on_node(node).len() <= 2);
        }
    }
}
