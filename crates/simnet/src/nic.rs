//! Per-node network interface: a serial injection port.
//!
//! Both cores of a Cray XT PE share one SeaStar; when two co-located
//! ranks send simultaneously, their messages serialize at the injection
//! port. The effect is placement-dependent: block mapping puts
//! communication partners on the same NIC more often than cyclic mapping
//! does. Disabled by default (see `NetworkModel::nic_serialize`).

use crate::time::SimTime;
use parking_lot::Mutex;

/// One node's injection port.
#[derive(Debug, Default)]
pub struct Nic {
    tx_free: Mutex<SimTime>,
}

impl Nic {
    /// New idle port.
    pub fn new() -> Self {
        Nic::default()
    }

    /// Inject `bytes` starting no earlier than `now`; returns the instant
    /// injection completes (the message is on the wire).
    pub fn inject(&self, now: SimTime, bytes: usize, byte_time: f64) -> SimTime {
        let mut free = self.tx_free.lock();
        let start = free.max(now);
        let done = start + SimTime::secs(bytes as f64 * byte_time);
        *free = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_injections_serialize() {
        let nic = Nic::new();
        let g = 1e-9; // 1 GB/s
        let d1 = nic.inject(SimTime::ZERO, 1_000_000, g);
        let d2 = nic.inject(SimTime::ZERO, 1_000_000, g);
        assert!((d1.as_millis() - 1.0).abs() < 1e-9);
        assert!((d2.as_millis() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let nic = Nic::new();
        let g = 1e-9;
        let d1 = nic.inject(SimTime::ZERO, 1000, g);
        let late = d1 + SimTime::secs(1.0);
        let d2 = nic.inject(late, 1000, g);
        assert!((d2 - late).as_micros() - 1.0 < 1e-9);
    }
}
