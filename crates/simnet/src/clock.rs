//! Per-rank virtual clock.

use crate::time::SimTime;
use std::cell::Cell;

/// A rank's virtual clock.
///
/// Each rank thread owns exactly one `Clock`; it is advanced by the cost
/// model as the rank computes, communicates and performs I/O. The clock is
/// deliberately `!Sync` (interior `Cell`): cross-rank time agreement goes
/// through [`crate::Rendezvous`] or message timestamps, never by peeking at
/// another rank's clock.
#[derive(Debug)]
pub struct Clock {
    now: Cell<SimTime>,
}

impl Clock {
    /// A clock starting at virtual time zero.
    pub fn new() -> Self {
        Clock {
            now: Cell::new(SimTime::ZERO),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now.get()
    }

    /// Advance by a non-negative duration.
    #[inline]
    pub fn advance(&self, dt: SimTime) {
        debug_assert!(dt.is_valid(), "negative or non-finite clock advance: {dt:?}");
        self.now.set(self.now.get() + dt);
    }

    /// Move the clock forward to `t` if `t` is later; no-op otherwise.
    ///
    /// Virtual clocks are monotone: synchronization can only delay a rank.
    #[inline]
    pub fn advance_to(&self, t: SimTime) {
        if t > self.now.get() {
            self.now.set(t);
        }
    }

    /// Reset to zero (used when a rank handle is reused across phases of a
    /// test harness).
    pub fn reset(&self) {
        self.now.set(SimTime::ZERO);
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn advance_accumulates() {
        let c = Clock::new();
        c.advance(SimTime::secs(1.0));
        c.advance(SimTime::millis(500.0));
        assert!((c.now().as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = Clock::new();
        c.advance(SimTime::secs(2.0));
        c.advance_to(SimTime::secs(1.0)); // earlier: ignored
        assert_eq!(c.now(), SimTime::secs(2.0));
        c.advance_to(SimTime::secs(3.0)); // later: jumps
        assert_eq!(c.now(), SimTime::secs(3.0));
    }

    #[test]
    fn reset_returns_to_zero() {
        let c = Clock::new();
        c.advance(SimTime::secs(9.0));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
