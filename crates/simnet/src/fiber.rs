//! Cooperative fiber executor: the ranks of a cluster on one OS thread,
//! or sharded across a small pool of worker threads.
//!
//! # Why
//!
//! The simulator's unit of concurrency is a *rank*, and ranks spend most
//! of their host life blocked on each other: every rendezvous parks
//! `p - 1` ranks, every receive parks one. With one OS thread per rank,
//! each park/wake pair costs a futex syscall plus a kernel context switch
//! — measured at ~6 µs on a single-CPU host, which multiplied by the
//! hundreds of parks in even a quick figure run dwarfs the actual
//! simulation work. None of that parallelism is real: on one CPU the
//! threads strictly take turns anyway.
//!
//! A *fiber* (stackful coroutine) makes the turn-taking explicit. Every
//! rank gets its own heap-allocated stack, and a scheduler round-robins
//! them with a userspace context switch (~tens of nanoseconds: the
//! callee-saved registers and the stack pointer). A rank that would park
//! instead yields (`yield_now`); the peers it is waiting for run
//! immediately after, on the same thread.
//!
//! # Sharding
//!
//! ParColl subgroups are communication-independent by construction, so
//! their fibers can run on *different* worker threads with real
//! parallelism on a multi-core host. `run_fibers_sharded` partitions
//! the fiber set by a placement map (one worker per ParColl subgroup
//! block, by default contiguous rank blocks) and runs one scheduler
//! loop per worker. Cross-worker interactions — cluster-wide
//! rendezvous, mailbox traffic between subgroups, shared-OST admission
//! — go through the same mutex-protected wait sites as ever; a fiber
//! polling a condition another worker will satisfy simply yields until
//! the producing worker's store is visible under the lock.
//!
//! # What stays identical
//!
//! Virtual time. The simulation's timestamps are already a pure function
//! of configuration — deterministic under *any* host interleaving (the
//! regress gate enforces it; the one-thread-per-rank executor is the
//! existence proof) — and each scheduler merely picks one particular
//! interleaving. The deterministic merge points are the existing
//! primitives: rendezvous completion is `max` over entry clocks
//! (commutative, order-blind), and every shared-resource admission is
//! ordered by the virtual-time key `(arrival, rank, seq)` in the
//! progress registry, not by host arrival order. The blocking
//! primitives keep their mutex protocols; the only difference is *how*
//! a blocked rank waits (yield vs. condvar), selected per call site by
//! the private `in_fiber` probe.
//!
//! Code that drives the primitives from plain OS threads (unit tests
//! spawning `std::thread`) is untouched: without a fiber context the
//! wait sites fall back to their condition variables.
//!
//! # Executor selection
//!
//! [`run_cluster`](crate::run_cluster) consults [`executor`]: `Fibers`
//! (the default on x86_64 and aarch64) or `Threads` (other
//! architectures, nested clusters, or an explicit
//! `SIMNET_EXECUTOR=threads` / [`set_executor`] override — useful for
//! A/B-ing the two modes, which must produce bitwise-identical virtual
//! times). Orthogonally, [`workers`] (env `SIMNET_WORKERS`, default 1,
//! or [`set_workers`]) picks how many OS threads the fiber executor
//! shards ranks across.
//!
//! # Stall detection across workers
//!
//! A deadlock is "every fiber yielding, nothing moving". With one
//! worker that is one local judgment; with many it must be global — a
//! worker whose own fibers are all parked is *not* stalled while a
//! fiber on another worker is mid-slice and about to deliver. Each
//! worker therefore publishes an idle claim only after `STALL_CYCLES`
//! consecutive unproductive cycles, stamped with the `EVENTS` value
//! it observed; the stall callback fires only when every worker has
//! published a claim (or finished) and the global event counter still
//! equals every stamp — i.e. nothing has moved anywhere for as long as
//! the most recently idle worker has been spinning.
//!
//! # Safety notes
//!
//! The context switch is a few instructions of inline assembly per
//! architecture: push the callee-saved registers, swap the stack
//! pointer, pop, return. Panics never cross the assembly boundary —
//! each fiber body runs under `catch_unwind` and the payload is carried
//! back to the scheduler by value, mirroring `JoinHandle::join`. Fiber
//! stacks have no OS guard page; a canary word at the stack base turns
//! silent overflow corruption into a loud panic at fiber completion.
//! Fibers never migrate between workers, so each fiber's stack and
//! progress context are only ever touched by the worker that owns it.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// Which substrate [`crate::run_cluster`] runs ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Cooperative fibers on the calling thread, optionally sharded
    /// across [`workers`] worker threads (default on x86_64/aarch64).
    Fibers,
    /// One OS thread per rank (fallback; always available).
    Threads,
}

/// 0 = unresolved, 1 = fibers, 2 = threads.
static EXECUTOR: AtomicU8 = AtomicU8::new(0);

/// True when fiber switching is implemented for this architecture.
const ARCH_SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

/// Select the executor for subsequent [`crate::run_cluster`] calls.
/// Requesting `Fibers` on an unsupported architecture silently keeps
/// `Threads`.
pub fn set_executor(e: Executor) {
    let v = match e {
        Executor::Fibers if ARCH_SUPPORTED => 1,
        _ => 2,
    };
    EXECUTOR.store(v, Ordering::Relaxed);
}

/// The currently selected executor. First use resolves the default:
/// `SIMNET_EXECUTOR=threads|fibers` if set, else fibers where supported.
pub fn executor() -> Executor {
    match EXECUTOR.load(Ordering::Relaxed) {
        1 => Executor::Fibers,
        2 => Executor::Threads,
        _ => {
            let e = match std::env::var("SIMNET_EXECUTOR").as_deref() {
                Ok("threads") => Executor::Threads,
                Ok("fibers") => Executor::Fibers,
                _ => Executor::Fibers,
            };
            set_executor(e);
            executor()
        }
    }
}

/// 0 = unresolved; otherwise the worker-thread count for the fiber
/// executor.
static WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-default worker count for subsequent
/// [`crate::run_cluster`] calls (clamped to ≥ 1). Virtual time is
/// bitwise identical for every value; workers only change which OS
/// threads host which fibers.
pub fn set_workers(n: usize) {
    WORKERS.store(n.max(1), Ordering::Relaxed);
}

/// The process-default fiber-executor worker count. First use resolves
/// `SIMNET_WORKERS=<n>` if set, else 1 (the classic single-threaded
/// scheduler).
pub fn workers() -> usize {
    match WORKERS.load(Ordering::Relaxed) {
        0 => {
            let n = std::env::var("SIMNET_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(1);
            set_workers(n);
            n
        }
        n => n,
    }
}

/// Global event counter for stall detection: bumped by every operation
/// that can unblock a waiter (packet delivery, rendezvous arrival,
/// progress-registry transition). A full scheduler cycle in which every
/// fiber yields and this counter stays put means nobody on that worker
/// could make progress; all workers observing that simultaneously means
/// a genuine deadlock rather than ordinary waiting.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Record an unblocking-relevant event (cheap relaxed increment).
pub(crate) fn note_event() {
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Context switch
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod arch {
    // simnet_fiber_switch(save: *mut usize, restore: *const usize)
    //
    // System V AMD64: saves the suspending context's callee-saved
    // registers on its own stack and stores its rsp through `save`
    // (rdi); loads rsp from `restore` (rsi) and pops the resuming
    // context's registers. The caller-saved half of the register file is
    // handled by the compiler because this is an ordinary `extern "C"`
    // call. `ret` then resumes the target — either past its own
    // `simnet_fiber_switch` call or, for a fresh fiber, into the entry
    // trampoline address planted by `init_frame`.
    std::arch::global_asm!(
        ".globl simnet_fiber_switch",
        ".hidden simnet_fiber_switch",
        "simnet_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    );

    unsafe extern "C" {
        pub(super) fn simnet_fiber_switch(save: *mut usize, restore: *const usize);
    }

    /// Switch away from the current context: store its rsp in `save`,
    /// resume the context whose rsp is in `restore`.
    ///
    /// # Safety
    /// `restore` must hold an rsp produced by this function (or by
    /// `init_frame`), on a stack that is still alive.
    pub(super) unsafe fn switch(save: *mut usize, restore: *const usize) {
        unsafe { simnet_fiber_switch(save, restore) }
    }

    /// Lay out a fresh fiber's initial frame below the 16-aligned stack
    /// `top` so that restoring from the returned rsp pops six zeroed
    /// callee-saved registers and `ret`s into `entry` with the stack
    /// alignment of a freshly `call`ed function.
    ///
    /// # Safety
    /// `top` must be the 16-aligned top of a live allocation with at
    /// least 64 bytes below it.
    pub(super) unsafe fn init_frame(top: usize, entry: usize) -> usize {
        unsafe {
            let ret_slot = top - 16; // 16-aligned => rsp ≡ 8 (mod 16) at entry
            (ret_slot as *mut usize).write(entry);
            let rsp = ret_slot - 6 * 8;
            std::ptr::write_bytes(rsp as *mut u8, 0, 6 * 8);
            rsp
        }
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    // simnet_fiber_switch(save: *mut usize, restore: *const usize)
    //
    // AAPCS64: the callee-saved state is x19–x28, the frame pointer
    // (x29), the link register (x30) and the low halves of v8–v15
    // (d8–d15) — 160 bytes, kept 16-aligned as the ABI requires of sp
    // at all times. The suspending context stores them on its own stack
    // and its sp through `save` (x0); the resuming context's sp is
    // loaded from `restore` (x1) and its registers popped. `ret`
    // branches to the restored x30 — either past the resuming context's
    // own call, or into the entry trampoline planted by `init_frame`
    // for a fresh fiber.
    std::arch::global_asm!(
        ".globl simnet_fiber_switch",
        ".hidden simnet_fiber_switch",
        "simnet_fiber_switch:",
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "ldr x9, [x1]",
        "mov sp, x9",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "ret",
    );

    unsafe extern "C" {
        pub(super) fn simnet_fiber_switch(save: *mut usize, restore: *const usize);
    }

    /// See the x86_64 twin.
    ///
    /// # Safety
    /// `restore` must hold an sp produced by this function (or by
    /// `init_frame`), on a stack that is still alive.
    pub(super) unsafe fn switch(save: *mut usize, restore: *const usize) {
        unsafe { simnet_fiber_switch(save, restore) }
    }

    /// Lay out a fresh fiber's initial frame: a full 160-byte save area
    /// of zeroed registers with `entry` in the x30 slot, so the restore
    /// path of `simnet_fiber_switch` `ret`s into the trampoline with
    /// sp == `top` (16-aligned, as AAPCS64 demands).
    ///
    /// # Safety
    /// `top` must be the 16-aligned top of a live allocation with at
    /// least 160 bytes below it.
    pub(super) unsafe fn init_frame(top: usize, entry: usize) -> usize {
        unsafe {
            let sp = top - 160;
            std::ptr::write_bytes(sp as *mut u8, 0, 160);
            ((sp + 88) as *mut usize).write(entry); // x30 slot of the frame
            sp
        }
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    /// Unsupported architecture: `executor()` never selects fibers, so
    /// this is unreachable.
    pub(super) unsafe fn switch(_save: *mut usize, _restore: *const usize) {
        unreachable!("fiber executor is not supported on this architecture")
    }

    /// Unreachable twin of the supported architectures' `init_frame`.
    pub(super) unsafe fn init_frame(_top: usize, _entry: usize) -> usize {
        unreachable!("fiber executor is not supported on this architecture")
    }
}

// ---------------------------------------------------------------------
// Fiber stacks
// ---------------------------------------------------------------------

/// Magic planted at the low end of every fiber stack; checked when the
/// fiber completes to catch silent overflows (heap stacks have no guard
/// page).
const STACK_CANARY: u64 = 0x5A5A_F1BE_5A5A_F1BE;

struct StackMem {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(size: usize) -> Self {
        // 16-byte alignment satisfies both ABIs; size floor keeps the
        // canary + initial frame sane.
        let size = size.max(16 * 1024) & !15;
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("valid stack layout");
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "fiber stack allocation failed");
        unsafe { (base as *mut u64).write(STACK_CANARY) };
        StackMem { base, layout }
    }

    /// Plant the architecture-specific initial frame; restoring from the
    /// returned stack pointer resumes into `entry`.
    fn prepare(&self, entry: extern "C" fn() -> !) -> usize {
        let top = (self.base as usize + self.layout.size()) & !15;
        unsafe { arch::init_frame(top, entry as usize) }
    }

    fn canary_intact(&self) -> bool {
        unsafe { (self.base as *const u64).read() == STACK_CANARY }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.base, self.layout) };
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

/// Why a fiber switched back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Blocked in a wait site; re-run it later.
    Yielded,
    /// The body returned (or unwound); never resume.
    Done,
}

/// Per-fiber runtime shared between the scheduler and the fiber itself
/// (via the thread-local [`CURRENT`] pointer). Boxed so its address is
/// stable across scheduler Vec reallocation.
struct FiberRt {
    /// Fiber's stack pointer while suspended.
    fiber_rsp: usize,
    /// Scheduler's stack pointer while the fiber runs.
    sched_rsp: usize,
    action: Action,
    /// The body; taken by the entry trampoline on first resume.
    entry: Option<Box<dyn FnOnce()>>,
    /// Panic payload captured by the trampoline's `catch_unwind`.
    panic: Option<Box<dyn Any + Send>>,
    /// The rank's progress context, parked here while the fiber is
    /// suspended (thread-locals are per OS thread, not per fiber, so the
    /// scheduler swaps it in and out around every switch).
    saved_ctx: Option<crate::progress::Ctx>,
}

thread_local! {
    /// The fiber currently running on this thread, if any.
    static CURRENT: Cell<*mut FiberRt> = const { Cell::new(std::ptr::null_mut()) };
}

/// True when the calling code runs inside a fiber — wait sites use this
/// to pick cooperative yielding over condvar parking.
pub(crate) fn in_fiber() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Yield the current fiber back to the scheduler; it will be re-run
/// after the other runnable fibers. Must only be called [`in_fiber`].
pub(crate) fn yield_now() {
    let rt = CURRENT.with(Cell::get);
    assert!(!rt.is_null(), "yield_now outside a fiber");
    unsafe {
        (*rt).action = Action::Yielded;
        arch::switch(&raw mut (*rt).fiber_rsp, &raw const (*rt).sched_rsp);
    }
}

/// First frame of every fiber: runs the body under `catch_unwind`, then
/// switches back to the scheduler for good.
extern "C" fn fiber_main() -> ! {
    let rt = CURRENT.with(Cell::get);
    debug_assert!(!rt.is_null(), "fiber_main outside a fiber");
    unsafe {
        let body = (*rt).entry.take().expect("fiber body present on first resume");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            (*rt).panic = Some(payload);
        }
        (*rt).action = Action::Done;
        let mut discard = 0usize;
        arch::switch(&raw mut discard, &raw const (*rt).sched_rsp);
    }
    unreachable!("completed fiber resumed")
}

/// Consecutive fully-unproductive scheduler cycles a worker tolerates
/// before publishing an idle claim (generous: ordinary waiting always
/// produces events every cycle).
const STALL_CYCLES: u64 = 1000;
/// Additional unproductive cycles after the stall callback before the
/// scheduler aborts hard (the callback is expected to poison the cluster,
/// which makes every waiting fiber panic and drain within one cycle).
const ABORT_CYCLES: u64 = 100_000;

/// Idle-slot sentinel: the worker has not published an idle claim.
const NOT_IDLE: u64 = u64::MAX;
/// Idle-slot sentinel: the worker drained its run queue and exited; it
/// counts as permanently idle for the all-idle stall condition (a
/// deadlock among the remaining workers must still be diagnosed).
const FINISHED: u64 = u64::MAX - 1;

/// Stall-detection state shared by the workers of one fiber run. With
/// one worker this reduces exactly to the classic single-threaded
/// detector: the all-idle condition is the worker's own idle claim and
/// the event stamp is trivially current.
struct StallCoord<'a, F: Fn() -> bool> {
    /// Per-worker idle slots: [`NOT_IDLE`], [`FINISHED`], or the
    /// `EVENTS` value the worker observed across its last
    /// `STALL_CYCLES` unproductive cycles.
    slots: Vec<AtomicU64>,
    /// Bumped when a stall diagnosis is deferred (fault timer in
    /// flight); every worker re-arms its detector on observing a bump.
    defer_epoch: AtomicU64,
    /// Set once the stall callback acknowledged a genuine deadlock.
    stalled: AtomicBool,
    /// Serializes stall firing so `on_stall` runs at most once per
    /// diagnosis.
    fire: parking_lot::Mutex<()>,
    on_stall: &'a F,
}

impl<'a, F: Fn() -> bool> StallCoord<'a, F> {
    fn new(workers: usize, on_stall: &'a F) -> Self {
        StallCoord {
            slots: (0..workers).map(|_| AtomicU64::new(NOT_IDLE)).collect(),
            defer_epoch: AtomicU64::new(0),
            stalled: AtomicBool::new(false),
            fire: parking_lot::Mutex::new(()),
            on_stall,
        }
    }

    /// True when every worker has published an idle claim (or finished)
    /// and the global event counter still equals every claim's stamp —
    /// nothing has moved anywhere since the most recent claim.
    fn all_idle(&self) -> bool {
        let events_now = EVENTS.load(Ordering::SeqCst);
        self.slots.iter().all(|s| {
            let v = s.load(Ordering::Acquire);
            v == FINISHED || v == events_now
        })
    }

    /// Called by a worker whose own detector tripped. Fires `on_stall`
    /// at most once per diagnosis, and only if the stall is global.
    fn maybe_fire(&self) {
        if self.stalled.load(Ordering::Relaxed) || !self.all_idle() {
            return;
        }
        let _g = self.fire.lock();
        if self.stalled.load(Ordering::Relaxed) {
            return;
        }
        // Re-check under the lock after a scheduling gap: event counters
        // are bumped just *after* the producing mutation's lock is
        // released, so there is a nanoseconds-wide window in which a
        // worker can have made progress the counter does not show yet.
        std::thread::yield_now();
        if !self.all_idle() {
            return;
        }
        if (self.on_stall)() {
            self.stalled.store(true, Ordering::Release);
        } else {
            // Deferred (e.g. a fault-injection timer is outstanding):
            // every worker — including the one firing — re-arms its
            // detector from scratch on observing the epoch bump.
            self.defer_epoch.fetch_add(1, Ordering::AcqRel);
        }
    }
}

/// Park politely between unproductive cycles of a multi-worker run: an
/// idle worker's fibers are waiting on another worker, and burning the
/// core spinning steals it from the worker that could unblock them
/// (fatal on a single-CPU host). The sleep stays small enough that
/// stall detection still fires within tens of milliseconds.
#[inline]
fn idle_backoff(unproductive: u64) {
    if unproductive > 256 {
        std::thread::sleep(std::time::Duration::from_micros(50));
    } else if unproductive > 2 {
        std::thread::yield_now();
    }
}

/// One worker's scheduler loop: round-robin the fibers in `fibers`
/// (pairs of global task index and fiber state) to completion, feeding
/// the shared stall coordinator. Returns each fiber's panic payload
/// keyed by its global index.
fn worker_loop<F: Fn() -> bool>(
    me: usize,
    mut fibers: Vec<(usize, StackMem, Box<FiberRt>)>,
    stack_size: usize,
    coord: &StallCoord<'_, F>,
) -> Vec<(usize, Option<Box<dyn Any + Send>>)> {
    let multi = coord.slots.len() > 1;
    let mut runq: std::collections::VecDeque<usize> = (0..fibers.len()).collect();
    let mut out: Vec<(usize, Option<Box<dyn Any + Send>>)> =
        fibers.iter().map(|(g, _, _)| (*g, None)).collect();
    let mut unproductive = 0u64;
    let mut idle_claimed = false;
    let mut seen_epoch = coord.defer_epoch.load(Ordering::Acquire);
    // hostprof: the whole scheduler loop is one frame per worker; fiber
    // slices nest inside it, so this frame's self time is pure
    // scheduling overhead (run-queue churn, context-switch cost, stall
    // detection, cross-worker idle backoff).
    let _sched_scope = simtrace::host::scope(simtrace::host::Site::FiberSched);
    while !runq.is_empty() {
        // A deferred stall diagnosis re-arms detection everywhere.
        let epoch = coord.defer_epoch.load(Ordering::Acquire);
        if epoch != seen_epoch {
            seen_epoch = epoch;
            unproductive = 0;
            if idle_claimed {
                coord.slots[me].store(NOT_IDLE, Ordering::Release);
                idle_claimed = false;
            }
        }
        let events_before = EVENTS.load(Ordering::Relaxed);
        let mut any_done = false;
        // One cycle: resume every currently-runnable fiber once.
        for _ in 0..runq.len() {
            let idx = runq.pop_front().expect("runq non-empty within cycle");
            let (_, stack, rt) = &mut fibers[idx];
            let rtp: *mut FiberRt = &mut **rt;
            // hostprof: time one slice (resume -> suspend). The guard is
            // created and dropped on the scheduler side of the switch, so
            // it never spans a yield; probes inside the fiber body nest
            // under this frame because fibers share the worker's
            // thread-local profiler stack.
            let run_scope = simtrace::host::scope(simtrace::host::Site::FiberRun);
            unsafe {
                crate::progress::tl_set((*rtp).saved_ctx.take());
                CURRENT.with(|c| c.set(rtp));
                arch::switch(&raw mut (*rtp).sched_rsp, &raw const (*rtp).fiber_rsp);
                CURRENT.with(|c| c.set(std::ptr::null_mut()));
                (*rtp).saved_ctx = crate::progress::tl_take();
            }
            drop(run_scope);
            match rt.action {
                Action::Yielded => runq.push_back(idx),
                Action::Done => {
                    any_done = true;
                    assert!(
                        stack.canary_intact(),
                        "fiber {idx} overflowed its {stack_size}-byte stack \
                         (canary clobbered); raise ClusterConfig::stack_size"
                    );
                    out[idx].1 = rt.panic.take();
                }
            }
        }
        if any_done || EVENTS.load(Ordering::Relaxed) != events_before {
            unproductive = 0;
            if idle_claimed {
                coord.slots[me].store(NOT_IDLE, Ordering::Release);
                idle_claimed = false;
            }
        } else {
            unproductive += 1;
            if unproductive >= STALL_CYCLES {
                if !idle_claimed {
                    // Publish the idle claim stamped with the event count
                    // this whole unproductive stretch observed.
                    coord.slots[me].store(events_before, Ordering::Release);
                    idle_claimed = true;
                }
                coord.maybe_fire();
            }
            assert!(
                unproductive < STALL_CYCLES + ABORT_CYCLES,
                "fiber deadlock: {} fibers still blocked after poisoning",
                runq.len()
            );
            if multi {
                idle_backoff(unproductive);
            }
        }
    }
    coord.slots[me].store(FINISHED, Ordering::Release);
    out
}

/// Run `tasks` as cooperatively-scheduled fibers on the calling thread
/// until all complete; returns each task's panic payload (`None` = clean
/// return), index-aligned with `tasks`.
///
/// `on_stall` is invoked if the fiber set deadlocks (every fiber
/// yielding, no unblocking events). Returning `true` acknowledges the
/// stall — the callback is expected to have poisoned the cluster so the
/// waiting fibers panic out of their wait loops. Returning `false`
/// defers the diagnosis (e.g. ranks are legitimately held back by an
/// in-flight fault-injection timer): the unproductive-cycle count resets
/// and detection re-arms from scratch.
pub(crate) fn run_fibers<'a>(
    tasks: Vec<Box<dyn FnOnce() + 'a>>,
    stack_size: usize,
    on_stall: impl Fn() -> bool,
) -> Vec<Option<Box<dyn Any + Send>>> {
    assert!(
        !in_fiber(),
        "nested fiber executors on one thread are not supported"
    );
    let n = tasks.len();
    let fibers: Vec<(usize, StackMem, Box<FiberRt>)> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, task)| {
            // The scheduler outlives every fiber (the loop runs them all
            // to completion before returning), so parking the borrowed
            // body behind a 'static trait object is sound.
            let body: Box<dyn FnOnce() + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + 'a>, _>(task) };
            let (stack, rt) = new_fiber(body, stack_size);
            (i, stack, rt)
        })
        .collect();
    let coord = StallCoord::new(1, &on_stall);
    let mut panics: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    for (i, p) in worker_loop(0, fibers, stack_size, &coord) {
        panics[i] = p;
    }
    panics
}

/// Allocate a stack and fiber state for one task body.
fn new_fiber(body: Box<dyn FnOnce()>, stack_size: usize) -> (StackMem, Box<FiberRt>) {
    let stack = StackMem::new(stack_size);
    let rt = Box::new(FiberRt {
        fiber_rsp: stack.prepare(fiber_main),
        sched_rsp: 0,
        action: Action::Yielded,
        entry: Some(body),
        panic: None,
        saved_ctx: None,
    });
    (stack, rt)
}

/// Run `tasks` as fibers sharded across `workers` OS threads, task `i`
/// on worker `placement[i]` (clamped into range); returns each task's
/// panic payload, index-aligned with `tasks`. Semantics match
/// [`run_fibers`] — in particular virtual time is bitwise identical for
/// any worker count or placement — with stall detection coordinated
/// globally across the workers (see the module docs).
///
/// Fibers never migrate: each worker round-robins only its own shard,
/// so per-fiber state needs no synchronization. Cross-shard blocking
/// runs through the ordinary mutex-protected wait sites, with idle
/// workers backing off politely so they do not starve the worker that
/// can unblock them on small hosts.
pub(crate) fn run_fibers_sharded<'a>(
    tasks: Vec<Box<dyn FnOnce() + Send + 'a>>,
    placement: &[usize],
    workers: usize,
    stack_size: usize,
    on_stall: impl Fn() -> bool + Sync,
) -> Vec<Option<Box<dyn Any + Send>>> {
    assert!(
        !in_fiber(),
        "nested fiber executors on one thread are not supported"
    );
    assert!(workers >= 1, "sharded executor needs at least one worker");
    assert_eq!(placement.len(), tasks.len(), "placement must cover every task");
    let n = tasks.len();
    type ShardedBody = (usize, Box<dyn FnOnce() + Send + 'static>);
    let mut shards: Vec<Vec<ShardedBody>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, task) in tasks.into_iter().enumerate() {
        // Sound for the same reason as in `run_fibers`: the scope join
        // below guarantees every worker loop (and thus every fiber)
        // completes before the borrowed data can go away.
        let body: Box<dyn FnOnce() + Send + 'static> =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, _>(task) };
        shards[placement[i].min(workers - 1)].push((i, body));
    }
    let coord = StallCoord::new(workers, &on_stall);
    let mut panics: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(w, bodies)| {
                let coord = &coord;
                std::thread::Builder::new()
                    .name(format!("simnet-worker-{w}"))
                    .spawn_scoped(s, move || {
                        // Stacks and fiber state are built on the worker
                        // that owns them and never leave it.
                        let fibers: Vec<(usize, StackMem, Box<FiberRt>)> = bodies
                            .into_iter()
                            .map(|(i, body)| {
                                let (stack, rt) = new_fiber(body, stack_size);
                                (i, stack, rt)
                            })
                            .collect();
                        worker_loop(w, fibers, stack_size, coord)
                    })
                    .expect("failed to spawn fiber worker thread")
            })
            .collect();
        for h in handles {
            for (i, p) in h.join().expect("fiber worker thread panicked") {
                panics[i] = p;
            }
        }
    });
    panics
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn run_simple(tasks: Vec<Box<dyn FnOnce() + '_>>) -> Vec<Option<Box<dyn Any + Send>>> {
        run_fibers(tasks, 64 * 1024, || panic!("unexpected stall"))
    }

    #[test]
    fn fibers_run_to_completion_in_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..4)
            .map(|i| {
                let log = Rc::clone(&log);
                Box::new(move || log.borrow_mut().push(i)) as Box<dyn FnOnce()>
            })
            .collect();
        let panics = run_simple(tasks);
        assert!(panics.iter().all(Option::is_none));
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn yielding_interleaves_round_robin() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..3)
            .map(|i| {
                let log = Rc::clone(&log);
                Box::new(move || {
                    for step in 0..3 {
                        log.borrow_mut().push((i, step));
                        yield_now();
                    }
                }) as Box<dyn FnOnce()>
            })
            .collect();
        run_simple(tasks);
        // Steps proceed in lockstep: all fibers' step 0, then step 1, ...
        let expect: Vec<(usize, usize)> =
            (0..3).flat_map(|s| (0..3).map(move |i| (i, s))).collect();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn panic_is_captured_not_propagated() {
        let tasks: Vec<Box<dyn FnOnce()>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("fiber boom")),
            Box::new(yield_now),
        ];
        let panics = run_simple(tasks);
        assert!(panics[0].is_none());
        let msg = panics[1]
            .as_ref()
            .and_then(|p| p.downcast_ref::<&str>().copied())
            .expect("payload preserved");
        assert_eq!(msg, "fiber boom");
        assert!(panics[2].is_none());
    }

    #[test]
    fn cooperative_ping_pong_via_shared_state() {
        // Two fibers alternate incrementing a counter, each waiting for
        // the other's turn — the pattern every blocking primitive reduces
        // to under the fiber executor.
        let turn = Rc::new(Cell::new(0u32));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..2u32)
            .map(|me| {
                let turn = Rc::clone(&turn);
                Box::new(move || {
                    for _ in 0..10 {
                        while turn.get() % 2 != me {
                            yield_now();
                        }
                        turn.set(turn.get() + 1);
                        note_event();
                    }
                }) as Box<dyn FnOnce()>
            })
            .collect();
        run_simple(tasks);
        assert_eq!(turn.get(), 20);
    }

    #[test]
    fn deep_stack_use_within_bounds_is_fine() {
        fn burn(depth: usize) -> usize {
            let pad = [depth as u8; 64];
            if depth == 0 {
                pad[0] as usize
            } else {
                burn(depth - 1) + pad.len()
            }
        }
        let tasks: Vec<Box<dyn FnOnce()>> = vec![Box::new(|| {
            assert_eq!(burn(100), 6400);
        })];
        let panics = run_fibers(tasks, 256 * 1024, || panic!("stall"));
        assert!(panics[0].is_none());
    }

    #[test]
    fn stall_detection_fires_and_callback_can_release() {
        // One fiber waits for a flag nothing will set; the stall callback
        // plays the poison role and sets it.
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let tasks: Vec<Box<dyn FnOnce() + '_>> = vec![Box::new(|| {
            while !flag.get() {
                yield_now();
            }
        })];
        let panics = run_fibers(tasks, 64 * 1024, move || {
            f2.set(true);
            true
        });
        assert!(panics[0].is_none());
    }

    #[test]
    fn deferred_stall_rearms_instead_of_aborting() {
        // The callback excuses the first few stall diagnoses (as the
        // fault layer does while an injected delay is outstanding); the
        // detector must re-arm rather than hit the hard-abort assert,
        // then fire again and release the fiber on the final diagnosis.
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let deferrals = Rc::new(Cell::new(0u32));
        let d2 = Rc::clone(&deferrals);
        let tasks: Vec<Box<dyn FnOnce() + '_>> = vec![Box::new(|| {
            while !flag.get() {
                yield_now();
            }
        })];
        let panics = run_fibers(tasks, 64 * 1024, move || {
            if d2.get() < 3 {
                d2.set(d2.get() + 1);
                return false;
            }
            f2.set(true);
            true
        });
        assert!(panics[0].is_none());
        assert_eq!(deferrals.get(), 3, "stall must re-fire after deferrals");
    }

    #[test]
    fn executor_selection_round_trips() {
        let before = executor();
        set_executor(Executor::Threads);
        assert_eq!(executor(), Executor::Threads);
        set_executor(Executor::Fibers);
        if ARCH_SUPPORTED {
            assert_eq!(executor(), Executor::Fibers);
        } else {
            assert_eq!(executor(), Executor::Threads);
        }
        set_executor(before);
    }

    #[test]
    fn worker_count_round_trips_and_clamps() {
        let before = workers();
        set_workers(4);
        assert_eq!(workers(), 4);
        set_workers(0);
        assert_eq!(workers(), 1, "worker count clamps to at least one");
        set_workers(before);
    }

    fn run_sharded(
        tasks: Vec<Box<dyn FnOnce() + Send + '_>>,
        workers: usize,
    ) -> Vec<Option<Box<dyn Any + Send>>> {
        let n = tasks.len();
        let placement: Vec<usize> = (0..n).map(|i| i * workers / n.max(1)).collect();
        run_fibers_sharded(tasks, &placement, workers, 64 * 1024, || {
            panic!("unexpected stall")
        })
    }

    #[test]
    fn sharded_tasks_all_complete_and_results_stay_indexed() {
        let done: Vec<AtomicU32> = (0..10).map(|_| AtomicU32::new(0)).collect();
        let done = Arc::new(done);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..10)
            .map(|i| {
                let done = Arc::clone(&done);
                Box::new(move || {
                    for _ in 0..3 {
                        yield_now();
                    }
                    done[i].store(i as u32 + 1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let panics = run_sharded(tasks, 4);
        assert!(panics.iter().all(Option::is_none));
        for (i, d) in done.iter().enumerate() {
            assert_eq!(d.load(Ordering::Relaxed), i as u32 + 1);
        }
    }

    #[test]
    fn sharded_ping_pong_across_workers() {
        // Two fibers placed on *different* workers alternate turns via
        // shared atomics — the cross-worker analogue of the cooperative
        // ping-pong above, exercising the idle-backoff path.
        let turn = Arc::new(AtomicU32::new(0));
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2u32)
            .map(|me| {
                let turn = Arc::clone(&turn);
                Box::new(move || {
                    for _ in 0..25 {
                        while turn.load(Ordering::Acquire) % 2 != me {
                            yield_now();
                        }
                        turn.fetch_add(1, Ordering::AcqRel);
                        note_event();
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        let panics = run_fibers_sharded(tasks, &[0, 1], 2, 64 * 1024, || {
            panic!("unexpected stall")
        });
        assert!(panics.iter().all(Option::is_none));
        assert_eq!(turn.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn sharded_panic_is_captured_on_the_right_index() {
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(yield_now),
            Box::new(|| panic!("worker fiber boom")),
            Box::new(|| {}),
        ];
        let panics = run_sharded(tasks, 3);
        assert!(panics[0].is_none());
        let msg = panics[1]
            .as_ref()
            .and_then(|p| p.downcast_ref::<&str>().copied())
            .expect("payload preserved");
        assert_eq!(msg, "worker fiber boom");
        assert!(panics[2].is_none());
    }

    #[test]
    fn sharded_stall_requires_every_worker_idle() {
        // Worker 0's fiber busy-works with events for a while (so worker
        // 0 is productive), then releases worker 1's fiber. The stall
        // callback must NOT fire: only *global* quiescence is a stall.
        let release = Arc::new(AtomicU32::new(0));
        let r2 = Arc::clone(&release);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(move || {
                for _ in 0..5000 {
                    note_event();
                    yield_now();
                }
                r2.store(1, Ordering::Release);
                note_event();
            }),
            Box::new(move || {
                while release.load(Ordering::Acquire) == 0 {
                    yield_now();
                }
            }),
        ];
        let panics = run_fibers_sharded(tasks, &[0, 1], 2, 64 * 1024, || {
            panic!("spurious stall: one worker was still productive")
        });
        assert!(panics.iter().all(Option::is_none));
    }

    #[test]
    fn sharded_global_deadlock_is_diagnosed() {
        // Both workers' fibers wait on a flag only the stall callback
        // sets — the genuine global deadlock case, including a finished
        // worker (task 2 returns immediately, draining worker 2).
        let flag = Arc::new(AtomicU32::new(0));
        let f1 = Arc::clone(&flag);
        let f2 = Arc::clone(&flag);
        let f3 = Arc::clone(&flag);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = vec![
            Box::new(move || {
                while f1.load(Ordering::Acquire) == 0 {
                    yield_now();
                }
            }),
            Box::new(move || {
                while f2.load(Ordering::Acquire) == 0 {
                    yield_now();
                }
            }),
            Box::new(|| {}),
        ];
        let panics = run_fibers_sharded(tasks, &[0, 1, 2], 3, 64 * 1024, move || {
            f3.store(1, Ordering::Release);
            note_event();
            true
        });
        assert!(panics.iter().all(Option::is_none));
    }

    #[test]
    fn sharded_matches_solo_for_send_tasks() {
        // The same Send workload through both entry points finishes with
        // the same per-task results (panics and effects), whatever the
        // worker count — including more workers than tasks.
        let run_with = |workers: Option<usize>| -> Vec<u32> {
            let out: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
            let out = Arc::new(out);
            let mk = |i: usize, out: &Arc<Vec<AtomicU32>>| {
                let out = Arc::clone(out);
                move || {
                    for step in 0..4u32 {
                        out[i].fetch_add(step + i as u32, Ordering::Relaxed);
                        yield_now();
                    }
                }
            };
            match workers {
                None => {
                    let tasks: Vec<Box<dyn FnOnce() + '_>> =
                        (0..6).map(|i| Box::new(mk(i, &out)) as Box<dyn FnOnce() + '_>).collect();
                    run_fibers(tasks, 64 * 1024, || panic!("stall"));
                }
                Some(w) => {
                    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..6)
                        .map(|i| Box::new(mk(i, &out)) as Box<dyn FnOnce() + Send + '_>)
                        .collect();
                    let placement: Vec<usize> = (0..6).map(|i| i % w).collect();
                    run_fibers_sharded(tasks, &placement, w, 64 * 1024, || panic!("stall"));
                }
            }
            out.iter().map(|a| a.load(Ordering::Relaxed)).collect()
        };
        let solo = run_with(None);
        for w in [1, 2, 4, 8] {
            assert_eq!(run_with(Some(w)), solo, "worker count {w} changed results");
        }
    }
}
