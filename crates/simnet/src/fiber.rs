//! Cooperative fiber executor: all ranks of a cluster on one OS thread.
//!
//! # Why
//!
//! The simulator's unit of concurrency is a *rank*, and ranks spend most
//! of their host life blocked on each other: every rendezvous parks
//! `p - 1` ranks, every receive parks one. With one OS thread per rank,
//! each park/wake pair costs a futex syscall plus a kernel context switch
//! — measured at ~6 µs on a single-CPU host, which multiplied by the
//! hundreds of parks in even a quick figure run dwarfs the actual
//! simulation work. None of that parallelism is real: on one CPU the
//! threads strictly take turns anyway.
//!
//! A *fiber* (stackful coroutine) makes the turn-taking explicit. Every
//! rank gets its own heap-allocated stack, and a scheduler on the calling
//! thread round-robins them with a userspace context switch (~tens of
//! nanoseconds: six callee-saved registers and the stack pointer). A rank
//! that would park instead yields (`yield_now`); the peers it is waiting
//! for run immediately after, on the same thread.
//!
//! # What stays identical
//!
//! Virtual time. The simulation's timestamps are already a pure function
//! of configuration — deterministic under *any* host interleaving (the
//! regress gate enforces it) — and the fiber scheduler merely picks one
//! particular interleaving. The blocking primitives keep their mutex
//! protocols; the only difference is *how* a blocked rank waits (yield
//! vs. condvar), selected per call site by the private `in_fiber` probe.
//!
//! Code that drives the primitives from plain OS threads (unit tests
//! spawning `std::thread`) is untouched: without a fiber context the
//! wait sites fall back to their condition variables.
//!
//! # Executor selection
//!
//! [`run_cluster`](crate::run_cluster) consults [`executor`]: `Fibers`
//! (the default on x86_64) or `Threads` (other architectures, nested
//! clusters, or an explicit `SIMNET_EXECUTOR=threads` /
//! [`set_executor`] override — useful for A/B-ing the two modes, which
//! must produce bitwise-identical virtual times).
//!
//! # Safety notes
//!
//! The context switch is ~10 instructions of inline assembly following
//! the System V ABI: push the callee-saved registers, swap `rsp`, pop,
//! return. Panics never cross the assembly boundary — each fiber body
//! runs under `catch_unwind` and the payload is carried back to the
//! scheduler by value, mirroring `JoinHandle::join`. Fiber stacks have
//! no OS guard page; a canary word at the stack base turns silent
//! overflow corruption into a loud panic at fiber completion.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which substrate [`crate::run_cluster`] runs ranks on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// Cooperative fibers, all ranks on the calling thread (default on
    /// x86_64).
    Fibers,
    /// One OS thread per rank (fallback; always available).
    Threads,
}

/// 0 = unresolved, 1 = fibers, 2 = threads.
static EXECUTOR: AtomicU8 = AtomicU8::new(0);

/// True when fiber switching is implemented for this architecture.
const ARCH_SUPPORTED: bool = cfg!(target_arch = "x86_64");

/// Select the executor for subsequent [`crate::run_cluster`] calls.
/// Requesting `Fibers` on an unsupported architecture silently keeps
/// `Threads`.
pub fn set_executor(e: Executor) {
    let v = match e {
        Executor::Fibers if ARCH_SUPPORTED => 1,
        _ => 2,
    };
    EXECUTOR.store(v, Ordering::Relaxed);
}

/// The currently selected executor. First use resolves the default:
/// `SIMNET_EXECUTOR=threads|fibers` if set, else fibers where supported.
pub fn executor() -> Executor {
    match EXECUTOR.load(Ordering::Relaxed) {
        1 => Executor::Fibers,
        2 => Executor::Threads,
        _ => {
            let e = match std::env::var("SIMNET_EXECUTOR").as_deref() {
                Ok("threads") => Executor::Threads,
                Ok("fibers") => Executor::Fibers,
                _ => Executor::Fibers,
            };
            set_executor(e);
            executor()
        }
    }
}

/// Global event counter for stall detection: bumped by every operation
/// that can unblock a waiter (packet delivery, rendezvous arrival,
/// progress-registry transition). A full scheduler cycle in which every
/// fiber yields and this counter stays put means nobody can make
/// progress — a genuine deadlock rather than ordinary waiting.
static EVENTS: AtomicU64 = AtomicU64::new(0);

/// Record an unblocking-relevant event (cheap relaxed increment).
pub(crate) fn note_event() {
    EVENTS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Context switch (x86_64 System V)
// ---------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod arch {
    // simnet_fiber_switch(save: *mut usize, restore: *const usize)
    //
    // Saves the suspending context's callee-saved registers on its own
    // stack and stores its rsp through `save` (rdi); loads rsp from
    // `restore` (rsi) and pops the resuming context's registers. The
    // caller-saved half of the register file is handled by the compiler
    // because this is an ordinary `extern "C"` call. `ret` then resumes
    // the target — either past its own `simnet_fiber_switch` call or, for
    // a fresh fiber, into the entry trampoline address planted by
    // `StackMem::prepare`.
    std::arch::global_asm!(
        ".globl simnet_fiber_switch",
        ".hidden simnet_fiber_switch",
        "simnet_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, [rsi]",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
    );

    unsafe extern "C" {
        pub(super) fn simnet_fiber_switch(save: *mut usize, restore: *const usize);
    }

    /// Switch away from the current context: store its rsp in `save`,
    /// resume the context whose rsp is in `restore`.
    ///
    /// # Safety
    /// `restore` must hold an rsp produced by this function (or by
    /// `StackMem::prepare`), on a stack that is still alive.
    pub(super) unsafe fn switch(save: *mut usize, restore: *const usize) {
        unsafe { simnet_fiber_switch(save, restore) }
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod arch {
    /// Unsupported architecture: `executor()` never selects fibers, so
    /// this is unreachable.
    pub(super) unsafe fn switch(_save: *mut usize, _restore: *const usize) {
        unreachable!("fiber executor is not supported on this architecture")
    }
}

// ---------------------------------------------------------------------
// Fiber stacks
// ---------------------------------------------------------------------

/// Magic planted at the low end of every fiber stack; checked when the
/// fiber completes to catch silent overflows (heap stacks have no guard
/// page).
const STACK_CANARY: u64 = 0x5A5A_F1BE_5A5A_F1BE;

struct StackMem {
    base: *mut u8,
    layout: std::alloc::Layout,
}

impl StackMem {
    fn new(size: usize) -> Self {
        // 16-byte alignment satisfies the ABI; size floor keeps the
        // canary + initial frame sane.
        let size = size.max(16 * 1024) & !15;
        let layout = std::alloc::Layout::from_size_align(size, 16).expect("valid stack layout");
        let base = unsafe { std::alloc::alloc(layout) };
        assert!(!base.is_null(), "fiber stack allocation failed");
        unsafe { (base as *mut u64).write(STACK_CANARY) };
        StackMem { base, layout }
    }

    /// Lay out the initial frame so that restoring from the returned rsp
    /// pops six zeroed callee-saved registers and `ret`s into `entry`
    /// with the stack alignment of a freshly `call`ed function.
    fn prepare(&self, entry: extern "C" fn() -> !) -> usize {
        unsafe {
            let top = (self.base as usize + self.layout.size()) & !15;
            let ret_slot = top - 16; // 16-aligned => rsp ≡ 8 (mod 16) at entry
            (ret_slot as *mut usize).write(entry as usize);
            let rsp = ret_slot - 6 * 8;
            std::ptr::write_bytes(rsp as *mut u8, 0, 6 * 8);
            rsp
        }
    }

    fn canary_intact(&self) -> bool {
        unsafe { (self.base as *const u64).read() == STACK_CANARY }
    }
}

impl Drop for StackMem {
    fn drop(&mut self) {
        unsafe { std::alloc::dealloc(self.base, self.layout) };
    }
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

/// Why a fiber switched back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Blocked in a wait site; re-run it later.
    Yielded,
    /// The body returned (or unwound); never resume.
    Done,
}

/// Per-fiber runtime shared between the scheduler and the fiber itself
/// (via the thread-local [`CURRENT`] pointer). Boxed so its address is
/// stable across scheduler Vec reallocation.
struct FiberRt {
    /// Fiber's rsp while suspended.
    fiber_rsp: usize,
    /// Scheduler's rsp while the fiber runs.
    sched_rsp: usize,
    action: Action,
    /// The body; taken by the entry trampoline on first resume.
    entry: Option<Box<dyn FnOnce()>>,
    /// Panic payload captured by the trampoline's `catch_unwind`.
    panic: Option<Box<dyn Any + Send>>,
    /// The rank's progress context, parked here while the fiber is
    /// suspended (thread-locals are per OS thread, not per fiber, so the
    /// scheduler swaps it in and out around every switch).
    saved_ctx: Option<crate::progress::Ctx>,
}

thread_local! {
    /// The fiber currently running on this thread, if any.
    static CURRENT: Cell<*mut FiberRt> = const { Cell::new(std::ptr::null_mut()) };
}

/// True when the calling code runs inside a fiber — wait sites use this
/// to pick cooperative yielding over condvar parking.
pub(crate) fn in_fiber() -> bool {
    CURRENT.with(|c| !c.get().is_null())
}

/// Yield the current fiber back to the scheduler; it will be re-run
/// after the other runnable fibers. Must only be called [`in_fiber`].
pub(crate) fn yield_now() {
    let rt = CURRENT.with(Cell::get);
    assert!(!rt.is_null(), "yield_now outside a fiber");
    unsafe {
        (*rt).action = Action::Yielded;
        arch::switch(&raw mut (*rt).fiber_rsp, &raw const (*rt).sched_rsp);
    }
}

/// First frame of every fiber: runs the body under `catch_unwind`, then
/// switches back to the scheduler for good.
extern "C" fn fiber_main() -> ! {
    let rt = CURRENT.with(Cell::get);
    debug_assert!(!rt.is_null(), "fiber_main outside a fiber");
    unsafe {
        let body = (*rt).entry.take().expect("fiber body present on first resume");
        if let Err(payload) = catch_unwind(AssertUnwindSafe(body)) {
            (*rt).panic = Some(payload);
        }
        (*rt).action = Action::Done;
        let mut discard = 0usize;
        arch::switch(&raw mut discard, &raw const (*rt).sched_rsp);
    }
    unreachable!("completed fiber resumed")
}

/// Consecutive fully-unproductive scheduler cycles tolerated before the
/// stall callback fires (generous: ordinary waiting always produces
/// events every cycle).
const STALL_CYCLES: u64 = 1000;
/// Additional unproductive cycles after the stall callback before the
/// scheduler aborts hard (the callback is expected to poison the cluster,
/// which makes every waiting fiber panic and drain within one cycle).
const ABORT_CYCLES: u64 = 100_000;

/// Run `tasks` as cooperatively-scheduled fibers on the calling thread
/// until all complete; returns each task's panic payload (`None` = clean
/// return), index-aligned with `tasks`.
///
/// `on_stall` is invoked if the fiber set deadlocks (every fiber
/// yielding, no unblocking events). Returning `true` acknowledges the
/// stall — the callback is expected to have poisoned the cluster so the
/// waiting fibers panic out of their wait loops. Returning `false`
/// defers the diagnosis (e.g. ranks are legitimately held back by an
/// in-flight fault-injection timer): the unproductive-cycle count resets
/// and detection re-arms from scratch.
pub(crate) fn run_fibers<'a>(
    tasks: Vec<Box<dyn FnOnce() + 'a>>,
    stack_size: usize,
    on_stall: impl Fn() -> bool,
) -> Vec<Option<Box<dyn Any + Send>>> {
    assert!(
        !in_fiber(),
        "nested fiber executors on one thread are not supported"
    );
    let n = tasks.len();
    let mut fibers: Vec<(StackMem, Box<FiberRt>)> = tasks
        .into_iter()
        .map(|task| {
            // The scheduler outlives every fiber (the loop below runs
            // them all to completion before returning), so parking the
            // borrowed body behind a 'static trait object is sound.
            let body: Box<dyn FnOnce() + 'static> =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + 'a>, _>(task) };
            let stack = StackMem::new(stack_size);
            let rt = Box::new(FiberRt {
                fiber_rsp: stack.prepare(fiber_main),
                sched_rsp: 0,
                action: Action::Yielded,
                entry: Some(body),
                panic: None,
                saved_ctx: None,
            });
            (stack, rt)
        })
        .collect();

    let mut runq: std::collections::VecDeque<usize> = (0..n).collect();
    let mut panics: Vec<Option<Box<dyn Any + Send>>> = (0..n).map(|_| None).collect();
    let mut unproductive_cycles = 0u64;
    let mut stalled = false;
    // hostprof: the whole scheduler loop is one frame; fiber slices nest
    // inside it, so this frame's self time is pure scheduling overhead
    // (run-queue churn, context-switch cost, stall detection).
    let _sched_scope = simtrace::host::scope(simtrace::host::Site::FiberSched);
    while !runq.is_empty() {
        let events_before = EVENTS.load(Ordering::Relaxed);
        let mut any_done = false;
        // One cycle: resume every currently-runnable fiber once.
        for _ in 0..runq.len() {
            let idx = runq.pop_front().expect("runq non-empty within cycle");
            let (stack, rt) = &mut fibers[idx];
            let rtp: *mut FiberRt = &mut **rt;
            // hostprof: time one slice (resume -> suspend). The guard is
            // created and dropped on the scheduler side of the switch, so
            // it never spans a yield; probes inside the fiber body nest
            // under this frame because fibers share the scheduler's
            // thread-local profiler stack.
            let run_scope = simtrace::host::scope(simtrace::host::Site::FiberRun);
            unsafe {
                crate::progress::tl_set((*rtp).saved_ctx.take());
                CURRENT.with(|c| c.set(rtp));
                arch::switch(&raw mut (*rtp).sched_rsp, &raw const (*rtp).fiber_rsp);
                CURRENT.with(|c| c.set(std::ptr::null_mut()));
                (*rtp).saved_ctx = crate::progress::tl_take();
            }
            drop(run_scope);
            match rt.action {
                Action::Yielded => runq.push_back(idx),
                Action::Done => {
                    any_done = true;
                    assert!(
                        stack.canary_intact(),
                        "fiber {idx} overflowed its {stack_size}-byte stack \
                         (canary clobbered); raise ClusterConfig::stack_size"
                    );
                    panics[idx] = rt.panic.take();
                }
            }
        }
        if any_done || EVENTS.load(Ordering::Relaxed) != events_before {
            unproductive_cycles = 0;
        } else {
            unproductive_cycles += 1;
            if !stalled && unproductive_cycles >= STALL_CYCLES {
                if on_stall() {
                    stalled = true;
                } else {
                    // Deferred: re-arm detection so the abort assert below
                    // cannot fire while the stall is being excused.
                    unproductive_cycles = 0;
                }
            }
            assert!(
                unproductive_cycles < STALL_CYCLES + ABORT_CYCLES,
                "fiber deadlock: {} fibers still blocked after poisoning",
                runq.len()
            );
        }
    }
    panics
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn run_simple(tasks: Vec<Box<dyn FnOnce() + '_>>) -> Vec<Option<Box<dyn Any + Send>>> {
        run_fibers(tasks, 64 * 1024, || panic!("unexpected stall"))
    }

    #[test]
    fn fibers_run_to_completion_in_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..4)
            .map(|i| {
                let log = Rc::clone(&log);
                Box::new(move || log.borrow_mut().push(i)) as Box<dyn FnOnce()>
            })
            .collect();
        let panics = run_simple(tasks);
        assert!(panics.iter().all(Option::is_none));
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn yielding_interleaves_round_robin() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..3)
            .map(|i| {
                let log = Rc::clone(&log);
                Box::new(move || {
                    for step in 0..3 {
                        log.borrow_mut().push((i, step));
                        yield_now();
                    }
                }) as Box<dyn FnOnce()>
            })
            .collect();
        run_simple(tasks);
        // Steps proceed in lockstep: all fibers' step 0, then step 1, ...
        let expect: Vec<(usize, usize)> =
            (0..3).flat_map(|s| (0..3).map(move |i| (i, s))).collect();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn panic_is_captured_not_propagated() {
        let tasks: Vec<Box<dyn FnOnce()>> = vec![
            Box::new(|| {}),
            Box::new(|| panic!("fiber boom")),
            Box::new(|| yield_now()),
        ];
        let panics = run_simple(tasks);
        assert!(panics[0].is_none());
        let msg = panics[1]
            .as_ref()
            .and_then(|p| p.downcast_ref::<&str>().copied())
            .expect("payload preserved");
        assert_eq!(msg, "fiber boom");
        assert!(panics[2].is_none());
    }

    #[test]
    fn cooperative_ping_pong_via_shared_state() {
        // Two fibers alternate incrementing a counter, each waiting for
        // the other's turn — the pattern every blocking primitive reduces
        // to under the fiber executor.
        let turn = Rc::new(Cell::new(0u32));
        let tasks: Vec<Box<dyn FnOnce()>> = (0..2u32)
            .map(|me| {
                let turn = Rc::clone(&turn);
                Box::new(move || {
                    for _ in 0..10 {
                        while turn.get() % 2 != me {
                            yield_now();
                        }
                        turn.set(turn.get() + 1);
                        note_event();
                    }
                }) as Box<dyn FnOnce()>
            })
            .collect();
        run_simple(tasks);
        assert_eq!(turn.get(), 20);
    }

    #[test]
    fn deep_stack_use_within_bounds_is_fine() {
        fn burn(depth: usize) -> usize {
            let pad = [depth as u8; 64];
            if depth == 0 {
                pad[0] as usize
            } else {
                burn(depth - 1) + pad.len()
            }
        }
        let tasks: Vec<Box<dyn FnOnce()>> = vec![Box::new(|| {
            assert_eq!(burn(100), 6400);
        })];
        let panics = run_fibers(tasks, 256 * 1024, || panic!("stall"));
        assert!(panics[0].is_none());
    }

    #[test]
    fn stall_detection_fires_and_callback_can_release() {
        // One fiber waits for a flag nothing will set; the stall callback
        // plays the poison role and sets it.
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let tasks: Vec<Box<dyn FnOnce() + '_>> = vec![Box::new(|| {
            while !flag.get() {
                yield_now();
            }
        })];
        let panics = run_fibers(tasks, 64 * 1024, move || {
            f2.set(true);
            true
        });
        assert!(panics[0].is_none());
    }

    #[test]
    fn deferred_stall_rearms_instead_of_aborting() {
        // The callback excuses the first few stall diagnoses (as the
        // fault layer does while an injected delay is outstanding); the
        // detector must re-arm rather than hit the hard-abort assert,
        // then fire again and release the fiber on the final diagnosis.
        let flag = Rc::new(Cell::new(false));
        let f2 = Rc::clone(&flag);
        let deferrals = Rc::new(Cell::new(0u32));
        let d2 = Rc::clone(&deferrals);
        let tasks: Vec<Box<dyn FnOnce() + '_>> = vec![Box::new(|| {
            while !flag.get() {
                yield_now();
            }
        })];
        let panics = run_fibers(tasks, 64 * 1024, move || {
            if d2.get() < 3 {
                d2.set(d2.get() + 1);
                return false;
            }
            f2.set(true);
            true
        });
        assert!(panics[0].is_none());
        assert_eq!(deferrals.get(), 3, "stall must re-fire after deferrals");
    }

    #[test]
    fn executor_selection_round_trips() {
        let before = executor();
        set_executor(Executor::Threads);
        assert_eq!(executor(), Executor::Threads);
        set_executor(Executor::Fibers);
        if ARCH_SUPPORTED {
            assert_eq!(executor(), Executor::Fibers);
        } else {
            assert_eq!(executor(), Executor::Threads);
        }
        set_executor(before);
    }
}
