//! Deterministic admission ordering for shared virtual-time resources.
//!
//! Virtual arrival times in this simulator are deterministic, but shared
//! *stateful* resources (an OST's serial queue, a serialized NIC) used to
//! admit requests in whatever order the OS happened to run the rank
//! threads. Two requests with different virtual arrivals could therefore
//! mutate the resource in either order, permuting queue depths, jitter
//! draws and completion times run-to-run.
//!
//! The [`ProgressRegistry`] closes that hole: every cluster run carries
//! one registry, each rank thread installs a thread-local handle, and a
//! resource calls [`admit`] before mutating its state. Admission blocks
//! (in *host* time only — no virtual time is charged) until the request's
//! key `(virtual arrival, rank, seq)` is provably the smallest the
//! cluster can still produce, which makes the admission order — and hence
//! every queue-dependent quantity — a pure function of virtual time.
//!
//! # How "provably smallest" is decided
//!
//! The registry tracks, per rank, a *floor*: a lower bound on the virtual
//! arrival of any resource request the rank may still issue, plus what
//! the rank is currently blocked on:
//!
//! * `Running` — the rank is executing; its next request arrives no
//!   earlier than its floor (raised each time it releases a request).
//! * `Recv` — blocked on a point-to-point receive **with no matching
//!   packet delivered**; its wake, and all later requests, happen no
//!   earlier than the sender's floor (the send is still in the sender's
//!   future; virtual clocks are monotone along happens-before chains).
//! * `Rdv` — parked in a rendezvous; completion is `max` over all
//!   participants' entry clocks, so every participant's floor bounds it.
//! * `Pending` — waiting in this gate; its key bounds all its later
//!   requests (requests within one I/O call share an arrival, so only
//!   the per-rank `seq` grows).
//! * `Finished` — will never request again.
//!
//! A blocked chain that reaches the *requester itself* is unconstrained:
//! the dependee's wake requires the requester's own future progress,
//! which happens only after the pending request completes, so everything
//! downstream necessarily carries a later key. This rule is what makes
//! the gate deadlock-free: when every other rank is parked waiting for
//! the requester (the steady state of a bulk-synchronous collective),
//! admission is immediate.
//!
//! Soundness of the `Recv` bound depends on one invariant, maintained
//! jointly with [`crate::mailbox::Mailbox`]: a rank is registered as
//! `Recv` **only while no matching packet exists in its mailbox**
//! (registration happens under the mailbox lock after a failed match,
//! and delivery of a matching packet downgrades the mode under the same
//! lock). Likewise a rank stays `Rdv` only until the meeting completes:
//! the last arrival downgrades every parked participant when it
//! publishes the result, before any of them observably wakes.
//!
//! Threads without an installed context (plain unit tests driving an
//! `Ost` or `Mailbox` directly) bypass the gate entirely: [`admit`] is a
//! no-op and behavior is byte-identical to the ungated code.

use crate::rendezvous::PoisonFlag;
use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// Admission key of one resource request. Ordered lexicographically by
/// `(arrival, rank, seq)`; unique because `seq` is globally monotone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReqKey {
    /// Virtual arrival of the request at the resource.
    pub arrival: SimTime,
    /// Requesting global rank.
    pub rank: usize,
    /// Global issue number (tie-break among same-arrival requests).
    pub seq: u64,
}

impl ReqKey {
    fn lt(&self, other: &ReqKey) -> bool {
        self.cmp_key(other) == std::cmp::Ordering::Less
    }

    fn cmp_key(&self, other: &ReqKey) -> std::cmp::Ordering {
        self.arrival
            .0
            .total_cmp(&other.arrival.0)
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone)]
enum Mode {
    Running,
    Recv { src: usize, ctx: u32, tag: i32 },
    Rdv { id: u64, members: Arc<Vec<usize>> },
    Pending { key: ReqKey },
    Finished,
}

#[derive(Debug)]
struct RankState {
    /// Lower bound (virtual time) on this rank's future request arrivals.
    floor: SimTime,
    mode: Mode,
}

#[derive(Debug)]
struct Inner {
    ranks: Vec<RankState>,
    next_seq: u64,
    /// Bumped by every state change (all of which run through
    /// [`ProgressRegistry::wake_min`]). Spinning waiters in
    /// [`ProgressRegistry::acquire`] use it to skip the `O(n)`
    /// admissibility re-scan when nothing has changed since the scan
    /// last said no — admissibility is a pure function of this state,
    /// so an unchanged version means an unchanged verdict. This matters
    /// most under the sharded fiber executor, where several workers
    /// poll the one registry concurrently.
    version: u64,
}

/// Cluster-wide admission gate; one per [`crate::run_cluster`] run.
///
/// Wakeups are *targeted*: at any instant at most one pending request —
/// the one with the smallest `(arrival, rank, seq)` key — can possibly
/// be admissible (any larger pending key fails against it), so every
/// state change wakes only that request's rank on its own condition
/// variable instead of broadcasting to all parked rank threads. With
/// 512–1024 rank threads this turns each release from a thundering herd
/// of `O(n)` wakeups (each re-running the admissibility scan and going
/// back to sleep) into a single handoff.
#[derive(Debug)]
pub struct ProgressRegistry {
    inner: Mutex<Inner>,
    /// One condvar per rank; rank `r` waits only on `cvs[r]`.
    cvs: Box<[Condvar]>,
    poison: Arc<PoisonFlag>,
}

const POISON_POLL: Duration = Duration::from_millis(50);

/// Number of poison polls after which a blocked wait reports itself when
/// `SIMNET_STALL_DEBUG` is set (~5s of host time — far beyond any
/// legitimate wait in the test suite, short enough to diagnose hangs).
pub(crate) const STALL_DEBUG_POLLS: u32 = 100;

/// True when substrate waits should print a one-shot diagnostic after
/// [`STALL_DEBUG_POLLS`] polls. Keyed off the `SIMNET_STALL_DEBUG`
/// environment variable; checked only on the stall path, never per-poll.
pub(crate) fn stall_debug() -> bool {
    std::env::var_os("SIMNET_STALL_DEBUG").is_some()
}

/// Lower bound on a rank's future request arrivals. `strict` means the
/// arrivals are **strictly** greater than `time`: the bound was derived
/// through a blocked edge (Recv/Rdv), and a blocked rank's wake strictly
/// advances virtual time past its dependee's bound (every wake crosses a
/// completed service, a message flight, or a collective — all of which
/// the cost models keep positive). Strictness is what resolves
/// equal-arrival ties against lower-numbered blocked ranks: their next
/// request provably lands *after* the tied arrival, so it cannot precede
/// a pending request at it.
#[derive(Debug, Clone, Copy)]
struct Bound {
    time: SimTime,
    strict: bool,
}

impl Bound {
    /// Tighter of two lower bounds: later time wins; on equal times a
    /// strict bound subsumes a non-strict one.
    fn max(self, other: Bound) -> Bound {
        if other.time > self.time {
            other
        } else if self.time > other.time {
            self
        } else {
            Bound {
                time: self.time,
                strict: self.strict || other.strict,
            }
        }
    }
}

/// Memoized floor analysis for one admissibility check.
enum FloorMemo {
    Unvisited,
    InStack,
    Done(Option<Bound>),
}

impl ProgressRegistry {
    /// Registry for `n` ranks sharing the cluster poison flag.
    pub fn new(n: usize, poison: Arc<PoisonFlag>) -> Self {
        ProgressRegistry {
            inner: Mutex::new(Inner {
                ranks: (0..n)
                    .map(|_| RankState {
                        floor: SimTime::ZERO,
                        mode: Mode::Running,
                    })
                    .collect(),
                next_seq: 0,
                version: 0,
            }),
            cvs: (0..n).map(|_| Condvar::new()).collect(),
            poison,
        }
    }

    /// Wake the one rank whose pending request could now be admissible:
    /// the holder of the minimum pending key. (If that rank currently
    /// *holds* the admission rather than waiting, the notify is a no-op
    /// and the next wake happens at its release — which re-runs this.)
    fn wake_min(&self, inner: &mut Inner) {
        inner.version += 1;
        let mut best: Option<(&ReqKey, usize)> = None;
        for (r, st) in inner.ranks.iter().enumerate() {
            if let Mode::Pending { key } = &st.mode {
                if best.is_none_or(|(bk, _)| key.lt(bk)) {
                    best = Some((key, r));
                }
            }
        }
        if let Some((_, r)) = best {
            self.cvs[r].notify_one();
        }
        // Every registry state change runs through here; under the fiber
        // executor it doubles as the liveness signal for stall detection.
        crate::fiber::note_event();
    }

    /// Lower bound on rank `r`'s future request arrivals, from the
    /// perspective of `requester`'s current pending request. `None`
    /// means unconstrained (every future request of `r` necessarily
    /// carries a key greater than the requester's pending one).
    fn floor_of(
        inner: &Inner,
        r: usize,
        requester: usize,
        memo: &mut [FloorMemo],
    ) -> Option<Bound> {
        if r == requester {
            // Chains through the requester resolve only after its pending
            // request completes — no constraint on the current admission.
            return None;
        }
        match memo[r] {
            FloorMemo::Done(v) => return v,
            // A cycle among blocked ranks: contribute the weakest sound
            // bound and let the enclosing `max` ignore it.
            FloorMemo::InStack => {
                return Some(Bound {
                    time: SimTime::ZERO,
                    strict: false,
                })
            }
            FloorMemo::Unvisited => {}
        }
        memo[r] = FloorMemo::InStack;
        let st = &inner.ranks[r];
        let own = Bound {
            time: st.floor,
            strict: false,
        };
        let out = match &st.mode {
            Mode::Finished => None,
            // The rank's *next* request can share the pending arrival
            // (several requests per I/O call carry one arrival), so the
            // self-bound is non-strict.
            Mode::Pending { key } => Some(own.max(Bound {
                time: key.arrival,
                strict: false,
            })),
            Mode::Running => Some(own),
            Mode::Recv { src, .. } => {
                Self::floor_of(inner, *src, requester, memo).map(|f| {
                    // The wake (message arrival + receive) strictly
                    // follows the sender's bound.
                    own.max(Bound {
                        time: f.time,
                        strict: true,
                    })
                })
            }
            Mode::Rdv { members, .. } => {
                let mut best = Some(own);
                for &p in members.iter() {
                    match Self::floor_of(inner, p, requester, memo) {
                        None => {
                            best = None;
                            break;
                        }
                        // The wake (meeting completion) strictly follows
                        // every participant's bound.
                        Some(f) => {
                            best = best.map(|b| {
                                b.max(Bound {
                                    time: f.time,
                                    strict: true,
                                })
                            })
                        }
                    }
                }
                best
            }
        };
        memo[r] = FloorMemo::Done(out);
        out
    }

    /// True when no other rank can still produce a request key below
    /// `key` — i.e. admitting `key` now preserves global key order.
    fn admissible(inner: &Inner, key: &ReqKey) -> bool {
        // Cheap pass: another pending request with a smaller key wins.
        for (r, st) in inner.ranks.iter().enumerate() {
            if r == key.rank {
                continue;
            }
            if let Mode::Pending { key: other } = &st.mode {
                if other.lt(key) {
                    return false;
                }
            }
        }
        // Full pass: bound every non-pending rank's future requests.
        let n = inner.ranks.len();
        let mut memo: Vec<FloorMemo> = (0..n).map(|_| FloorMemo::Unvisited).collect();
        for r in 0..n {
            if r == key.rank || matches!(inner.ranks[r].mode, Mode::Pending { .. }) {
                continue;
            }
            if let Some(f) = Self::floor_of(inner, r, key.rank, &mut memo) {
                if f.strict {
                    // r's future arrivals are strictly after f.time, so
                    // any pending key at or before it is safely first.
                    if key.arrival.0.total_cmp(&f.time.0) == std::cmp::Ordering::Greater {
                        return false;
                    }
                } else {
                    let bound = ReqKey {
                        arrival: f.time,
                        rank: r,
                        seq: 0,
                    };
                    if !key.lt(&bound) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Block (host time) until a request by `rank` arriving at `arrival`
    /// is the cluster-wide minimum, then hold the admission.
    fn acquire(&self, rank: usize, arrival: SimTime) {
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let key = ReqKey { arrival, rank, seq };
        let st = &mut inner.ranks[rank];
        st.floor = st.floor.max(arrival);
        st.mode = Mode::Pending { key };
        // The new pending key raises this rank's bound for everyone
        // else, possibly unblocking the current minimum pending request.
        self.wake_min(&mut inner);
        let mut polls = 0u32;
        // Version of the registry state the last failed scan saw: an
        // unchanged version on wake means an unchanged (negative)
        // verdict, so the scan can be skipped outright.
        let mut denied_at: Option<u64> = None;
        while denied_at == Some(inner.version) || {
            let ok = Self::admissible(&inner, &key);
            if !ok {
                denied_at = Some(inner.version);
            }
            !ok
        } {
            self.poison.check();
            if crate::fiber::in_fiber() {
                // Cooperative executor: release the lock and let the
                // other ranks (fibers on this same thread) run; they are
                // the only source of the state change we're waiting for.
                parking_lot::MutexGuard::unlocked(&mut inner, crate::fiber::yield_now);
            } else {
                self.cvs[rank].wait_for(&mut inner, POISON_POLL);
            }
            self.poison.check();
            polls += 1;
            if polls == STALL_DEBUG_POLLS && stall_debug() {
                eprintln!("progress gate stalled: rank {rank} key {key:?}");
                for (r, st) in inner.ranks.iter().enumerate() {
                    eprintln!("  rank {r}: floor {:?} mode {:?}", st.floor, st.mode);
                }
            }
        }
    }

    /// Release a held admission: the rank runs again and its floor
    /// remembers the served arrival.
    fn release(&self, rank: usize) {
        let mut inner = self.inner.lock();
        let st = &mut inner.ranks[rank];
        if let Mode::Pending { key } = &st.mode {
            st.floor = st.floor.max(key.arrival);
        }
        st.mode = Mode::Running;
        self.wake_min(&mut inner);
    }

    /// Register `rank` as blocked on a receive with no matching packet
    /// present. Must be called under the mailbox lock that also guards
    /// [`deliver_downgrade`](Self::deliver_downgrade).
    pub(crate) fn block_recv(&self, rank: usize, src: usize, ctx: u32, tag: i32) {
        let mut inner = self.inner.lock();
        inner.ranks[rank].mode = Mode::Recv { src, ctx, tag };
        self.wake_min(&mut inner);
    }

    /// A packet `(src, ctx, tag)` was just delivered to `dst`'s mailbox:
    /// if `dst` is registered as blocked on exactly that match, it is no
    /// longer "waiting on the sender's future" — downgrade to `Running`
    /// before any gate check can observe the stale mode.
    pub(crate) fn deliver_downgrade(&self, dst: usize, src: usize, ctx: u32, tag: i32) {
        let mut inner = self.inner.lock();
        let st = &mut inner.ranks[dst];
        if matches!(&st.mode, Mode::Recv { src: s, ctx: c, tag: t } if *s == src && *c == ctx && *t == tag)
        {
            st.mode = Mode::Running;
            self.wake_min(&mut inner);
        }
    }

    /// Register `rank` as parked in rendezvous `id`. Must be called under
    /// the rendezvous state lock that also guards
    /// [`complete_rdv`](Self::complete_rdv).
    pub(crate) fn block_rdv(&self, rank: usize, id: u64, members: Arc<Vec<usize>>) {
        let mut inner = self.inner.lock();
        inner.ranks[rank].mode = Mode::Rdv { id, members };
        self.wake_min(&mut inner);
    }

    /// The meeting `id` just completed: downgrade every participant still
    /// registered as parked in it (their floors — last raised at their
    /// entry — remain sound lower bounds).
    pub(crate) fn complete_rdv(&self, id: u64, members: &[usize]) {
        let mut inner = self.inner.lock();
        let mut changed = false;
        for &p in members {
            let st = &mut inner.ranks[p];
            if matches!(&st.mode, Mode::Rdv { id: i, .. } if *i == id) {
                st.mode = Mode::Running;
                changed = true;
            }
        }
        if changed {
            self.wake_min(&mut inner);
        }
    }

    /// Clear `rank`'s own blocked registration (wake paths where the
    /// counterpart had no registry, e.g. mixed gated/ungated callers).
    pub(crate) fn unblock(&self, rank: usize) {
        let mut inner = self.inner.lock();
        let st = &mut inner.ranks[rank];
        if !matches!(st.mode, Mode::Running) {
            st.mode = Mode::Running;
            self.wake_min(&mut inner);
        }
    }

    /// The rank's closure returned: it will never request again.
    fn finish(&self, rank: usize) {
        let mut inner = self.inner.lock();
        inner.ranks[rank].mode = Mode::Finished;
        self.wake_min(&mut inner);
    }
}

// ---------------------------------------------------------------------
// Thread-local context: which registry/rank the current thread acts as.
// ---------------------------------------------------------------------

#[derive(Clone)]
pub(crate) struct Ctx {
    registry: Arc<ProgressRegistry>,
    rank: usize,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Detach the thread's progress context (fiber scheduler hook: the
/// context is rank-affine state, parked with the suspended fiber).
pub(crate) fn tl_take() -> Option<Ctx> {
    CTX.with(|c| c.borrow_mut().take())
}

/// Install a previously [taken](tl_take) progress context (fiber
/// scheduler hook, run before resuming the owning fiber).
pub(crate) fn tl_set(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// RAII installation of a rank's progress context; created by
/// [`crate::run_cluster`] around each rank closure. Dropping marks the
/// rank [finished](ProgressRegistry) and clears the thread-local.
pub(crate) struct CtxGuard {
    registry: Arc<ProgressRegistry>,
    rank: usize,
}

pub(crate) fn install(registry: Arc<ProgressRegistry>, rank: usize) -> CtxGuard {
    CTX.with(|c| {
        *c.borrow_mut() = Some(Ctx {
            registry: Arc::clone(&registry),
            rank,
        });
    });
    CtxGuard { registry, rank }
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CTX.with(|c| *c.borrow_mut() = None);
        self.registry.finish(self.rank);
    }
}

fn with_ctx<T>(f: impl FnOnce(&Ctx) -> T) -> Option<T> {
    CTX.with(|c| c.borrow().as_ref().map(f))
}

/// The current thread's global rank, if it runs inside a cluster.
pub fn current_rank() -> Option<usize> {
    with_ctx(|ctx| ctx.rank)
}

/// A held admission; the resource mutation must complete before this is
/// dropped. Outside a cluster context this is an inert no-op.
pub struct Admission(Option<Ctx>);

impl Drop for Admission {
    fn drop(&mut self) {
        if let Some(ctx) = &self.0 {
            ctx.registry.release(ctx.rank);
        }
    }
}

/// Gate a shared-resource mutation whose request arrives at virtual time
/// `arrival`: blocks (host time) until every request with a smaller
/// `(arrival, rank, seq)` key has been admitted and released.
pub fn admit(arrival: SimTime) -> Admission {
    let ctx = with_ctx(Clone::clone);
    if let Some(ctx) = &ctx {
        ctx.registry.acquire(ctx.rank, arrival);
    }
    Admission(ctx)
}

/// Mailbox hook: the current thread's rank blocks on `(src, ctx, tag)`.
pub(crate) fn tl_block_recv(src: usize, ctx: u32, tag: i32) {
    with_ctx(|c| c.registry.block_recv(c.rank, src, ctx, tag));
}

/// Mailbox hook: a packet was delivered to `dst` (called on the sender's
/// thread; both threads share the run's registry).
pub(crate) fn tl_deliver_downgrade(dst: usize, src: usize, ctx: u32, tag: i32) {
    with_ctx(|c| c.registry.deliver_downgrade(dst, src, ctx, tag));
}

/// Rendezvous hook: the current thread's rank parks in meeting `id`.
pub(crate) fn tl_block_rdv(id: u64, members: Arc<Vec<usize>>) {
    with_ctx(|c| c.registry.block_rdv(c.rank, id, members));
}

/// Rendezvous hook: meeting `id` completed (called on the last arrival's
/// thread, under the rendezvous lock, before waiters wake).
pub(crate) fn tl_complete_rdv(id: u64, members: &[usize]) {
    with_ctx(|c| c.registry.complete_rdv(id, members));
}

/// Self-service unblock after waking from a blocked wait.
pub(crate) fn tl_unblock() {
    with_ctx(|c| c.registry.unblock(c.rank));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn registry(n: usize) -> Arc<ProgressRegistry> {
        Arc::new(ProgressRegistry::new(n, Arc::new(PoisonFlag::default())))
    }

    #[test]
    fn no_context_admits_immediately() {
        // Plain threads (unit tests) bypass the gate.
        let _a = admit(SimTime::secs(5.0));
        let _b = admit(SimTime::ZERO);
    }

    #[test]
    fn pending_requests_admit_in_key_order() {
        let reg = registry(3);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [(0usize, 3.0f64), (1, 1.0), (2, 2.0)]
            .into_iter()
            .map(|(rank, t)| {
                let reg = Arc::clone(&reg);
                let order = Arc::clone(&order);
                thread::spawn(move || {
                    let _g = install(Arc::clone(&reg), rank);
                    // Give every rank time to post its request so floors
                    // (from Pending modes) are in place.
                    thread::sleep(Duration::from_millis(20 * rank as u64));
                    let _a = admit(SimTime::secs(t));
                    order.lock().push(rank);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![1, 2, 0]);
    }

    #[test]
    fn equal_arrivals_tie_break_by_rank() {
        let reg = registry(2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = [1usize, 0]
            .into_iter()
            .map(|rank| {
                let reg = Arc::clone(&reg);
                let order = Arc::clone(&order);
                thread::spawn(move || {
                    let _g = install(Arc::clone(&reg), rank);
                    // Rank 1 posts first in host time; rank 0 must still
                    // be admitted first.
                    thread::sleep(Duration::from_millis(if rank == 0 { 30 } else { 0 }));
                    let _a = admit(SimTime::secs(1.0));
                    order.lock().push(rank);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1]);
    }

    #[test]
    fn finished_ranks_do_not_block_admission() {
        let reg = registry(2);
        {
            let _g = install(Arc::clone(&reg), 1);
        } // rank 1 finished immediately
        let h = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let _g = install(Arc::clone(&reg), 0);
                let _a = admit(SimTime::secs(10.0));
            })
        };
        h.join().unwrap(); // must not hang on rank 1's zero floor
    }

    #[test]
    fn rank_blocked_on_requester_recv_is_unconstrained() {
        let reg = registry(2);
        // Rank 1 is blocked receiving from rank 0 (the requester): its
        // wake is causally after rank 0's pending request.
        reg.block_recv(1, 0, 0, 7);
        let h = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let _g = install(Arc::clone(&reg), 0);
                let _a = admit(SimTime::secs(10.0));
            })
        };
        h.join().unwrap();
    }

    #[test]
    fn rdv_chain_through_requester_is_unconstrained() {
        let reg = registry(3);
        // Ranks 1 and 2 are parked in a rendezvous whose membership
        // includes requester 0 — the classic "everyone is in the barrier
        // except the rank doing I/O" steady state.
        let members = Arc::new(vec![0, 1, 2]);
        reg.block_rdv(1, 42, Arc::clone(&members));
        reg.block_rdv(2, 42, Arc::clone(&members));
        let h = {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let _g = install(Arc::clone(&reg), 0);
                let _a = admit(SimTime::secs(3.0));
            })
        };
        h.join().unwrap();
    }

    #[test]
    fn running_rank_with_low_floor_blocks_admission_until_it_moves() {
        let reg = registry(2);
        let admitted = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let h = {
            let reg = Arc::clone(&reg);
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let _g = install(Arc::clone(&reg), 0);
                let _a = admit(SimTime::secs(5.0));
                admitted.store(true, std::sync::atomic::Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert!(
            !admitted.load(std::sync::atomic::Ordering::SeqCst),
            "rank 1 (Running, floor 0) could still produce an earlier request"
        );
        // Rank 1 parks in a rendezvous containing rank 0 — unconstrained.
        reg.block_rdv(1, 7, Arc::new(vec![0, 1]));
        h.join().unwrap();
        assert!(admitted.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn deliver_downgrade_restores_constraint() {
        let reg = registry(3);
        // Rank 1 blocked on recv from rank 2 (not the requester): floor
        // chains to rank 2's floor (0) — admission of rank 0 must wait.
        reg.block_recv(1, 2, 0, 1);
        let admitted = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let h = {
            let reg = Arc::clone(&reg);
            let admitted = Arc::clone(&admitted);
            thread::spawn(move || {
                let _g = install(Arc::clone(&reg), 0);
                let _a = admit(SimTime::secs(1.0));
                admitted.store(true, std::sync::atomic::Ordering::SeqCst);
            })
        };
        thread::sleep(Duration::from_millis(50));
        assert!(!admitted.load(std::sync::atomic::Ordering::SeqCst));
        // The matching packet arrives: rank 1 is Running again (stale
        // floor 0) — still blocking. Rank 1 then finishes; rank 2 parks
        // in a rendezvous with the requester.
        reg.deliver_downgrade(1, 2, 0, 1);
        reg.finish(1);
        reg.block_rdv(2, 9, Arc::new(vec![0, 2]));
        h.join().unwrap();
        assert!(admitted.load(std::sync::atomic::Ordering::SeqCst));
    }

    #[test]
    fn complete_rdv_downgrades_all_parked_members() {
        let reg = registry(4);
        let members = Arc::new(vec![1, 2, 3]);
        reg.block_rdv(1, 5, Arc::clone(&members));
        reg.block_rdv(2, 5, Arc::clone(&members));
        reg.complete_rdv(5, &members);
        let inner = reg.inner.lock();
        assert!(matches!(inner.ranks[1].mode, Mode::Running));
        assert!(matches!(inner.ranks[2].mode, Mode::Running));
        assert!(matches!(inner.ranks[3].mode, Mode::Running));
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poison_unblocks_gate_waiters() {
        let poison = Arc::new(PoisonFlag::default());
        let reg = Arc::new(ProgressRegistry::new(2, Arc::clone(&poison)));
        let p = Arc::clone(&poison);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.poison();
        });
        let _g = install(Arc::clone(&reg), 0);
        // Rank 1 never moves; only the poison releases us.
        let _a = admit(SimTime::secs(1.0));
    }
}
