//! Per-rank handle to the virtual cluster.

use crate::buffer::IoBuffer;
use crate::clock::Clock;
use crate::fault::{FaultState, MsgFault};
use crate::mailbox::{Mailbox, Packet};
use crate::nic::Nic;
use crate::model::{MachineModel, NetworkModel};
use crate::rendezvous::{PoisonFlag, Rendezvous};
use crate::time::SimTime;
use crate::topology::Topology;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Wire timing of one received message: when the sender posted it and
/// when its last byte arrived at the receiver. These two instants define
/// the send→recv happens-before edge in trace analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvInfo {
    /// Sender's virtual clock at the instant the send was posted.
    pub sent: SimTime,
    /// Virtual instant the payload is fully available at the receiver:
    /// `sent + transfer_time(len)`.
    pub arrival: SimTime,
}

/// A rank's handle: identity, virtual clock, raw messaging, and access to
/// the shared cost models. One `Endpoint` is passed to each rank closure by
/// [`crate::run_cluster`]; it is not `Sync` and must stay on its thread.
pub struct Endpoint {
    rank: usize,
    clock: Clock,
    mailboxes: Arc<Vec<Mailbox>>,
    nics: Arc<Vec<Nic>>,
    topology: Arc<Topology>,
    net: Arc<NetworkModel>,
    machine: Arc<MachineModel>,
    poison: Arc<PoisonFlag>,
    world_rdv: Arc<Rendezvous>,
    ctx_counter: Arc<AtomicU32>,
    trace: simtrace::Recorder,
    faults: Option<FaultState>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Endpoint {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: usize,
        mailboxes: Arc<Vec<Mailbox>>,
        nics: Arc<Vec<Nic>>,
        topology: Arc<Topology>,
        net: Arc<NetworkModel>,
        machine: Arc<MachineModel>,
        poison: Arc<PoisonFlag>,
        world_rdv: Arc<Rendezvous>,
        ctx_counter: Arc<AtomicU32>,
        trace: simtrace::Recorder,
        faults: Option<FaultState>,
    ) -> Self {
        Endpoint {
            rank,
            clock: Clock::new(),
            mailboxes,
            nics,
            topology,
            net,
            machine,
            poison,
            world_rdv,
            ctx_counter,
            trace,
            faults,
        }
    }

    /// This rank's global id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total ranks in the cluster.
    pub fn size(&self) -> usize {
        self.mailboxes.len()
    }

    /// The node hosting this rank.
    pub fn node(&self) -> usize {
        self.topology.node_of(self.rank)
    }

    /// Cluster topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Network cost model.
    pub fn net(&self) -> &NetworkModel {
        &self.net
    }

    /// Machine cost model.
    pub fn machine(&self) -> &MachineModel {
        &self.machine
    }

    /// This rank's virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Current virtual time, shorthand for `clock().now()`.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Charge local computation time.
    pub fn compute(&self, dt: SimTime) {
        self.clock.advance(dt);
    }

    /// Charge a local memory copy of `n` bytes.
    pub fn charge_memcpy(&self, n: usize) {
        self.clock.advance(self.machine.memcpy_time(n));
    }

    /// This rank's trace recorder (a no-op unless the cluster was run
    /// with an enabled [`simtrace::TraceSink`]). Higher layers use it to
    /// emit spans, instants, counters and histogram observations on this
    /// rank's timeline.
    pub fn trace(&self) -> &simtrace::Recorder {
        &self.trace
    }

    /// Per-rank fault-injection state, when a `FaultPlan` is installed on
    /// the cluster. Protocol layers consult it for crash detection,
    /// one-shot stalls and the shared plan's retry parameters.
    pub fn faults(&self) -> Option<&FaultState> {
        self.faults.as_ref()
    }

    /// The cluster-wide poison flag (for building further blocking
    /// primitives that must not deadlock on peer failure).
    pub fn poison(&self) -> Arc<PoisonFlag> {
        Arc::clone(&self.poison)
    }

    /// The rendezvous shared by all ranks, used by the MPI layer as the
    /// world communicator's collective meeting point.
    pub fn world_rendezvous(&self) -> Arc<Rendezvous> {
        Arc::clone(&self.world_rdv)
    }

    /// Allocate a fresh communicator context id. Uniqueness is global;
    /// agreement within a group is achieved by allocating inside a
    /// rendezvous combiner (run once per group).
    pub fn alloc_context_id(&self) -> u32 {
        self.ctx_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The shared context-id allocator. Communicator-creating collectives
    /// capture this (it is `Send + Sync`) so the rendezvous combiner —
    /// which runs on whichever rank arrives last — can allocate ids for
    /// the new groups it constructs.
    pub fn ctx_allocator(&self) -> Arc<AtomicU32> {
        Arc::clone(&self.ctx_counter)
    }

    /// Post a message to `dst`. Charges the sender-side overhead and
    /// stamps the packet with the post-charge clock; the payload becomes
    /// visible to the receiver immediately (eager protocol — buffering is
    /// unbounded, as on Catamount where Portals delivers to user space).
    pub fn send(&self, dst: usize, ctx: u32, tag: i32, payload: IoBuffer) {
        assert!(dst < self.size(), "send to invalid rank {dst}");
        self.clock.advance(self.net.send_overhead(payload.len()));
        if self.net.nic_serialize {
            // The NIC is stateful (its queue tail depends on injection
            // order), so admissions are gated into virtual-time order.
            let _admission = crate::progress::admit(self.now());
            let done =
                self.nics[self.node()].inject(self.now(), payload.len(), self.net.byte_time);
            self.clock.advance_to(done);
        }
        let fault = match &self.faults {
            Some(f) => f.draw_msg(self.rank, dst),
            None => MsgFault::NONE,
        };
        let pkt = Packet {
            src: self.rank,
            ctx,
            tag,
            payload,
            sent_clock: self.clock.now(),
            fault_drops: fault.drops,
            fault_delay: fault.delay_factor,
            fault_corrupt: fault.corrupt,
        };
        self.mailboxes[dst].deliver(pkt);
    }

    /// Blocking receive from `src`. Advances this rank's clock to
    /// `max(now, sent + L + n·G) + o` and returns the payload.
    pub fn recv(&self, src: usize, ctx: u32, tag: i32) -> IoBuffer {
        let (payload, info) = self.recv_meta(src, ctx, tag);
        self.clock.advance_to(info.arrival);
        self.clock.advance(self.net.recv_overhead(payload.len()));
        payload
    }

    /// Receive without advancing the clock: returns the payload and the
    /// virtual instant at which the data is available at this rank.
    /// Used to implement `waitall` over multiple posted receives, where
    /// the clock must advance to the *maximum* arrival, not the sum.
    pub fn recv_raw(&self, src: usize, ctx: u32, tag: i32) -> (IoBuffer, SimTime) {
        let (payload, info) = self.recv_meta(src, ctx, tag);
        (payload, info.arrival)
    }

    /// Receive without advancing the clock, returning the full wire
    /// timing ([`RecvInfo`]): when the sender posted the message and when
    /// the last byte lands here. Trace consumers use the pair to emit the
    /// send→recv edge that lets `simtrace::analysis` walk the critical
    /// path across ranks.
    pub fn recv_meta(&self, src: usize, ctx: u32, tag: i32) -> (IoBuffer, RecvInfo) {
        assert!(src < self.size(), "recv from invalid rank {src}");
        let pkt = self.mailboxes[self.rank].recv(src, ctx, tag);
        let arrival = self.fault_arrival(&pkt);
        (
            pkt.payload,
            RecvInfo {
                sent: pkt.sent_clock,
                arrival,
            },
        )
    }

    /// Wire arrival of a packet including any fault injected at send
    /// time: the transfer is scaled by the packet's delay factor, and
    /// each dropped attempt charges one backoff interval plus one
    /// re-transfer ([`crate::FaultPlan::retry_penalty`]). With no fault
    /// (drops 0, factor 1.0) this is bitwise the clean arrival.
    fn fault_arrival(&self, pkt: &Packet) -> SimTime {
        if let Some(f) = &self.faults {
            // One event per packet — zeros included — so the consumer's
            // per-(src, tag) pops stay aligned with arrivals regardless of
            // which packets actually drew a corruption.
            if f.plan().has_corrupt_rules() {
                f.push_corrupt(pkt.src, pkt.tag, pkt.fault_corrupt);
            }
        }
        let wire = self.net.transfer_time(pkt.payload.len()) * pkt.fault_delay;
        let clean = pkt.sent_clock + wire;
        if pkt.fault_drops == 0 {
            return clean;
        }
        let plan = self
            .faults
            .as_ref()
            .expect("faulted packet received without an installed fault plan")
            .plan();
        let _timer = plan.hold_timer();
        let arrival = clean + plan.retry_penalty(pkt.fault_drops, wire);
        if self.trace.enabled() {
            self.trace.span(
                "fault",
                "msg_retry",
                clean.as_micros(),
                arrival.as_micros(),
                vec![
                    ("src", simtrace::ArgValue::from(pkt.src)),
                    ("drops", simtrace::ArgValue::from(pkt.fault_drops as u64)),
                ],
            );
            self.trace.count("msg_fault_drops", pkt.fault_drops as u64);
        }
        arrival
    }

    /// Non-blocking receive attempt; on success behaves like [`recv`].
    ///
    /// [`recv`]: Endpoint::recv
    pub fn try_recv(&self, src: usize, ctx: u32, tag: i32) -> Option<IoBuffer> {
        let pkt = self.mailboxes[self.rank].try_recv(src, ctx, tag)?;
        let arrival = self.fault_arrival(&pkt);
        self.clock.advance_to(arrival);
        self.clock.advance(self.net.recv_overhead(pkt.payload.len()));
        Some(pkt.payload)
    }
}
