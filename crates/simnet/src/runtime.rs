//! Cluster runtime: spawn one thread per rank, join results.

use crate::endpoint::Endpoint;
use crate::fault::{FaultPlan, FaultState};
use crate::mailbox::Mailbox;
use crate::nic::Nic;
use crate::model::{MachineModel, NetworkModel};
use crate::progress::{self, ProgressRegistry};
use crate::rendezvous::{PoisonFlag, Rendezvous};
use crate::topology::{Mapping, Topology};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

/// Process-wide default for [`ClusterConfig::stack_size`], picked up by
/// every constructor (and by harnesses that build configs indirectly,
/// e.g. the `hostperf` bench binary's `--stack-size` flag). Stack pages
/// are committed lazily by the OS, so the default only bounds virtual
/// address space; see the `stack_size` field for the measured footprint.
static DEFAULT_STACK_SIZE: AtomicUsize = AtomicUsize::new(1 << 20);

/// Override the default per-rank stack size for subsequently built
/// [`ClusterConfig`]s. Zero restores the built-in 1 MiB default.
pub fn set_default_stack_size(bytes: usize) {
    let v = if bytes == 0 { 1 << 20 } else { bytes };
    DEFAULT_STACK_SIZE.store(v, Ordering::Relaxed);
}

/// The current default per-rank stack size (see
/// [`set_default_stack_size`]).
pub fn default_stack_size() -> usize {
    DEFAULT_STACK_SIZE.load(Ordering::Relaxed)
}

/// Configuration for [`run_cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Node layout and rank placement.
    pub topology: Topology,
    /// Network cost model.
    pub net: NetworkModel,
    /// Local machine cost model.
    pub machine: MachineModel,
    /// Stack size per rank (OS-thread stack or fiber stack, depending on
    /// the executor). The protocols here iterate rather than recurse, so
    /// ranks are shallow: the quick-scale hostperf suite passes with
    /// 32 KiB fiber stacks (canary-checked — an overflow panics rather
    /// than corrupting) and 64 KiB thread stacks, measured via
    /// `hostperf --stack-size`. The default stays at 1 MiB of *virtual*
    /// reservation: pages are committed on touch, so 1024 ranks cost
    /// 1 GiB of address space but only a few MiB of resident stack, and
    /// the margin matters for fiber stacks, which have no guard page.
    pub stack_size: usize,
    /// Trace sink shared by every rank. Disabled by default: each
    /// recording call returns after one branch, so uninstrumented runs
    /// keep their virtual and host timings.
    pub trace: simtrace::TraceSink,
    /// Fault-injection plan shared by every rank. `None` (the default)
    /// is the unperturbed cluster, bitwise identical to a build without
    /// the fault layer.
    pub faults: Option<Arc<FaultPlan>>,
    /// Worker threads for the fiber executor: `0` (the default) uses the
    /// process default ([`crate::fiber::workers`], i.e. `SIMNET_WORKERS`
    /// or 1). Purely a host-side knob — virtual time and every
    /// deterministic artifact are bitwise identical for any value.
    pub workers: usize,
    /// Rank → worker placement hint for the sharded fiber executor
    /// (length `nranks`, values below the worker count; out-of-range
    /// values clamp). `None` falls back to contiguous rank blocks.
    /// ParColl callers align this to subgroup boundaries so each
    /// subgroup's communication stays worker-local. Placement affects
    /// host performance only, never virtual time.
    pub placement: Option<Arc<Vec<usize>>>,
}

impl ClusterConfig {
    /// A cluster of `n` ranks on dual-core nodes with the given mapping
    /// and the Cray XT-calibrated cost models.
    pub fn cray_xt(n: usize, mapping: Mapping) -> Self {
        ClusterConfig {
            topology: Topology::dual_core(n, mapping),
            net: NetworkModel::cray_xt_seastar(),
            machine: MachineModel::catamount(),
            stack_size: default_stack_size(),
            trace: simtrace::TraceSink::disabled(),
            faults: None,
            workers: 0,
            placement: None,
        }
    }

    /// An idealized, noise-free cluster for unit tests.
    pub fn ideal(n: usize) -> Self {
        ClusterConfig {
            topology: Topology::dual_core(n, Mapping::Block),
            net: NetworkModel::ideal(),
            machine: MachineModel::ideal(),
            stack_size: default_stack_size(),
            trace: simtrace::TraceSink::disabled(),
            faults: None,
            workers: 0,
            placement: None,
        }
    }
}

/// Run `f` once per rank and collect the return values in rank order.
///
/// Ranks execute on the substrate selected by [`crate::fiber::executor`]:
/// cooperative fibers on the calling thread (the default — orders of
/// magnitude cheaper per blocking operation on a loaded or small host),
/// or one OS thread per rank (`SIMNET_EXECUTOR=threads`, non-x86_64
/// hosts, and clusters started from inside another cluster's rank).
/// Virtual-time results are bitwise identical across the two.
///
/// If any rank panics, the cluster is poisoned (unblocking every rank
/// stuck in a receive or collective) and this function re-panics with the
/// original rank's panic payload, so test failures surface rather than
/// deadlock.
///
/// # Examples
///
/// ```
/// use simnet::{run_cluster, ClusterConfig, IoBuffer};
///
/// // Four ranks pass a token around a ring.
/// let out = run_cluster(ClusterConfig::ideal(4), |ep| {
///     let next = (ep.rank() + 1) % ep.size();
///     let prev = (ep.rank() + ep.size() - 1) % ep.size();
///     ep.send(next, 0, 7, IoBuffer::from_slice(&[ep.rank() as u8]));
///     ep.recv(prev, 0, 7).as_slice().unwrap()[0]
/// });
/// assert_eq!(out, vec![3, 0, 1, 2]);
/// ```
pub fn run_cluster<T, F>(cfg: ClusterConfig, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Endpoint) -> T + Send + Sync + 'static,
{
    let n = cfg.topology.nranks();
    let poison = Arc::new(PoisonFlag::default());
    let registry = Arc::new(ProgressRegistry::new(n, Arc::clone(&poison)));
    let mailboxes: Arc<Vec<Mailbox>> = Arc::new(
        (0..n)
            .map(|r| Mailbox::new(r, n, Arc::clone(&poison)))
            .collect(),
    );
    let nics: Arc<Vec<Nic>> =
        Arc::new((0..cfg.topology.nnodes()).map(|_| Nic::new()).collect());
    let topology = Arc::new(cfg.topology);
    let net = Arc::new(cfg.net);
    let machine = Arc::new(cfg.machine);
    let world_rdv = Arc::new(Rendezvous::for_ranks(
        (0..n).collect(),
        Arc::clone(&poison),
    ));
    let ctx_counter = Arc::new(AtomicU32::new(1)); // 0 is reserved for world
    let f = Arc::new(f);

    /// Poisons the cluster if the owning thread unwinds.
    struct PoisonOnPanic(Arc<PoisonFlag>);
    impl Drop for PoisonOnPanic {
        fn drop(&mut self) {
            if thread::panicking() {
                self.0.poison();
            }
        }
    }

    let make_ep = |rank: usize| {
        let trace = cfg.trace.recorder_on_node(
            simtrace::TrackKey::Rank(rank),
            Some(topology.node_of(rank)),
        );
        let faults = cfg
            .faults
            .as_ref()
            .map(|plan| FaultState::new(Arc::clone(plan), n));
        Endpoint::new(
            rank,
            Arc::clone(&mailboxes),
            Arc::clone(&nics),
            Arc::clone(&topology),
            Arc::clone(&net),
            Arc::clone(&machine),
            Arc::clone(&poison),
            Arc::clone(&world_rdv),
            Arc::clone(&ctx_counter),
            trace,
            faults,
        )
    };

    // A cluster started from inside another cluster's rank (fiber) must
    // not nest a second scheduler on the same stack — fall back to
    // threads for the inner run.
    if crate::fiber::executor() == crate::fiber::Executor::Fibers && !crate::fiber::in_fiber() {
        let workers = if cfg.workers == 0 {
            crate::fiber::workers()
        } else {
            cfg.workers
        }
        .clamp(1, n.max(1));
        if workers > 1 {
            // Sharded fiber executor: partition ranks across worker
            // threads (by the placement hint, aligned to ParColl
            // subgroups when the caller provides one) and run one
            // scheduler per worker. Virtual time is identical to the
            // single-worker path — determinism never depended on the
            // interleaving — so this changes host wall-clock only.
            let placement: Vec<usize> = match cfg.placement.as_deref() {
                Some(p) if p.len() == n => {
                    p.iter().map(|&w| w.min(workers - 1)).collect()
                }
                _ => (0..n).map(|r| r * workers / n).collect(),
            };
            let slots: Vec<parking_lot::Mutex<Option<T>>> =
                (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
                .iter()
                .enumerate()
                .map(|(rank, slot)| {
                    let ep = make_ep(rank);
                    let f = Arc::clone(&f);
                    let guard_flag = Arc::clone(&poison);
                    let registry = Arc::clone(&registry);
                    Box::new(move || {
                        let _guard = PoisonOnPanic(guard_flag);
                        // See the single-worker path below for the
                        // context's role.
                        let _ctx = progress::install(registry, rank);
                        *slot.lock() = Some(f(ep));
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            let stall_flag = Arc::clone(&poison);
            let stall_plan = cfg.faults.clone();
            let panics = crate::fiber::run_fibers_sharded(
                tasks,
                &placement,
                workers,
                cfg.stack_size,
                move || {
                    if stall_plan.as_ref().is_some_and(|p| p.outstanding() > 0) {
                        return false;
                    }
                    stall_flag.poison();
                    true
                },
            );
            if let Some(payload) = pick_primary(panics.into_iter().flatten()) {
                std::panic::resume_unwind(payload);
            }
            return slots
                .into_iter()
                .map(|s| {
                    s.into_inner()
                        .expect("every fiber completed without panicking")
                })
                .collect();
        }
        let slots: Vec<std::cell::RefCell<Option<T>>> =
            (0..n).map(|_| std::cell::RefCell::new(None)).collect();
        let tasks: Vec<Box<dyn FnOnce() + '_>> = slots
            .iter()
            .enumerate()
            .map(|(rank, slot)| {
                let ep = make_ep(rank);
                let f = Arc::clone(&f);
                let guard_flag = Arc::clone(&poison);
                let registry = Arc::clone(&registry);
                Box::new(move || {
                    let _guard = PoisonOnPanic(guard_flag);
                    // Progress context: lets shared resources (OSTs, the
                    // NIC) admit this rank's requests in virtual-time
                    // order. Dropped (rank -> Finished) after `f`, even
                    // on panic, so gate waiters never deadlock on us.
                    let _ctx = progress::install(registry, rank);
                    *slot.borrow_mut() = Some(f(ep));
                }) as Box<dyn FnOnce() + '_>
            })
            .collect();
        // A genuine deadlock (every fiber yielding, nothing moving) is
        // resolved like a rank panic: poison the cluster so the blocked
        // fibers panic out of their waits and report. A rank held back by
        // an in-flight fault timer (injected delay, failover detection)
        // is *not* a deadlock — defer while any timer is outstanding.
        let stall_flag = Arc::clone(&poison);
        let stall_plan = cfg.faults.clone();
        let panics = crate::fiber::run_fibers(tasks, cfg.stack_size, move || {
            if stall_plan.as_ref().is_some_and(|p| p.outstanding() > 0) {
                return false;
            }
            stall_flag.poison();
            true
        });
        if let Some(payload) = pick_primary(panics.into_iter().flatten()) {
            std::panic::resume_unwind(payload);
        }
        return slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("every fiber completed without panicking")
            })
            .collect();
    }

    let handles: Vec<_> = (0..n)
        .map(|rank| {
            let ep = make_ep(rank);
            let f = Arc::clone(&f);
            let guard_flag = Arc::clone(&poison);
            let registry = Arc::clone(&registry);
            thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn(move || {
                    let _guard = PoisonOnPanic(guard_flag);
                    // See the fiber path above for the context's role.
                    let _ctx = progress::install(registry, rank);
                    f(ep)
                })
                .expect("failed to spawn rank thread")
        })
        .collect();

    let mut results = Vec::with_capacity(n);
    let mut panics = Vec::new();
    for h in handles {
        match h.join() {
            Ok(v) => results.push(v),
            Err(payload) => panics.push(payload),
        }
    }
    if let Some(payload) = pick_primary(panics) {
        std::panic::resume_unwind(payload);
    }
    results
}

/// Pick the panic to re-throw from a cluster run: prefer the originating
/// panic over secondary "cluster poisoned" panics raised by ranks that
/// were unblocked by the poison flag.
fn pick_primary(
    panics: impl IntoIterator<Item = Box<dyn std::any::Any + Send>>,
) -> Option<Box<dyn std::any::Any + Send>> {
    fn is_echo(p: &(dyn std::any::Any + Send)) -> bool {
        p.downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| p.downcast_ref::<&str>().copied())
            .is_some_and(|s| s.contains("cluster poisoned"))
    }
    let mut first: Option<Box<dyn std::any::Any + Send>> = None;
    for payload in panics {
        let replace = match &first {
            None => true,
            Some(prev) => is_echo(prev.as_ref()) && !is_echo(payload.as_ref()),
        };
        if replace {
            first = Some(payload);
        }
    }
    first
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::IoBuffer;
    use crate::time::SimTime;

    #[test]
    fn ranks_get_distinct_ids_in_order() {
        let out = run_cluster(ClusterConfig::ideal(8), |ep| ep.rank());
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn ring_pass_delivers_and_times_correctly() {
        // Rank r sends r to r+1; everyone receives and checks the value.
        let out = run_cluster(ClusterConfig::ideal(4), |ep| {
            let n = ep.size();
            let next = (ep.rank() + 1) % n;
            let prev = (ep.rank() + n - 1) % n;
            ep.send(next, 0, 1, IoBuffer::from_slice(&[ep.rank() as u8]));
            let got = ep.recv(prev, 0, 1);
            (got.as_slice().unwrap()[0] as usize, ep.now())
        });
        for (r, (val, t)) in out.iter().enumerate() {
            assert_eq!(*val, (r + 4 - 1) % 4);
            // Ideal net: 1us latency; clock must have advanced at least that.
            assert!(t.as_micros() >= 1.0, "rank {r} clock {t}");
        }
    }

    #[test]
    fn virtual_times_are_deterministic_across_runs() {
        let run = || {
            run_cluster(ClusterConfig::cray_xt(16, Mapping::Block), |ep| {
                // Everyone sends to rank 0 with distinct tags; rank 0 drains.
                if ep.rank() == 0 {
                    for src in 1..ep.size() {
                        let _ = ep.recv(src, 0, src as i32);
                    }
                } else {
                    ep.send(0, 0, ep.rank() as i32, IoBuffer::synthetic(1 << 16));
                }
                ep.now().as_secs()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "virtual time must not depend on host scheduling");
    }

    #[test]
    fn fibers_and_threads_agree_on_virtual_time() {
        // The executor is a host-side substrate choice; virtual
        // timestamps must be bitwise identical across it. Exercises
        // sends, receives and a collective under contention.
        let workload = |ep: crate::endpoint::Endpoint| {
            let n = ep.size();
            let next = (ep.rank() + 1) % n;
            let prev = (ep.rank() + n - 1) % n;
            ep.send(next, 0, 1, IoBuffer::synthetic(1 << 14));
            let _ = ep.recv(prev, 0, 1);
            let rdv = ep.world_rendezvous();
            let (_, done) = rdv.meet(ep.rank(), ep.now(), (), |_, max| ((), max));
            ep.clock().advance_to(done);
            ep.now().as_secs()
        };
        let run = |e: crate::fiber::Executor| {
            crate::fiber::set_executor(e);
            run_cluster(ClusterConfig::cray_xt(12, Mapping::Cyclic), workload)
        };
        let before = crate::fiber::executor();
        let fibers = run(crate::fiber::Executor::Fibers);
        let threads = run(crate::fiber::Executor::Threads);
        crate::fiber::set_executor(before);
        assert_eq!(fibers, threads, "executor choice leaked into virtual time");
    }

    #[test]
    fn sharded_and_single_agree_on_virtual_time() {
        // The sharded fiber executor is a host-side substrate choice
        // exactly like fibers-vs-threads: virtual timestamps must be
        // bitwise identical for every worker count and placement,
        // including workers exceeding the rank count and a placement
        // hint that splits communicating ranks across workers.
        let workload = |ep: crate::endpoint::Endpoint| {
            let n = ep.size();
            let next = (ep.rank() + 1) % n;
            let prev = (ep.rank() + n - 1) % n;
            ep.send(next, 0, 1, IoBuffer::synthetic(1 << 14));
            let _ = ep.recv(prev, 0, 1);
            let rdv = ep.world_rendezvous();
            let (_, done) = rdv.meet(ep.rank(), ep.now(), (), |_, max| ((), max));
            ep.clock().advance_to(done);
            ep.now().as_secs()
        };
        let run = |e: crate::fiber::Executor, workers: usize, placement: Option<Vec<usize>>| {
            crate::fiber::set_executor(e);
            let mut cfg = ClusterConfig::cray_xt(12, Mapping::Cyclic);
            cfg.workers = workers;
            cfg.placement = placement.map(Arc::new);
            run_cluster(cfg, workload)
        };
        let before = crate::fiber::executor();
        let single = run(crate::fiber::Executor::Fibers, 1, None);
        let threads = run(crate::fiber::Executor::Threads, 1, None);
        for w in [2, 4, 8, 16] {
            let sharded = run(crate::fiber::Executor::Fibers, w, None);
            assert_eq!(sharded, single, "workers={w} changed virtual time");
        }
        let scattered = run(
            crate::fiber::Executor::Fibers,
            4,
            Some((0..12).map(|r| r % 4).collect()),
        );
        crate::fiber::set_executor(before);
        assert_eq!(scattered, single, "placement hint changed virtual time");
        assert_eq!(threads, single, "thread fallback changed virtual time");
    }

    #[test]
    fn world_rendezvous_spans_all_ranks() {
        let out = run_cluster(ClusterConfig::ideal(6), |ep| {
            let rdv = ep.world_rendezvous();
            let (sum, done) = rdv.meet(ep.rank(), ep.now(), ep.rank() as u64, |ins, max| {
                (ins.iter().sum::<u64>(), max + SimTime::micros(5.0))
            });
            ep.clock().advance_to(done);
            *sum
        });
        assert!(out.iter().all(|&s| s == 15));
    }

    #[test]
    fn context_ids_are_unique() {
        let out = run_cluster(ClusterConfig::ideal(4), |ep| ep.alloc_context_id());
        let mut ids = out.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "duplicate context ids: {out:?}");
        assert!(ids.iter().all(|&i| i >= 1));
    }

    #[test]
    #[should_panic(expected = "rank 2 exploded")]
    fn rank_panic_propagates_instead_of_deadlocking() {
        run_cluster(ClusterConfig::ideal(4), |ep| {
            if ep.rank() == 2 {
                panic!("rank 2 exploded");
            }
            // Other ranks block on a message that will never come.
            let _ = ep.recv((ep.rank() + 1) % 4, 0, 99);
        });
    }

    #[test]
    fn large_cluster_spawns() {
        // Smoke test that 512 threads with 1MiB stacks are fine.
        let out = run_cluster(ClusterConfig::ideal(512), |ep| {
            let rdv = ep.world_rendezvous();
            let (_, done) = rdv.meet(ep.rank(), ep.now(), (), |_, max| ((), max));
            ep.clock().advance_to(done);
            ep.rank()
        });
        assert_eq!(out.len(), 512);
    }

    #[test]
    fn nic_serialization_slows_colocated_senders() {
        // Two ranks on one node each send 1 MB to ranks on another node;
        // with the shared NIC their injections serialize.
        let elapsed = |nic: bool| {
            let mut cfg = ClusterConfig::ideal(4); // block: node0={0,1}
            cfg.net.nic_serialize = nic;
            let out = run_cluster(cfg, |ep| {
                if ep.rank() < 2 {
                    ep.send(ep.rank() + 2, 0, 1, IoBuffer::synthetic(1 << 20));
                } else {
                    let _ = ep.recv(ep.rank() - 2, 0, 1);
                }
                ep.now().as_secs()
            });
            out[2].max(out[3])
        };
        let shared_nothing = elapsed(false);
        let shared_nic = elapsed(true);
        assert!(
            shared_nic > shared_nothing + 0.8e-3,
            "shared NIC must add ~1ms of serialization: {shared_nothing} vs {shared_nic}"
        );
    }

    #[test]
    fn try_recv_returns_none_then_some() {
        run_cluster(ClusterConfig::ideal(2), |ep| {
            if ep.rank() == 0 {
                // Nothing sent yet with tag 7 from rank 1 -> None (racy in
                // wall time, so only assert the Some case after a blocking
                // recv of a fence message).
                ep.send(1, 0, 1, IoBuffer::empty());
                let _ = ep.recv(1, 0, 2); // fence: rank 1 has sent tag 7
                assert!(ep.try_recv(1, 0, 7).is_some());
            } else {
                let _ = ep.recv(0, 0, 1);
                ep.send(0, 0, 7, IoBuffer::from_slice(&[1]));
                ep.send(0, 0, 2, IoBuffer::empty());
            }
        });
    }
}
