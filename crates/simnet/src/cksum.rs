//! Checksums for end-to-end data integrity.
//!
//! Both the MPI-IO exchange layer (piece trailers) and the file-system
//! layer (at-rest page sums) tag data with the same cheap checksum, so a
//! byte corrupted anywhere between a sender's pack buffer and an OST's
//! platter is caught at the next verification point.
//!
//! The hash is a **lane-parallel FNV-1a 64 variant**: bytes are dealt
//! round-robin across 8 independent FNV-1a lanes (by absolute stream
//! position), and the digest folds the lane states plus the total length
//! through one more FNV pass. Plain FNV-1a is a single sequential
//! dependency chain — one multiply *latency* per byte; eight lanes turn
//! that into one multiply *throughput* per byte, which is what keeps
//! checksums-on runs within their wall-clock budget. Detection quality
//! for the threat model is unchanged: any single byte flip changes its
//! lane, and the length fold separates prefixes. Not cryptographic —
//! the threat is random bit rot, not an adversary (Byzantine
//! aggregators are an explicit non-goal, DESIGN.md §14).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100000001b3;

/// Number of independent FNV lanes bytes are dealt across.
const LANES: usize = 8;

/// Streaming hasher: feed byte slices, read the digest at any point.
/// Chunk boundaries never matter — lane assignment follows the absolute
/// byte position, so a split feed digests identically to one shot.
///
/// # Examples
///
/// ```
/// use simnet::cksum::{fnv1a, Fnv1a};
///
/// let mut h = Fnv1a::new();
/// h.update(b"par");
/// h.update(b"coll");
/// assert_eq!(h.digest(), fnv1a(b"parcoll"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    lanes: [u64; LANES],
    len: u64,
}

impl Fnv1a {
    /// Fresh hasher: every lane at the offset basis.
    pub fn new() -> Self {
        Fnv1a {
            lanes: [FNV_OFFSET; LANES],
            len: 0,
        }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut lane = (self.len % LANES as u64) as usize;
        self.len += bytes.len() as u64;
        let mut i = 0;
        // Head: finish the in-flight lane rotation so the body below can
        // start at lane 0.
        while lane != 0 && i < bytes.len() {
            self.lanes[lane] = (self.lanes[lane] ^ bytes[i] as u64).wrapping_mul(FNV_PRIME);
            lane = (lane + 1) % LANES;
            i += 1;
        }
        // Body: eight independent dependency chains per iteration.
        let mut chunks = bytes[i..].chunks_exact(LANES);
        for c in &mut chunks {
            for (lane, &b) in self.lanes.iter_mut().zip(c) {
                *lane = (*lane ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        for (j, &b) in chunks.remainder().iter().enumerate() {
            self.lanes[j] = (self.lanes[j] ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest over everything absorbed so far: the lane states and
    /// the stream length folded through one more FNV-1a pass.
    pub fn digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for lane in self.lanes {
            for b in lane.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
            }
        }
        for b in self.len.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot digest of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.digest()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_digests() {
        // Wire-format stability: trailers and stored page sums embed
        // these values, so the function must never drift silently.
        assert_eq!(fnv1a(b""), 0x34bd1525c4982fc5);
        assert_eq!(fnv1a(b"a"), 0xbc316533c7e0b4f0);
        assert_eq!(fnv1a(b"foobar"), 0x94d5b89b77e52215);
        assert_eq!(fnv1a(&[0u8; 4096]), 0x5c89059c6a108255);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for chunk_len in [1, 3, 7, 8, 64, 1000] {
            let mut h = Fnv1a::new();
            for chunk in data.chunks(chunk_len) {
                h.update(chunk);
            }
            assert_eq!(h.digest(), fnv1a(&data), "chunk size {chunk_len}");
        }
    }

    #[test]
    fn single_byte_flip_changes_digest() {
        let data = vec![0u8; 4096];
        let base = fnv1a(&data);
        for pos in [0usize, 1, 100, 4095] {
            let mut flipped = data.clone();
            flipped[pos] ^= 0x40;
            assert_ne!(fnv1a(&flipped), base, "flip at {pos} must be visible");
        }
    }

    #[test]
    fn length_is_folded_in() {
        // Zero-padding changes the digest even though every lane sees
        // only zeros either way.
        assert_ne!(fnv1a(&[0u8; 8]), fnv1a(&[0u8; 16]));
        assert_ne!(fnv1a(b""), fnv1a(&[0u8; 8]));
    }
}
