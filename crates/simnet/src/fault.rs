//! Deterministic, virtual-time fault injection.
//!
//! The simulator's baseline models only the happy path: every message is
//! delivered, every OST completes, every aggregator survives. This module
//! adds a **seeded fault plan** that perturbs those events *in virtual
//! time* so the protocol stack's degraded modes (bounded retry, aggregator
//! failover, file-area merging) can be exercised — reproducibly.
//!
//! # Example: building and installing a plan
//!
//! A [`FaultPlan`] is a seed plus declarative rules, built once and
//! shared immutably. Install it on the cluster via
//! [`crate::ClusterConfig`]`::faults` and on the store via
//! `FileSystem::install_faults` (simfs); here we only build one and
//! probe its pure decision functions:
//!
//! ```
//! use simnet::{FaultPlan, SimTime};
//!
//! // OSTs serve 4x slower for the first 2 virtual ms; 1% of messages
//! // from rank 7 are tombstone-dropped (receiver pays the retry);
//! // rank 3 stalls 50 µs at its next exchange phase; rank 0's
//! // aggregator dies at collective-write round 2.
//! let plan = FaultPlan::new(42)
//!     .ost_slow(None, 4.0, SimTime::ZERO, SimTime::millis(2.0))
//!     .msg_drop(0.01, Some(7), None)
//!     .rank_stall(3, "exchange", SimTime::micros(50.0))
//!     .aggregator_crash(0, 2);
//!
//! assert_eq!(plan.rules().len(), 4);
//! assert!(plan.has_crash_rules());
//! assert_eq!(plan.agg_crash(0), Some(2));
//! assert_eq!(plan.ost_slow_factor(5, SimTime::micros(10.0)), 4.0);
//!
//! // Decisions are pure functions of (seed, rule index, src, dst,
//! // sequence): a plan built the same way draws identical faults,
//! // which is what makes a faulted run bitwise reproducible.
//! let twin = FaultPlan::new(42)
//!     .ost_slow(None, 4.0, SimTime::ZERO, SimTime::millis(2.0))
//!     .msg_drop(0.01, Some(7), None)
//!     .rank_stall(3, "exchange", SimTime::micros(50.0))
//!     .aggregator_crash(0, 2);
//! for seq in 0..32 {
//!     assert_eq!(plan.msg_fault(7, 1, seq).drops, twin.msg_fault(7, 1, seq).drops);
//! }
//! ```
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(plan seed, rule index,
//! src, dst, per-destination send sequence)` or of deterministic virtual
//! state (OST op counters advanced under the [`crate::progress`] admission
//! gate, collective round counters). No host-time blocking is ever
//! introduced: a "dropped" message is modeled as a tombstone on the packet
//! — the payload still travels, and the *receiver* charges the retry
//! penalty (timeout backoff plus re-transfer) to its virtual arrival.
//! Two runs with the same plan are therefore bitwise identical in trace
//! output, and a run with no plan installed is bitwise identical to a
//! build without this module.
//!
//! # Stall-detector integration
//!
//! The fiber executor's deadlock detector poisons the cluster when no
//! unblocking event happens for many scheduler cycles. Fault handling that
//! legitimately holds ranks back registers an *outstanding fault timer*
//! ([`FaultPlan::hold_timer`]); the detector defers poisoning while any
//! timer is outstanding, so an injected delay is never misdiagnosed as a
//! deadlock.

use crate::noise::SplitMix64;
use crate::time::SimTime;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// One declarative fault rule of a [`FaultPlan`].
#[derive(Debug, Clone)]
pub enum FaultRule {
    /// The OST (or every OST when `ost` is `None`) serves `factor`× slower
    /// for requests arriving in the virtual window `[from, until)`.
    OstSlow {
        /// Target OST index, or `None` for all targets.
        ost: Option<usize>,
        /// Service-time multiplier (> 1 slows the target down).
        factor: f64,
        /// Window start (virtual arrival time).
        from: SimTime,
        /// Window end, exclusive.
        until: SimTime,
    },
    /// The OST transiently fails every request in its op-counter window
    /// `[ops, ops + fail_ops)`; each failed attempt costs one backoff
    /// interval and burns one op slot, so the window drains under retry.
    OstFailAfter {
        /// Target OST index.
        ost: usize,
        /// First failing operation (the OST's cumulative request count).
        ops: u64,
        /// Number of consecutive failing operations.
        fail_ops: u64,
    },
    /// Each message matching the src→dst filter is independently dropped
    /// with probability `prob` per transmission attempt (so a message may
    /// be dropped several times before a retry lands; attempts are capped
    /// at [`FaultPlan::max_retries`] — permanent loss is not modeled).
    MsgDrop {
        /// Per-attempt drop probability in `[0, 1)`.
        prob: f64,
        /// Only messages from this rank, or any sender when `None`.
        src: Option<usize>,
        /// Only messages to this rank, or any receiver when `None`.
        dst: Option<usize>,
    },
    /// With probability `prob` a message's wire transfer is inflated by a
    /// seeded multiplicative jitter of coefficient-of-variation `cv`
    /// (clamped to ≥ 1 — jitter only ever delays).
    MsgDelayJitter {
        /// Jitter coefficient of variation.
        cv: f64,
        /// Probability a given message is jittered.
        prob: f64,
    },
    /// The rank's virtual clock jumps forward by `duration` the first time
    /// it enters the named collective phase — a one-shot straggler.
    RankStall {
        /// Global rank to stall.
        rank: usize,
        /// Phase hook name (`"write_all"` or `"read_all"`).
        at_phase: String,
        /// Stall length in virtual time.
        duration: SimTime,
    },
    /// The rank's *I/O role* dies at the start of collective write round
    /// `at_round` (a cumulative per-rank round counter): it stops
    /// aggregating and writing, but survives as a data sender. The
    /// surviving subgroup adopts its file domain (aggregator failover).
    AggregatorCrash {
        /// Global rank whose aggregator role crashes.
        rank: usize,
        /// Cumulative write-round index at which it dies.
        at_round: u64,
    },
    /// Each message matching the src→dst filter independently suffers a
    /// silent single-byte flip with probability `prob`. The flip is a
    /// seeded XOR applied to the *payload* only — protocol headers ride a
    /// protected control channel (link-level CRC in real SeaStar hardware)
    /// and are immune by model. Without end-to-end checksums the corrupted
    /// bytes flow into the file undetected; with checksums on, the
    /// receiver detects the mismatch and runs the bounded repair protocol.
    MsgCorrupt {
        /// Per-message corruption probability in `[0, 1)`.
        prob: f64,
        /// Only messages from this rank, or any sender when `None`.
        src: Option<usize>,
        /// Only messages to this rank, or any receiver when `None`.
        dst: Option<usize>,
    },
    /// The at-rest file extent `[offset, offset + len)` silently rots: a
    /// seeded byte inside it is flipped on the OST platter *after* it was
    /// durably written. Materialized lazily by `simfs` the first time the
    /// extent is read (or scrubbed) — a write that lands later than the
    /// read supersedes the rot, matching media decay of cold data.
    OstRot {
        /// First rotten byte (file offset).
        offset: u64,
        /// Extent length in bytes (the flipped byte is seeded within it).
        len: u64,
    },
    /// Like [`FaultRule::AggregatorCrash`], but the dying aggregator's
    /// final OST write in round `at_round - 1` is *torn*: a prefix of the
    /// round's window lands on the platter, the tail does not. Recovery
    /// must therefore replay the torn round, not merely resume past it.
    TornWrite {
        /// Global rank whose aggregator role crashes mid-write.
        rank: usize,
        /// Cumulative write-round index at which it dies (the write torn
        /// is the one in round `at_round - 1`, its last served round).
        at_round: u64,
    },
}

/// Apply (or undo — XOR is self-inverse) the seeded single-byte flip a
/// nonzero corruption token denotes. Token 0 means "clean" and is a no-op,
/// as is an empty buffer.
pub fn corrupt_flip(bytes: &mut [u8], token: u64) {
    if token == 0 || bytes.is_empty() {
        return;
    }
    let pos = ((token >> 8) % bytes.len() as u64) as usize;
    bytes[pos] ^= (token & 0xff) as u8;
}

/// What the fault plan decided for one message transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsgFault {
    /// Dropped attempts before the delivery that sticks (0 = clean).
    pub drops: u32,
    /// Multiplier on the wire transfer time (≥ 1.0).
    pub delay_factor: f64,
    /// Nonzero when the payload suffers a silent single-byte flip; the
    /// token seeds [`corrupt_flip`] (position and XOR mask). 0 = clean.
    pub corrupt: u64,
}

impl MsgFault {
    /// A clean, unperturbed transmission.
    pub const NONE: MsgFault = MsgFault {
        drops: 0,
        delay_factor: 1.0,
        corrupt: 0,
    };
}

/// A seeded, declarative fault-injection plan, installed cluster-wide via
/// `ClusterConfig::faults` (and on the file system via
/// `FileSystem::install_faults`). Immutable once built; all mutable
/// per-rank bookkeeping lives in [`FaultState`].
///
/// # Examples
///
/// ```
/// use simnet::{FaultPlan, SimTime};
///
/// let plan = FaultPlan::new(42)
///     .msg_drop(0.05, None, None)
///     .ost_slow(Some(3), 8.0, SimTime::ZERO, SimTime::secs(1.0))
///     .aggregator_crash(2, 1);
/// assert!(plan.has_crash_rules());
/// // Same (src, dst, seq) always draws the same fault.
/// assert_eq!(plan.msg_fault(0, 1, 7), plan.msg_fault(0, 1, 7));
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    /// Bounded-retry limit for transient faults (message drops, OST
    /// failures). Exhausting it on an OST fail window is a hard error.
    pub max_retries: u32,
    /// Base retry timeout; attempt `i` backs off `retry_timeout · 2^i`.
    pub retry_timeout: SimTime,
    /// Virtual time charged when a crashed aggregator is detected (the
    /// round's size exchange timing out on the dead rank).
    pub detect_timeout: SimTime,
    /// Live count of in-flight fault timers (see
    /// [`hold_timer`](FaultPlan::hold_timer)).
    outstanding: AtomicU32,
}

/// SplitMix64 finalizer, used to hash fault-stream coordinates into seeds.
fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Seed for the per-(rule, src, dst, seq) fault stream: order-independent
/// of host scheduling because every coordinate is a protocol-level value.
fn stream_seed(seed: u64, kind: u64, rule: u64, src: u64, dst: u64, seq: u64) -> u64 {
    mix64(mix64(mix64(mix64(mix64(seed ^ kind) ^ rule) ^ src) ^ dst) ^ seq)
}

impl FaultPlan {
    /// An empty plan with the given RNG seed and default retry parameters.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
            max_retries: 6,
            retry_timeout: SimTime::millis(2.0),
            detect_timeout: SimTime::millis(20.0),
            outstanding: AtomicU32::new(0),
        }
    }

    /// Add an [`FaultRule::OstSlow`] rule.
    pub fn ost_slow(mut self, ost: Option<usize>, factor: f64, from: SimTime, until: SimTime) -> Self {
        self.rules.push(FaultRule::OstSlow { ost, factor, from, until });
        self
    }

    /// Add an [`FaultRule::OstFailAfter`] rule.
    pub fn ost_fail_after(mut self, ost: usize, ops: u64, fail_ops: u64) -> Self {
        self.rules.push(FaultRule::OstFailAfter { ost, ops, fail_ops });
        self
    }

    /// Add a [`FaultRule::MsgDrop`] rule.
    pub fn msg_drop(mut self, prob: f64, src: Option<usize>, dst: Option<usize>) -> Self {
        self.rules.push(FaultRule::MsgDrop { prob, src, dst });
        self
    }

    /// Add a [`FaultRule::MsgDelayJitter`] rule.
    pub fn msg_delay_jitter(mut self, cv: f64, prob: f64) -> Self {
        self.rules.push(FaultRule::MsgDelayJitter { cv, prob });
        self
    }

    /// Add a [`FaultRule::RankStall`] rule.
    pub fn rank_stall(mut self, rank: usize, at_phase: &str, duration: SimTime) -> Self {
        self.rules.push(FaultRule::RankStall {
            rank,
            at_phase: at_phase.to_string(),
            duration,
        });
        self
    }

    /// Add an [`FaultRule::AggregatorCrash`] rule.
    pub fn aggregator_crash(mut self, rank: usize, at_round: u64) -> Self {
        self.rules.push(FaultRule::AggregatorCrash { rank, at_round });
        self
    }

    /// Add a [`FaultRule::MsgCorrupt`] rule.
    pub fn msg_corrupt(mut self, prob: f64, src: Option<usize>, dst: Option<usize>) -> Self {
        self.rules.push(FaultRule::MsgCorrupt { prob, src, dst });
        self
    }

    /// Add an [`FaultRule::OstRot`] rule.
    pub fn ost_rot(mut self, offset: u64, len: u64) -> Self {
        assert!(len > 0, "a rot extent must span at least one byte");
        self.rules.push(FaultRule::OstRot { offset, len });
        self
    }

    /// Add a [`FaultRule::TornWrite`] rule.
    pub fn torn_write(mut self, rank: usize, at_round: u64) -> Self {
        self.rules.push(FaultRule::TornWrite { rank, at_round });
        self
    }

    /// The rules in force.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True when any [`FaultRule::AggregatorCrash`] or
    /// [`FaultRule::TornWrite`] rule exists — the gate for the
    /// (communicating) dead-set agreement in ParColl. Plans without crash
    /// rules keep the zero-communication steady state.
    pub fn has_crash_rules(&self) -> bool {
        self.rules.iter().any(|r| {
            matches!(
                r,
                FaultRule::AggregatorCrash { .. } | FaultRule::TornWrite { .. }
            )
        })
    }

    /// True when any [`FaultRule::MsgCorrupt`] rule exists — the gate for
    /// per-packet corruption-event bookkeeping on the receive path.
    pub fn has_corrupt_rules(&self) -> bool {
        self.rules
            .iter()
            .any(|r| matches!(r, FaultRule::MsgCorrupt { .. }))
    }

    /// The earliest configured crash round for `rank`, if any (torn-write
    /// crashes included: a torn write *is* an aggregator crash whose final
    /// round landed partially).
    pub fn agg_crash(&self, rank: usize) -> Option<u64> {
        self.rules
            .iter()
            .filter_map(|r| match r {
                FaultRule::AggregatorCrash { rank: x, at_round } if *x == rank => Some(*at_round),
                FaultRule::TornWrite { rank: x, at_round } if *x == rank => Some(*at_round),
                _ => None,
            })
            .min()
    }

    /// True when `rank`'s earliest crash is a torn write: its final round
    /// (`agg_crash(rank) - 1`) left a partial window on the OSTs.
    pub fn torn_crash(&self, rank: usize) -> bool {
        let Some(k) = self.agg_crash(rank) else {
            return false;
        };
        self.rules.iter().any(|r| {
            matches!(r, FaultRule::TornWrite { rank: x, at_round } if *x == rank && *at_round == k)
        })
    }

    /// Every [`FaultRule::OstRot`] extent as `(rule index, offset, len)`,
    /// in rule order. The rule index keys the seeded flip draw.
    pub fn ost_rot_regions(&self) -> Vec<(usize, u64, u64)> {
        self.rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                FaultRule::OstRot { offset, len } => Some((i, *offset, *len)),
                _ => None,
            })
            .collect()
    }

    /// The seeded flip a rot rule plants: `(absolute byte offset, XOR
    /// mask)`, pure in the plan seed and rule index. `None` when `rule`
    /// is not an [`FaultRule::OstRot`].
    pub fn rot_flip(&self, rule: usize) -> Option<(u64, u8)> {
        match self.rules.get(rule) {
            Some(FaultRule::OstRot { offset, len }) => {
                let mut rng = SplitMix64::new(stream_seed(self.seed, 5, rule as u64, 0, 0, 0));
                let token = rng.next_u64() | 1;
                let byte = offset + (token >> 8) % len;
                Some((byte, (token & 0xff) as u8))
            }
            _ => None,
        }
    }

    /// Service-time multiplier for a request arriving at `at` on `ost`
    /// (product of all matching slow windows; 1.0 = unperturbed).
    pub fn ost_slow_factor(&self, ost: usize, at: SimTime) -> f64 {
        let mut f = 1.0;
        for rule in &self.rules {
            if let FaultRule::OstSlow { ost: o, factor, from, until } = rule {
                if o.is_none_or(|x| x == ost) && at >= *from && at < *until {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Number of consecutive transient failures a request starting at op
    /// counter `op` on `ost` suffers before an attempt lands past every
    /// matching fail window (0 = clean).
    pub fn ost_failures(&self, ost: usize, op: u64) -> u64 {
        let mut fails = 0u64;
        for rule in &self.rules {
            if let FaultRule::OstFailAfter { ost: o, ops, fail_ops } = rule {
                if *o == ost && (*ops..ops + fail_ops).contains(&op) {
                    fails = fails.max(ops + fail_ops - op);
                }
            }
        }
        fails
    }

    /// The fault decision for the `seq`-th message from `src` to `dst`:
    /// pure in its arguments, so any host interleaving draws identically.
    pub fn msg_fault(&self, src: usize, dst: usize, seq: u64) -> MsgFault {
        let mut out = MsgFault::NONE;
        for (i, rule) in self.rules.iter().enumerate() {
            match rule {
                FaultRule::MsgDrop { prob, src: s, dst: d }
                    if s.is_none_or(|x| x == src) && d.is_none_or(|x| x == dst) =>
                {
                    let mut rng = SplitMix64::new(stream_seed(
                        self.seed, 1, i as u64, src as u64, dst as u64, seq,
                    ));
                    while out.drops < self.max_retries && rng.next_f64() < *prob {
                        out.drops += 1;
                    }
                }
                FaultRule::MsgDelayJitter { cv, prob } => {
                    let mut rng = SplitMix64::new(stream_seed(
                        self.seed, 2, i as u64, src as u64, dst as u64, seq,
                    ));
                    if rng.next_f64() < *prob {
                        out.delay_factor *= rng.jitter(*cv).max(1.0);
                    }
                }
                FaultRule::MsgCorrupt { prob, src: s, dst: d }
                    if s.is_none_or(|x| x == src) && d.is_none_or(|x| x == dst) =>
                {
                    let mut rng = SplitMix64::new(stream_seed(
                        self.seed, 4, i as u64, src as u64, dst as u64, seq,
                    ));
                    if rng.next_f64() < *prob {
                        // `| 1` keeps the token (and its XOR mask byte)
                        // nonzero, so 0 can mean "clean" everywhere.
                        out.corrupt = rng.next_u64() | 1;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Virtual-time penalty for `drops` failed transmission attempts:
    /// exponential backoff plus one re-transfer of `wire` per attempt.
    pub fn retry_penalty(&self, drops: u32, wire: SimTime) -> SimTime {
        let mut penalty = SimTime::ZERO;
        for i in 0..drops {
            penalty += self.retry_timeout * (1u64 << i.min(20)) as f64 + wire;
        }
        penalty
    }

    /// Register an in-flight fault timer for the duration of the returned
    /// guard; the fiber stall detector will not poison the cluster while
    /// any timer is outstanding.
    pub fn hold_timer(&self) -> FaultTimerGuard<'_> {
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        FaultTimerGuard(self)
    }

    /// Number of currently outstanding fault timers.
    pub fn outstanding(&self) -> u32 {
        self.outstanding.load(Ordering::Relaxed)
    }
}

/// RAII guard of one outstanding fault timer (see
/// [`FaultPlan::hold_timer`]).
#[derive(Debug)]
pub struct FaultTimerGuard<'a>(&'a FaultPlan);

impl Drop for FaultTimerGuard<'_> {
    fn drop(&mut self) {
        self.0.outstanding.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-rank mutable fault bookkeeping, owned by the rank's `Endpoint`
/// (which is `!Sync`, so plain interior mutability suffices). Protocol
/// layers reach it through `Endpoint::faults`.
#[derive(Debug)]
pub struct FaultState {
    plan: Arc<FaultPlan>,
    /// Per-destination send sequence counters — the deterministic
    /// coordinate of each message's fault draw.
    send_seq: RefCell<Vec<u64>>,
    /// One-shot consumption flags for `RankStall` rules, by rule index.
    stall_used: RefCell<Vec<bool>>,
    /// Ranks whose I/O role is known (to this rank) to have crashed.
    /// Sticky: once dead, dead for the rest of the run.
    dead: RefCell<BTreeSet<usize>>,
    /// Cumulative collective write rounds this rank has entered; all
    /// members of a subgroup advance it in lock step, which is what makes
    /// communication-free symmetric crash detection possible.
    rounds: Cell<u64>,
    /// Per-(source rank, tag) FIFO of received corruption tokens, pushed
    /// by the endpoint at packet arrival (one entry per packet, zero for
    /// clean) and popped by the protocol layer as it consumes payloads.
    /// Keeping zeros preserves push/pop alignment across mixed traffic.
    corrupt_events: RefCell<BTreeMap<(usize, i32), VecDeque<u64>>>,
    /// The corruption token of this rank's most recent *send* draw — lets
    /// a sender know (purely, from its own draw) that the copy in flight
    /// is doomed and proactively post repair copies.
    last_corrupt: Cell<u64>,
}

impl FaultState {
    /// Fresh per-rank state over a shared plan, for a cluster of `nranks`.
    pub fn new(plan: Arc<FaultPlan>, nranks: usize) -> Self {
        let nrules = plan.rules.len();
        FaultState {
            plan,
            send_seq: RefCell::new(vec![0; nranks]),
            stall_used: RefCell::new(vec![false; nrules]),
            dead: RefCell::new(BTreeSet::new()),
            rounds: Cell::new(0),
            corrupt_events: RefCell::new(BTreeMap::new()),
            last_corrupt: Cell::new(0),
        }
    }

    /// The shared plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// Draw the fault decision for the next message from `src` (this
    /// rank) to `dst`, advancing the per-destination sequence.
    pub fn draw_msg(&self, src: usize, dst: usize) -> MsgFault {
        let mut seqs = self.send_seq.borrow_mut();
        let seq = seqs[dst];
        seqs[dst] += 1;
        let fault = self.plan.msg_fault(src, dst, seq);
        self.last_corrupt.set(fault.corrupt);
        fault
    }

    /// The corruption token of the most recent send draw (0 = clean).
    /// A sender inspects this right after posting a payload to decide
    /// whether to follow up with proactive repair copies.
    pub fn last_send_corrupt(&self) -> u64 {
        self.last_corrupt.get()
    }

    /// Record the corruption token of a packet arriving from `src` on
    /// `tag` (0 for clean packets — pushed anyway to keep FIFO alignment).
    pub fn push_corrupt(&self, src: usize, tag: i32, token: u64) {
        self.corrupt_events
            .borrow_mut()
            .entry((src, tag))
            .or_default()
            .push_back(token);
    }

    /// Pop the corruption token for the next consumed payload from `src`
    /// on `tag`; 0 when no event was recorded (clean, or no corrupt rules
    /// installed).
    pub fn take_corrupt(&self, src: usize, tag: i32) -> u64 {
        self.corrupt_events
            .borrow_mut()
            .get_mut(&(src, tag))
            .and_then(|q| q.pop_front())
            .unwrap_or(0)
    }

    /// Consume the one-shot stall for `(rank, phase)` if one is configured
    /// and unused; returns its duration.
    pub fn take_stall(&self, rank: usize, phase: &str) -> Option<SimTime> {
        let mut used = self.stall_used.borrow_mut();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if let FaultRule::RankStall { rank: r, at_phase, duration } = rule {
                if *r == rank && at_phase == phase && !used[i] {
                    used[i] = true;
                    return Some(*duration);
                }
            }
        }
        None
    }

    /// True when `rank`'s I/O role is known to have crashed.
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead.borrow().contains(&rank)
    }

    /// Record `rank` as crashed; returns true when this is news.
    pub fn mark_dead(&self, rank: usize) -> bool {
        self.dead.borrow_mut().insert(rank)
    }

    /// The known-dead ranks, ascending.
    pub fn dead_ranks(&self) -> Vec<usize> {
        self.dead.borrow().iter().copied().collect()
    }

    /// Monotone epoch of the dead set (its cardinality): equal across
    /// ranks exactly when their dead sets agree, which ParColl establishes
    /// with a gated allgather before (re)partitioning.
    pub fn dead_epoch(&self) -> u64 {
        self.dead.borrow().len() as u64
    }

    /// Enter a collective write round: returns the round's cumulative
    /// index and advances the counter.
    pub fn next_write_round(&self) -> u64 {
        let r = self.rounds.get();
        self.rounds.set(r + 1);
        r
    }

    /// Cumulative write rounds entered so far.
    pub fn write_round(&self) -> u64 {
        self.rounds.get()
    }

    /// Raise the round counter to `r` (no-op when already past it). Ranks
    /// that regroup into a communicator after unequal round histories use
    /// an allreduce-MAX of their counters to re-agree before detection.
    pub fn set_write_round(&self, r: u64) {
        if r > self.rounds.get() {
            self.rounds.set(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_fault_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1).msg_drop(0.5, None, None).msg_delay_jitter(0.3, 0.5);
        let b = FaultPlan::new(1).msg_drop(0.5, None, None).msg_delay_jitter(0.3, 0.5);
        let c = FaultPlan::new(2).msg_drop(0.5, None, None).msg_delay_jitter(0.3, 0.5);
        let mut diff = 0;
        for seq in 0..256 {
            assert_eq!(a.msg_fault(3, 5, seq), b.msg_fault(3, 5, seq));
            if a.msg_fault(3, 5, seq) != c.msg_fault(3, 5, seq) {
                diff += 1;
            }
        }
        assert!(diff > 64, "different seeds must draw differently ({diff})");
    }

    #[test]
    fn msg_drop_filters_by_src_dst() {
        let plan = FaultPlan::new(7).msg_drop(1.0, Some(2), Some(3));
        // Certain drop on the matching pair, capped at max_retries.
        assert_eq!(plan.msg_fault(2, 3, 0).drops, plan.max_retries);
        assert_eq!(plan.msg_fault(2, 4, 0).drops, 0);
        assert_eq!(plan.msg_fault(1, 3, 0).drops, 0);
    }

    #[test]
    fn delay_factor_never_speeds_up() {
        let plan = FaultPlan::new(9).msg_delay_jitter(0.5, 1.0);
        for seq in 0..200 {
            assert!(plan.msg_fault(0, 1, seq).delay_factor >= 1.0);
        }
    }

    #[test]
    fn retry_penalty_backs_off_exponentially() {
        let plan = FaultPlan::new(0);
        let w = SimTime::micros(10.0);
        let p1 = plan.retry_penalty(1, w);
        let p2 = plan.retry_penalty(2, w);
        // Second attempt's backoff is 2x the first's.
        assert_eq!(p2 - p1, plan.retry_timeout * 2.0 + w);
        assert_eq!(plan.retry_penalty(0, w), SimTime::ZERO);
    }

    #[test]
    fn ost_windows_and_failures() {
        let plan = FaultPlan::new(0)
            .ost_slow(Some(1), 4.0, SimTime::secs(1.0), SimTime::secs(2.0))
            .ost_slow(None, 2.0, SimTime::ZERO, SimTime::secs(10.0))
            .ost_fail_after(3, 10, 4);
        // Both windows apply to ost 1 at t=1.5: 4 * 2.
        assert_eq!(plan.ost_slow_factor(1, SimTime::secs(1.5)), 8.0);
        // Only the catch-all outside [1, 2).
        assert_eq!(plan.ost_slow_factor(1, SimTime::secs(3.0)), 2.0);
        assert_eq!(plan.ost_slow_factor(0, SimTime::secs(1.5)), 2.0);
        // Fail window [10, 14): op 12 suffers 2 failures, op 14 none.
        assert_eq!(plan.ost_failures(3, 12), 2);
        assert_eq!(plan.ost_failures(3, 14), 0);
        assert_eq!(plan.ost_failures(2, 12), 0);
    }

    #[test]
    fn stall_is_one_shot_per_rule() {
        let plan = Arc::new(
            FaultPlan::new(0).rank_stall(4, "write_all", SimTime::millis(5.0)),
        );
        let st = FaultState::new(plan, 8);
        assert_eq!(st.take_stall(4, "write_all"), Some(SimTime::millis(5.0)));
        assert_eq!(st.take_stall(4, "write_all"), None, "consumed");
        assert_eq!(st.take_stall(4, "read_all"), None);
        assert_eq!(st.take_stall(3, "write_all"), None);
    }

    #[test]
    fn dead_set_is_sticky_with_monotone_epoch() {
        let st = FaultState::new(Arc::new(FaultPlan::new(0)), 4);
        assert_eq!(st.dead_epoch(), 0);
        assert!(st.mark_dead(2));
        assert!(!st.mark_dead(2), "re-marking is not news");
        assert!(st.is_dead(2));
        assert!(st.mark_dead(0));
        assert_eq!(st.dead_epoch(), 2);
        assert_eq!(st.dead_ranks(), vec![0, 2]);
    }

    #[test]
    fn send_sequences_advance_per_destination() {
        let plan = Arc::new(FaultPlan::new(3).msg_drop(0.5, None, None));
        let st = FaultState::new(Arc::clone(&plan), 4);
        // Two sends to dst 1 use seq 0 then 1; a send to dst 2 uses seq 0.
        let a = st.draw_msg(0, 1);
        let b = st.draw_msg(0, 1);
        let c = st.draw_msg(0, 2);
        assert_eq!(a, plan.msg_fault(0, 1, 0));
        assert_eq!(b, plan.msg_fault(0, 1, 1));
        assert_eq!(c, plan.msg_fault(0, 2, 0));
    }

    #[test]
    fn timer_guard_counts_nest_and_release() {
        let plan = FaultPlan::new(0);
        assert_eq!(plan.outstanding(), 0);
        {
            let _a = plan.hold_timer();
            let _b = plan.hold_timer();
            assert_eq!(plan.outstanding(), 2);
        }
        assert_eq!(plan.outstanding(), 0);
    }

    #[test]
    fn crash_rules_query() {
        let plan = FaultPlan::new(0).aggregator_crash(5, 3).aggregator_crash(5, 1);
        assert!(plan.has_crash_rules());
        assert_eq!(plan.agg_crash(5), Some(1), "earliest round wins");
        assert_eq!(plan.agg_crash(4), None);
        assert!(!FaultPlan::new(0).msg_drop(0.1, None, None).has_crash_rules());
    }

    #[test]
    fn write_round_counter_advances() {
        let st = FaultState::new(Arc::new(FaultPlan::new(0)), 2);
        assert_eq!(st.next_write_round(), 0);
        assert_eq!(st.next_write_round(), 1);
        assert_eq!(st.write_round(), 2);
    }

    #[test]
    fn msg_corrupt_draws_are_deterministic_and_filtered() {
        let plan = FaultPlan::new(11).msg_corrupt(1.0, Some(2), None);
        let f = plan.msg_fault(2, 5, 0);
        assert_ne!(f.corrupt, 0, "prob=1.0 must corrupt");
        assert_eq!(f, plan.msg_fault(2, 5, 0), "pure in coordinates");
        assert_eq!(plan.msg_fault(3, 5, 0).corrupt, 0, "src filter");
        let sparse = FaultPlan::new(11).msg_corrupt(0.1, None, None);
        let hits = (0..1000).filter(|&s| sparse.msg_fault(0, 1, s).corrupt != 0).count();
        assert!((50..200).contains(&hits), "~10% corruption rate, got {hits}");
    }

    #[test]
    fn corrupt_flip_is_self_inverse_and_visible() {
        let orig: Vec<u8> = (0..97u8).collect();
        let mut buf = orig.clone();
        let token = FaultPlan::new(1).msg_corrupt(1.0, None, None).msg_fault(0, 1, 0).corrupt;
        corrupt_flip(&mut buf, token);
        assert_ne!(buf, orig, "a nonzero token must change a byte");
        corrupt_flip(&mut buf, token);
        assert_eq!(buf, orig, "XOR flip is self-inverse");
        corrupt_flip(&mut buf, 0);
        assert_eq!(buf, orig, "token 0 is a no-op");
        corrupt_flip(&mut [], token);
    }

    #[test]
    fn torn_write_counts_as_crash() {
        let plan = FaultPlan::new(0).torn_write(3, 2);
        assert!(plan.has_crash_rules());
        assert_eq!(plan.agg_crash(3), Some(2));
        assert!(plan.torn_crash(3));
        assert!(!plan.torn_crash(1));
        // A clean crash at an earlier round shadows the torn one.
        let mixed = FaultPlan::new(0).torn_write(3, 2).aggregator_crash(3, 1);
        assert_eq!(mixed.agg_crash(3), Some(1));
        assert!(!mixed.torn_crash(3));
    }

    #[test]
    fn rot_regions_and_flip_are_in_bounds() {
        let plan = FaultPlan::new(5)
            .ost_rot(1000, 64)
            .msg_drop(0.1, None, None)
            .ost_rot(4096, 1);
        let regions = plan.ost_rot_regions();
        assert_eq!(regions, vec![(0, 1000, 64), (2, 4096, 1)]);
        for &(rule, off, len) in &regions {
            let (byte, xor) = plan.rot_flip(rule).unwrap();
            assert!((off..off + len).contains(&byte));
            assert_ne!(xor, 0, "the planted flip must change the byte");
            assert_eq!(plan.rot_flip(rule), Some((byte, xor)), "pure draw");
        }
        assert_eq!(plan.rot_flip(1), None, "not a rot rule");
    }

    #[test]
    fn corrupt_event_queue_is_fifo_per_src_tag() {
        let st = FaultState::new(Arc::new(FaultPlan::new(0)), 4);
        st.push_corrupt(1, 7, 0);
        st.push_corrupt(1, 7, 99);
        st.push_corrupt(2, 7, 5);
        assert_eq!(st.take_corrupt(1, 7), 0);
        assert_eq!(st.take_corrupt(1, 7), 99);
        assert_eq!(st.take_corrupt(1, 7), 0, "drained queue reads clean");
        assert_eq!(st.take_corrupt(2, 7), 5);
        assert_eq!(st.take_corrupt(3, 8), 0, "unknown key reads clean");
    }

    #[test]
    fn last_send_corrupt_tracks_draw() {
        let plan = Arc::new(FaultPlan::new(1).msg_corrupt(1.0, None, Some(1)));
        let st = FaultState::new(Arc::clone(&plan), 4);
        assert_eq!(st.last_send_corrupt(), 0);
        let f = st.draw_msg(0, 1);
        assert_eq!(st.last_send_corrupt(), f.corrupt);
        assert_ne!(st.last_send_corrupt(), 0);
        st.draw_msg(0, 2);
        assert_eq!(st.last_send_corrupt(), 0, "clean draw resets the cell");
    }
}
