//! Deterministic N-party meeting point.
//!
//! All collective operations in the `simmpi` layer are built on one
//! primitive: every participant deposits a value and its current virtual
//! clock; the **last** arrival runs a combiner exactly once over the inputs
//! (ordered by participant index) and the maximum clock; every participant
//! then observes the same result and the same completion timestamp.
//!
//! This yields virtual-time semantics that match how a blocking MPI
//! collective behaves — nobody leaves before the operation completes, and
//! the completion time is `max(entry clocks) + model cost` — while keeping
//! the outcome fully deterministic regardless of host thread scheduling.
//!
//! The meeting point is reusable (generation-counted), so one `Rendezvous`
//! serves every collective ever executed on a communicator.

use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Process-global id source for rendezvous instances, so the progress
/// registry can tell meeting points apart when downgrading waiters.
static RDV_ID: AtomicU64 = AtomicU64::new(0);

/// Shared flag that aborts all blocked substrate waits when any rank
/// panics, so a failing test reports the panic instead of deadlocking.
#[derive(Debug, Default)]
pub struct PoisonFlag(AtomicBool);

impl PoisonFlag {
    /// Mark the cluster as poisoned.
    pub fn poison(&self) {
        self.0.store(true, Ordering::SeqCst);
        // Unblocks every waiter (they poll the flag), so it is also a
        // liveness event for the fiber scheduler's stall detector.
        crate::fiber::note_event();
    }

    /// True once poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }

    /// Panic (propagating the failure) if poisoned.
    pub fn check(&self) {
        if self.is_poisoned() {
            panic!("simnet cluster poisoned: another rank panicked");
        }
    }
}

type BoxedInput = Box<dyn Any + Send>;
type SharedResult = Arc<dyn Any + Send + Sync>;

/// Arrival attribution for one completed meeting: which participant the
/// others waited for, and when it showed up. Computed once by the last
/// arrival and observed identically by every participant, so it is as
/// deterministic as the meeting result itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeetInfo {
    /// Generation number of the meeting (0-based, per rendezvous).
    pub seq: u64,
    /// Participant index with the latest entry clock (lowest index wins
    /// ties) — the straggler every other participant waited for.
    pub straggler: usize,
    /// The straggler's entry clock == `max(entry clocks)`.
    pub last_arrival: SimTime,
}

#[derive(Default)]
struct State {
    generation: u64,
    arrived: usize,
    inputs: Vec<Option<BoxedInput>>,
    clocks: Vec<SimTime>,
    result: Option<(SharedResult, SimTime, MeetInfo)>,
    draining: usize,
}

/// A reusable meeting point for a fixed set of `n` participants.
pub struct Rendezvous {
    n: usize,
    /// Process-unique id, reported to the progress registry.
    id: u64,
    /// Global ranks of the participants (index-aligned with `idx`), when
    /// known. Cluster-created rendezvous always carry this so the
    /// progress registry can bound parked waiters by the participants'
    /// clocks; `None` (unit-test constructor) registers waiters with an
    /// empty membership, which is sound but cannot exploit the
    /// requester-dependence rule.
    participants: Option<Arc<Vec<usize>>>,
    state: Mutex<State>,
    cv: Condvar,
    poison: Arc<PoisonFlag>,
}

impl std::fmt::Debug for Rendezvous {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rendezvous").field("n", &self.n).finish()
    }
}

/// How long a blocked participant sleeps between poison checks. Purely a
/// liveness knob for failure cases; correct runs are woken by notify.
const POISON_POLL: Duration = Duration::from_millis(50);

impl Rendezvous {
    /// Create a meeting point for `n` participants sharing `poison`.
    pub fn new(n: usize, poison: Arc<PoisonFlag>) -> Self {
        Self::build(n, None, poison)
    }

    /// Create a meeting point for the given **global ranks** (participant
    /// index `i` is `ranks[i]`). Cluster code must use this constructor:
    /// the membership lets the progress registry bound a parked waiter's
    /// wake time by the participants' clocks — in particular, a meeting
    /// that includes the requesting rank never delays its admission.
    pub fn for_ranks(ranks: Vec<usize>, poison: Arc<PoisonFlag>) -> Self {
        let n = ranks.len();
        Self::build(n, Some(Arc::new(ranks)), poison)
    }

    fn build(n: usize, participants: Option<Arc<Vec<usize>>>, poison: Arc<PoisonFlag>) -> Self {
        assert!(n > 0, "rendezvous needs at least one participant");
        Rendezvous {
            n,
            id: RDV_ID.fetch_add(1, Ordering::Relaxed),
            participants,
            state: Mutex::new(State {
                inputs: (0..n).map(|_| None).collect(),
                clocks: vec![SimTime::ZERO; n],
                ..State::default()
            }),
            cv: Condvar::new(),
            poison,
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.n
    }

    /// Participate in the current collective.
    ///
    /// * `idx` — this participant's index in `0..n`. Each index must be
    ///   presented exactly once per generation (guaranteed when every rank
    ///   executes the same collective sequence, as MPI requires).
    /// * `now` — the participant's virtual clock at entry.
    /// * `input` — this participant's contribution.
    /// * `combine` — run once by the last arrival; receives all inputs
    ///   (indexed by participant) and the latest entry clock, returns the
    ///   shared result and the common completion timestamp.
    ///
    /// Returns the shared result and the completion timestamp; the caller
    /// is responsible for advancing its clock to the timestamp.
    pub fn meet<T, R, F>(&self, idx: usize, now: SimTime, input: T, combine: F) -> (Arc<R>, SimTime)
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>, SimTime) -> (R, SimTime),
    {
        let (result, completion, _) = self.meet_info(idx, now, input, combine);
        (result, completion)
    }

    /// Like [`meet`](Self::meet), additionally returning the
    /// [`MeetInfo`] arrival attribution (straggler index, its entry
    /// clock, and the meeting's generation number).
    pub fn meet_info<T, R, F>(
        &self,
        idx: usize,
        now: SimTime,
        input: T,
        combine: F,
    ) -> (Arc<R>, SimTime, MeetInfo)
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>, SimTime) -> (R, SimTime),
    {
        assert!(idx < self.n, "participant {idx} out of {}", self.n);
        let mut st = self.state.lock();

        // Wait for the previous generation to fully drain before joining.
        let mut polls = 0u32;
        while st.result.is_some() {
            self.poisonable_wait(&mut st);
            polls += 1;
            if polls == crate::progress::STALL_DEBUG_POLLS && crate::progress::stall_debug() {
                eprintln!(
                    "rendezvous drain stalled: id {} gen {} idx {idx} draining {}",
                    self.id, st.generation, st.draining
                );
            }
        }

        let gen = st.generation;
        assert!(
            st.inputs[idx].is_none(),
            "participant {idx} arrived twice in one collective"
        );
        st.inputs[idx] = Some(Box::new(input));
        st.clocks[idx] = now;
        st.arrived += 1;
        crate::fiber::note_event();

        if st.arrived == self.n {
            let inputs: Vec<T> = st
                .inputs
                .iter_mut()
                .map(|slot| {
                    *slot
                        .take()
                        .expect("all inputs present at full arrival")
                        .downcast::<T>()
                        .expect("all participants use the same input type")
                })
                .collect();
            let straggler = st
                .clocks
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.partial_cmp(b).unwrap().then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .expect("at least one participant");
            let max_clock = st.clocks[straggler];
            let info = MeetInfo {
                seq: gen,
                straggler,
                last_arrival: max_clock,
            };
            let (result, completion) = combine(inputs, max_clock);
            debug_assert!(
                completion >= max_clock,
                "collective completion {completion:?} precedes last arrival {max_clock:?}"
            );
            st.result = Some((Arc::new(result), completion, info));
            st.draining = self.n;
            // The meeting is complete: downgrade every parked waiter in
            // the progress registry before any of them can wake. Done
            // under the state lock so no gate check observes a waiter
            // still marked as parked in a finished meeting.
            if let Some(members) = &self.participants {
                crate::progress::tl_complete_rdv(self.id, members);
            }
            self.cv.notify_all();
        } else {
            // Register this rank as parked in the meeting (atomic with
            // the deposit, under the state lock): its wake is bounded by
            // the other participants' entry clocks, which the progress
            // registry exploits when ordering resource admissions.
            let members = self
                .participants
                .as_ref()
                .map(Arc::clone)
                .unwrap_or_default();
            crate::progress::tl_block_rdv(self.id, members);
            let mut polls = 0u32;
            while st.generation == gen && st.result.is_none() {
                self.poisonable_wait(&mut st);
                polls += 1;
                if polls == crate::progress::STALL_DEBUG_POLLS && crate::progress::stall_debug() {
                    eprintln!(
                        "rendezvous stalled: id {} gen {gen} idx {idx} arrived {}/{}",
                        self.id, st.arrived, self.n
                    );
                }
            }
            // Normally the last arrival already downgraded us;
            // self-clear covers meetings completed by threads without a
            // progress context.
            crate::progress::tl_unblock();
        }

        let (shared, completion, info) = st
            .result
            .clone()
            .expect("result present when a participant is released");
        st.draining -= 1;
        if st.draining == 0 {
            st.result = None;
            st.arrived = 0;
            st.generation += 1;
            self.cv.notify_all();
            crate::fiber::note_event();
        }
        drop(st);

        let typed = shared
            .downcast::<R>()
            .expect("all participants use the same result type");
        (typed, completion, info)
    }

    fn poisonable_wait(&self, st: &mut parking_lot::MutexGuard<'_, State>) {
        self.poison.check();
        if crate::fiber::in_fiber() {
            // Cooperative executor: the peers we are meeting are fibers
            // on this same thread — unlock, run them, re-check.
            parking_lot::MutexGuard::unlocked(st, crate::fiber::yield_now);
        } else {
            self.cv.wait_for(st, POISON_POLL);
        }
        self.poison.check();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn rdv(n: usize) -> Arc<Rendezvous> {
        Arc::new(Rendezvous::new(n, Arc::new(PoisonFlag::default())))
    }

    #[test]
    fn all_participants_see_same_result_and_completion() {
        let r = rdv(4);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    r.meet(i, SimTime::secs(i as f64), i as u64, |inputs, max| {
                        (inputs.iter().sum::<u64>(), max + SimTime::secs(1.0))
                    })
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (sum, done) in &results {
            assert_eq!(**sum, 1 + 2 + 3);
            // max entry clock is 3s, +1s cost
            assert!((done.as_secs() - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inputs_are_ordered_by_participant_index() {
        let r = rdv(3);
        let handles: Vec<_> = (0..3)
            .rev() // arrive in reverse order on purpose
            .map(|i| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    let (v, _) = r.meet(i, SimTime::ZERO, format!("p{i}"), |inputs, max| {
                        (inputs.clone(), max)
                    });
                    v
                })
            })
            .collect();
        for h in handles {
            let v = h.join().unwrap();
            assert_eq!(*v, vec!["p0".to_string(), "p1".into(), "p2".into()]);
        }
    }

    #[test]
    fn reusable_across_generations() {
        let r = rdv(2);
        let mk = |i: usize, r: &Arc<Rendezvous>| {
            let r = Arc::clone(r);
            thread::spawn(move || {
                let mut outs = Vec::new();
                for round in 0..50u64 {
                    let (sum, _) =
                        r.meet(i, SimTime::ZERO, round + i as u64, |ins, max| {
                            (ins.iter().sum::<u64>(), max)
                        });
                    outs.push(*sum);
                }
                outs
            })
        };
        let a = mk(0, &r);
        let b = mk(1, &r);
        let oa = a.join().unwrap();
        let ob = b.join().unwrap();
        for round in 0..50u64 {
            assert_eq!(oa[round as usize], 2 * round + 1);
            assert_eq!(ob[round as usize], 2 * round + 1);
        }
    }

    #[test]
    fn single_party_rendezvous_is_immediate() {
        let r = rdv(1);
        let (v, done) = r.meet(0, SimTime::secs(5.0), 42u32, |ins, max| {
            (ins[0], max + SimTime::secs(0.5))
        });
        assert_eq!(*v, 42);
        assert!((done.as_secs() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn completion_uses_latest_clock() {
        let r = rdv(2);
        let r2 = Arc::clone(&r);
        let h = thread::spawn(move || r2.meet(1, SimTime::secs(10.0), (), |_, max| ((), max)));
        let (_, done0) = r.meet(0, SimTime::secs(1.0), (), |_, max| ((), max));
        let (_, done1) = h.join().unwrap();
        assert_eq!(done0, SimTime::secs(10.0));
        assert_eq!(done1, SimTime::secs(10.0));
    }

    #[test]
    fn meet_info_names_the_straggler() {
        let clocks = [1.0, 7.0, 3.0];
        let r = rdv(3);
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    r.meet_info(i, SimTime::secs(clocks[i]), (), |_, max| {
                        ((), max + SimTime::secs(1.0))
                    })
                })
            })
            .collect();
        for h in handles {
            let (_, done, info) = h.join().unwrap();
            assert_eq!(info.seq, 0);
            assert_eq!(info.straggler, 1);
            assert!((info.last_arrival.as_secs() - 7.0).abs() < 1e-12);
            assert!((done.as_secs() - 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn straggler_ties_break_to_lowest_index() {
        let r = rdv(4);
        let handles: Vec<_> = (0..4)
            .rev()
            .map(|i| {
                let r = Arc::clone(&r);
                thread::spawn(move || {
                    let (_, _, info) =
                        r.meet_info(i, SimTime::secs(2.0), (), |_, max| ((), max));
                    info
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().straggler, 0);
        }
    }

    #[test]
    fn meet_info_seq_counts_generations() {
        let r = rdv(1);
        for expect in 0..3 {
            let (_, _, info) = r.meet_info(0, SimTime::ZERO, (), |_, max| ((), max));
            assert_eq!(info.seq, expect);
        }
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poison_unblocks_waiters() {
        let poison = Arc::new(PoisonFlag::default());
        let r = Arc::new(Rendezvous::new(2, Arc::clone(&poison)));
        let p = Arc::clone(&poison);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            p.poison();
        });
        // Second participant never arrives; the poison must release us.
        let _ = r.meet(0, SimTime::ZERO, (), |_, max| ((), max));
    }
}
