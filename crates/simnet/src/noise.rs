//! Deterministic pseudo-randomness for service-time jitter.
//!
//! Real parallel file systems exhibit per-request service variance (disk
//! head position, RAID stripe state, server cache hits, competing jobs on
//! shared OSTs). On Jaguar this variance is what makes lock-step collective
//! rounds wait for the *slowest* server each round — a key amplifier of the
//! collective wall. We model it with a small, seeded generator so runs are
//! reproducible. `SplitMix64` is used instead of the `rand` crate inside
//! the substrate to keep the core dependency-light and the stream stable
//! across dependency upgrades; `rand` is still used in workload generators.

/// SplitMix64 PRNG (public-domain algorithm by Sebastiano Vigna).
///
/// Deterministic, tiny state, passes BigCrush when used as intended here:
/// low-volume jitter generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// A positive multiplicative jitter factor with mean 1 and the given
    /// coefficient of variation, from a two-point-free smooth distribution.
    ///
    /// Uses a log-uniform construction: exp(U·s − s/2·c) with `s` chosen so
    /// the standard deviation matches `cv` to first order. For the small
    /// `cv` values used by the calibration (≤ 0.5) the approximation error
    /// is irrelevant; what matters is determinism and positivity.
    pub fn jitter(&mut self, cv: f64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        // Uniform on [-√3, √3] has stddev 1; scale by cv and exponentiate.
        let u = self.uniform(-1.0, 1.0) * 3f64.sqrt();
        let x = (cv * u).exp();
        // Normalize mean of exp(cv·U): E[exp(aU)] = sinh(a√3)/(a√3).
        let a = cv * 3f64.sqrt();
        let mean = if a.abs() < 1e-12 { 1.0 } else { a.sinh() / a };
        x / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut g = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = g.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn jitter_zero_cv_is_one() {
        let mut g = SplitMix64::new(3);
        assert_eq!(g.jitter(0.0), 1.0);
    }

    #[test]
    fn jitter_mean_near_one_and_positive() {
        let mut g = SplitMix64::new(99);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let j = g.jitter(0.3);
            assert!(j > 0.0);
            sum += j;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 1.0).abs() < 0.02,
            "jitter mean {mean} drifted from 1.0"
        );
    }

    #[test]
    fn jitter_spread_scales_with_cv() {
        let mut g = SplitMix64::new(5);
        let spread = |g: &mut SplitMix64, cv: f64| {
            let xs: Vec<f64> = (0..5000).map(|_| g.jitter(cv)).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
        };
        let s_small = spread(&mut g, 0.1);
        let s_big = spread(&mut g, 0.4);
        assert!(s_big > 2.0 * s_small, "cv=0.4 ({s_big}) vs cv=0.1 ({s_small})");
    }
}
