//! Error type for the substrate.

use std::fmt;

/// Errors surfaced by the simnet substrate.
///
/// Protocol-level misuse (out-of-range buffer arithmetic, mismatched
/// collective participation) is treated as a bug and panics; `SimError`
/// covers conditions a correct program can still encounter, such as a peer
/// thread dying and leaving a receive permanently unmatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A receive can never complete because the cluster is shutting down
    /// (some rank panicked or exited early).
    Disconnected {
        /// Rank that was waiting.
        rank: usize,
        /// (source, context, tag) triple being waited for.
        waiting_for: (usize, u32, i32),
    },
    /// An invalid rank was named as a message peer.
    InvalidRank {
        /// The offending rank number.
        rank: usize,
        /// Size of the cluster.
        size: usize,
    },
    /// Configuration rejected (e.g. zero ranks, zero nodes).
    BadConfig(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Disconnected { rank, waiting_for } => write!(
                f,
                "rank {rank} disconnected while waiting for message from rank {} (ctx {}, tag {})",
                waiting_for.0, waiting_for.1, waiting_for.2
            ),
            SimError::InvalidRank { rank, size } => {
                write!(f, "invalid rank {rank} in a cluster of {size}")
            }
            SimError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias.
pub type SimResult<T> = Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::Disconnected {
            rank: 3,
            waiting_for: (1, 7, 42),
        };
        let s = e.to_string();
        assert!(s.contains("rank 3"));
        assert!(s.contains("rank 1"));
        assert!(s.contains("tag 42"));

        let e = SimError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains("9"));
        assert!(e.to_string().contains("4"));

        let e = SimError::BadConfig("zero ranks".into());
        assert!(e.to_string().contains("zero ranks"));
    }
}
