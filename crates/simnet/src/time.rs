//! Virtual time representation.
//!
//! Virtual time is kept as `f64` seconds. An `f64` has 52 mantissa bits;
//! at the second-to-hour magnitudes this simulation produces, the absolute
//! resolution is far below a nanosecond, which is ample for a model whose
//! smallest constant is ~1 µs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in seconds.
///
/// `SimTime` is a thin newtype over `f64` so that time values cannot be
/// accidentally mixed with byte counts or bandwidths in the cost-model
/// arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(pub f64);

impl SimTime {
    /// The zero instant / zero duration.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    #[inline]
    pub fn secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Construct from microseconds.
    #[inline]
    pub fn micros(us: f64) -> Self {
        SimTime(us * 1e-6)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn millis(ms: f64) -> Self {
        SimTime(ms * 1e-3)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn nanos(ns: f64) -> Self {
        SimTime(ns * 1e-9)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The value in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// The value in milliseconds.
    #[inline]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// True if this is a finite, non-negative time value.
    #[inline]
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        let t = SimTime::micros(1500.0);
        assert!((t.as_millis() - 1.5).abs() < 1e-12);
        assert!((t.as_secs() - 0.0015).abs() < 1e-15);
        assert!((SimTime::millis(2.0).as_micros() - 2000.0).abs() < 1e-9);
        assert!((SimTime::nanos(500.0).as_secs() - 5e-7).abs() < 1e-18);
    }

    #[test]
    fn arithmetic_behaves_like_f64_seconds() {
        let a = SimTime::secs(1.0);
        let b = SimTime::millis(250.0);
        assert!(((a + b).as_secs() - 1.25).abs() < 1e-12);
        assert!(((a - b).as_secs() - 0.75).abs() < 1e-12);
        assert!(((b * 4.0).as_secs() - 1.0).abs() < 1e-12);
        assert!(((a / 4.0).as_millis() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn max_min_pick_correct_instant() {
        let a = SimTime::secs(1.0);
        let b = SimTime::secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (0..10).map(|i| SimTime::secs(i as f64)).sum();
        assert!((total.as_secs() - 45.0).abs() < 1e-12);
    }

    #[test]
    fn validity_checks() {
        assert!(SimTime::ZERO.is_valid());
        assert!(SimTime::secs(5.0).is_valid());
        assert!(!SimTime::secs(-1.0).is_valid());
        assert!(!SimTime::secs(f64::NAN).is_valid());
        assert!(!SimTime::secs(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::secs(1.5)), "1.500s");
        assert_eq!(format!("{}", SimTime::millis(2.25)), "2.250ms");
        assert_eq!(format!("{}", SimTime::micros(7.5)), "7.500us");
        assert_eq!(format!("{}", SimTime::nanos(12.0)), "12.0ns");
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut t = SimTime::ZERO;
        t += SimTime::secs(2.0);
        t -= SimTime::millis(500.0);
        assert!((t.as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
