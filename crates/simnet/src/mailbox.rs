//! Point-to-point message store.
//!
//! Every rank owns one [`Mailbox`]; senders deposit packets keyed by
//! `(source, context, tag)` and receivers block until a matching packet is
//! present. Matching is always fully qualified — there are no wildcard
//! sources or tags — which keeps virtual timestamps deterministic: packets
//! with equal keys are consumed in FIFO order, and MPI's non-overtaking
//! rule holds per key.
//!
//! The `context` field plays the role of an MPI communicator context id,
//! isolating traffic of different communicators that may use equal tags.

use crate::buffer::IoBuffer;
use crate::rendezvous::PoisonFlag;
use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending rank (global).
    pub src: usize,
    /// Communicator context id.
    pub ctx: u32,
    /// User tag.
    pub tag: i32,
    /// Payload.
    pub payload: IoBuffer,
    /// Sender's virtual clock at the instant the send was posted.
    pub sent_clock: SimTime,
}

type Key = (usize, u32, i32);

/// One rank's incoming-message store.
pub struct Mailbox {
    /// The rank that receives from this mailbox — identifies which rank
    /// to report to the progress registry on blocking and delivery.
    owner: usize,
    queues: Mutex<HashMap<Key, VecDeque<Packet>>>,
    cv: Condvar,
    poison: Arc<PoisonFlag>,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox").finish_non_exhaustive()
    }
}

const POISON_POLL: Duration = Duration::from_millis(50);

impl Mailbox {
    /// New empty mailbox for receiving rank `owner`, sharing the cluster
    /// poison flag.
    pub fn new(owner: usize, poison: Arc<PoisonFlag>) -> Self {
        Mailbox {
            owner,
            queues: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            poison,
        }
    }

    /// Deposit a packet (called by the sender's thread).
    ///
    /// Holding the queues lock, this also downgrades the owner's
    /// progress-registry mode if it was blocked on exactly this match:
    /// once the packet is queued the owner is no longer waiting on the
    /// sender's future, and the registry must never observe the stale
    /// blocked mode with the packet already present.
    pub fn deliver(&self, pkt: Packet) {
        let key = (pkt.src, pkt.ctx, pkt.tag);
        let mut q = self.queues.lock();
        q.entry(key).or_default().push_back(pkt);
        crate::progress::tl_deliver_downgrade(self.owner, key.0, key.1, key.2);
        drop(q);
        self.cv.notify_all();
    }

    /// Receive the next packet matching `(src, ctx, tag)`, blocking until
    /// one arrives. Panics if the cluster is poisoned while waiting.
    pub fn recv(&self, src: usize, ctx: u32, tag: i32) -> Packet {
        let key = (src, ctx, tag);
        let mut q = self.queues.lock();
        let mut registered = false;
        let mut polls = 0u32;
        loop {
            if let Some(dq) = q.get_mut(&key) {
                if let Some(pkt) = dq.pop_front() {
                    if dq.is_empty() {
                        q.remove(&key);
                    }
                    if registered {
                        // Normally the delivering sender already
                        // downgraded us; self-clear covers delivery from
                        // threads without a progress context.
                        crate::progress::tl_unblock();
                    }
                    return pkt;
                }
            }
            if !registered {
                // No matching packet exists: this rank's further progress
                // (and all its future resource requests) now depends on
                // the sender. Registered under the queues lock so that
                // `deliver` cannot race the registration.
                crate::progress::tl_block_recv(src, ctx, tag);
                registered = true;
            }
            self.poison.check();
            self.cv.wait_for(&mut q, POISON_POLL);
            self.poison.check();
            polls += 1;
            if polls == crate::progress::STALL_DEBUG_POLLS && crate::progress::stall_debug() {
                eprintln!(
                    "mailbox stalled: rank {} waiting on ({src},{ctx},{tag})",
                    self.owner
                );
            }
        }
    }

    /// Non-blocking probe: take a matching packet if present.
    pub fn try_recv(&self, src: usize, ctx: u32, tag: i32) -> Option<Packet> {
        let key = (src, ctx, tag);
        let mut q = self.queues.lock();
        let dq = q.get_mut(&key)?;
        let pkt = dq.pop_front();
        if dq.is_empty() {
            q.remove(&key);
        }
        pkt
    }

    /// Number of packets currently queued (all keys). Diagnostic only.
    pub fn backlog(&self) -> usize {
        self.queues.lock().values().map(|d| d.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn mbox() -> Arc<Mailbox> {
        Arc::new(Mailbox::new(0, Arc::new(PoisonFlag::default())))
    }

    fn pkt(src: usize, ctx: u32, tag: i32, bytes: &[u8]) -> Packet {
        Packet {
            src,
            ctx,
            tag,
            payload: IoBuffer::from_slice(bytes),
            sent_clock: SimTime::ZERO,
        }
    }

    #[test]
    fn fifo_per_key() {
        let m = mbox();
        m.deliver(pkt(1, 0, 5, &[1]));
        m.deliver(pkt(1, 0, 5, &[2]));
        m.deliver(pkt(1, 0, 5, &[3]));
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[1]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[2]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[3]);
    }

    #[test]
    fn keys_are_isolated() {
        let m = mbox();
        m.deliver(pkt(1, 0, 5, &[10]));
        m.deliver(pkt(2, 0, 5, &[20]));
        m.deliver(pkt(1, 1, 5, &[30])); // different context
        m.deliver(pkt(1, 0, 6, &[40])); // different tag
        assert_eq!(m.recv(1, 0, 6).payload.as_slice().unwrap(), &[40]);
        assert_eq!(m.recv(1, 1, 5).payload.as_slice().unwrap(), &[30]);
        assert_eq!(m.recv(2, 0, 5).payload.as_slice().unwrap(), &[20]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[10]);
        assert_eq!(m.backlog(), 0);
    }

    #[test]
    fn try_recv_does_not_block() {
        let m = mbox();
        assert!(m.try_recv(1, 0, 0).is_none());
        m.deliver(pkt(1, 0, 0, &[7]));
        assert!(m.try_recv(1, 0, 0).is_some());
        assert!(m.try_recv(1, 0, 0).is_none());
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let m = mbox();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.recv(3, 2, 1));
        thread::sleep(Duration::from_millis(10));
        m.deliver(pkt(3, 2, 1, &[9]));
        let got = h.join().unwrap();
        assert_eq!(got.payload.as_slice().unwrap(), &[9]);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_recv_panics_instead_of_hanging() {
        let poison = Arc::new(PoisonFlag::default());
        let m = Mailbox::new(0, Arc::clone(&poison));
        poison.poison();
        let _ = m.recv(0, 0, 0);
    }

    #[test]
    fn backlog_counts_all_keys() {
        let m = mbox();
        m.deliver(pkt(0, 0, 0, &[1]));
        m.deliver(pkt(1, 0, 0, &[2]));
        m.deliver(pkt(1, 0, 1, &[3]));
        assert_eq!(m.backlog(), 3);
    }
}
