//! Point-to-point message store.
//!
//! Every rank owns one [`Mailbox`]; senders deposit packets keyed by
//! `(source, context, tag)` and receivers block until a matching packet is
//! present. Matching is always fully qualified — there are no wildcard
//! sources or tags — which keeps virtual timestamps deterministic: packets
//! with equal keys are consumed in FIFO order, and MPI's non-overtaking
//! rule holds per key.
//!
//! The `context` field plays the role of an MPI communicator context id,
//! isolating traffic of different communicators that may use equal tags.
//!
//! # Sharding
//!
//! The store is sharded **per source rank**: queues and the receiver's
//! condition variable live in `shards[src]`. Because matching is fully
//! qualified, a receive only ever touches its source's shard, so the
//! all-to-one exchange pattern of two-phase I/O — up to 1024 senders
//! depositing into one aggregator's mailbox — never contends on a single
//! lock, and a delivery wakes the receiver with one targeted
//! `notify_one` instead of broadcasting. Only the owner thread ever
//! receives from a mailbox, so each shard has at most one waiter and
//! `notify_one` can never strand a second one.

use crate::buffer::IoBuffer;
use crate::rendezvous::PoisonFlag;
use crate::time::SimTime;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Sending rank (global).
    pub src: usize,
    /// Communicator context id.
    pub ctx: u32,
    /// User tag.
    pub tag: i32,
    /// Payload.
    pub payload: IoBuffer,
    /// Sender's virtual clock at the instant the send was posted.
    pub sent_clock: SimTime,
    /// Fault-injected dropped transmission attempts (0 = clean). The
    /// payload is always delivered — a "drop" is a tombstone whose retry
    /// penalty the *receiver* charges to its virtual arrival, so fault
    /// injection never blocks host execution.
    pub fault_drops: u32,
    /// Fault-injected multiplier on the wire transfer time (1.0 = clean).
    pub fault_delay: f64,
    /// Fault-injected silent-corruption token (0 = clean). Like drops,
    /// corruption is virtual-state-pure: the payload bytes delivered are
    /// untouched, and the *consumer* applies the seeded flip (or, with
    /// checksums on, detects and repairs it) when it unpacks the payload.
    pub fault_corrupt: u64,
}

/// Within a shard the source is fixed; queues are keyed by the remaining
/// `(context, tag)` pair.
type ShardKey = (u32, i32);

/// One source rank's queues plus the receiver-side wakeup channel.
#[derive(Default)]
struct Shard {
    queues: Mutex<HashMap<ShardKey, VecDeque<Packet>>>,
    cv: Condvar,
}

/// One rank's incoming-message store.
pub struct Mailbox {
    /// The rank that receives from this mailbox — identifies which rank
    /// to report to the progress registry on blocking and delivery.
    owner: usize,
    /// Per-source shards, indexed by the sending rank.
    shards: Box<[Shard]>,
    poison: Arc<PoisonFlag>,
    /// Times the receiver was woken by a notify and found its match.
    wakeups: AtomicU64,
    /// Times the receiver was woken by a notify without a matching
    /// packet (a same-source delivery on a different `(ctx, tag)`).
    spurious_wakeups: AtomicU64,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox").finish_non_exhaustive()
    }
}

const POISON_POLL: Duration = Duration::from_millis(50);

impl Mailbox {
    /// New empty mailbox for receiving rank `owner` in a cluster of
    /// `nranks` possible senders, sharing the cluster poison flag.
    pub fn new(owner: usize, nranks: usize, poison: Arc<PoisonFlag>) -> Self {
        Mailbox {
            owner,
            shards: (0..nranks.max(1)).map(|_| Shard::default()).collect(),
            poison,
            wakeups: AtomicU64::new(0),
            spurious_wakeups: AtomicU64::new(0),
        }
    }

    fn shard(&self, src: usize) -> &Shard {
        &self.shards[src]
    }

    /// Deposit a packet (called by the sender's thread).
    ///
    /// Holding the source shard's lock, this also downgrades the owner's
    /// progress-registry mode if it was blocked on exactly this match:
    /// once the packet is queued the owner is no longer waiting on the
    /// sender's future, and the registry must never observe the stale
    /// blocked mode with the packet already present. (The receiver
    /// registers under the same shard lock, so the protocol is unchanged
    /// from the single-lock design — just per source.)
    pub fn deliver(&self, pkt: Packet) {
        // hostprof: deposit + targeted notify; nothing below yields.
        let _hp = simtrace::host::scope(simtrace::host::Site::MboxDeliver);
        let shard = self.shard(pkt.src);
        let key = (pkt.ctx, pkt.tag);
        let src = pkt.src;
        let mut q = shard.queues.lock();
        q.entry(key).or_default().push_back(pkt);
        crate::progress::tl_deliver_downgrade(self.owner, src, key.0, key.1);
        drop(q);
        shard.cv.notify_one();
        crate::fiber::note_event();
    }

    /// Receive the next packet matching `(src, ctx, tag)`, blocking until
    /// one arrives. Panics if the cluster is poisoned while waiting.
    pub fn recv(&self, src: usize, ctx: u32, tag: i32) -> Packet {
        let shard = self.shard(src);
        let key = (ctx, tag);
        let mut q = shard.queues.lock();
        let mut registered = false;
        let mut woken = false;
        let mut polls = 0u32;
        loop {
            // hostprof: one lock-held matching pass. The guard is dropped
            // before the yield/wait below, so the frame never absorbs the
            // time spent blocked (which belongs to other fibers' work).
            let hp = simtrace::host::scope(simtrace::host::Site::MboxRecv);
            if let Some(dq) = q.get_mut(&key) {
                if let Some(pkt) = dq.pop_front() {
                    if dq.is_empty() {
                        q.remove(&key);
                    }
                    if registered {
                        // Normally the delivering sender already
                        // downgraded us; self-clear covers delivery from
                        // threads without a progress context.
                        crate::progress::tl_unblock();
                    }
                    if woken {
                        self.wakeups.fetch_add(1, Ordering::Relaxed);
                    }
                    return pkt;
                }
            }
            if woken {
                self.spurious_wakeups.fetch_add(1, Ordering::Relaxed);
            }
            if !registered {
                // No matching packet exists: this rank's further progress
                // (and all its future resource requests) now depends on
                // the sender. Registered under the shard lock so that
                // `deliver` cannot race the registration.
                crate::progress::tl_block_recv(src, ctx, tag);
                registered = true;
            }
            drop(hp);
            self.poison.check();
            if crate::fiber::in_fiber() {
                // Cooperative executor: the sender is another fiber on
                // this thread — unlock, let it run, re-check. No notify
                // is involved, so this never counts as a (spurious)
                // wakeup.
                parking_lot::MutexGuard::unlocked(&mut q, crate::fiber::yield_now);
                woken = false;
            } else {
                woken = !shard.cv.wait_for(&mut q, POISON_POLL).timed_out();
            }
            self.poison.check();
            polls += 1;
            if polls == crate::progress::STALL_DEBUG_POLLS && crate::progress::stall_debug() {
                eprintln!(
                    "mailbox stalled: rank {} waiting on ({src},{ctx},{tag})",
                    self.owner
                );
            }
        }
    }

    /// Non-blocking probe: take a matching packet if present.
    pub fn try_recv(&self, src: usize, ctx: u32, tag: i32) -> Option<Packet> {
        let key = (ctx, tag);
        let mut q = self.shard(src).queues.lock();
        let dq = q.get_mut(&key)?;
        let pkt = dq.pop_front();
        if dq.is_empty() {
            q.remove(&key);
        }
        pkt
    }

    /// Number of packets currently queued (all keys). Diagnostic only.
    pub fn backlog(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.queues.lock().values().map(VecDeque::len).sum::<usize>())
            .sum()
    }

    /// Notified wakeups the receiver observed that found their match.
    /// Diagnostic: with per-source sharding every delivery wakes at most
    /// this mailbox's owner, so this tracks productive deliveries.
    pub fn wakeups(&self) -> u64 {
        self.wakeups.load(Ordering::Relaxed)
    }

    /// Notified wakeups that found no matching packet — a same-source
    /// delivery on a different `(ctx, tag)` than the one being awaited.
    /// Single-tag exchanges (the two-phase data path) keep this at zero;
    /// the regression test asserts it.
    pub fn spurious_wakeups(&self) -> u64 {
        self.spurious_wakeups.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn mbox() -> Arc<Mailbox> {
        Arc::new(Mailbox::new(0, 4, Arc::new(PoisonFlag::default())))
    }

    fn pkt(src: usize, ctx: u32, tag: i32, bytes: &[u8]) -> Packet {
        Packet {
            src,
            ctx,
            tag,
            payload: IoBuffer::from_slice(bytes),
            sent_clock: SimTime::ZERO,
            fault_drops: 0,
            fault_delay: 1.0,
            fault_corrupt: 0,
        }
    }

    #[test]
    fn fifo_per_key() {
        let m = mbox();
        m.deliver(pkt(1, 0, 5, &[1]));
        m.deliver(pkt(1, 0, 5, &[2]));
        m.deliver(pkt(1, 0, 5, &[3]));
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[1]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[2]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[3]);
    }

    #[test]
    fn keys_are_isolated() {
        let m = mbox();
        m.deliver(pkt(1, 0, 5, &[10]));
        m.deliver(pkt(2, 0, 5, &[20]));
        m.deliver(pkt(1, 1, 5, &[30])); // different context
        m.deliver(pkt(1, 0, 6, &[40])); // different tag
        assert_eq!(m.recv(1, 0, 6).payload.as_slice().unwrap(), &[40]);
        assert_eq!(m.recv(1, 1, 5).payload.as_slice().unwrap(), &[30]);
        assert_eq!(m.recv(2, 0, 5).payload.as_slice().unwrap(), &[20]);
        assert_eq!(m.recv(1, 0, 5).payload.as_slice().unwrap(), &[10]);
        assert_eq!(m.backlog(), 0);
    }

    #[test]
    fn try_recv_does_not_block() {
        let m = mbox();
        assert!(m.try_recv(1, 0, 0).is_none());
        m.deliver(pkt(1, 0, 0, &[7]));
        assert!(m.try_recv(1, 0, 0).is_some());
        assert!(m.try_recv(1, 0, 0).is_none());
    }

    #[test]
    fn recv_blocks_until_delivery() {
        let m = mbox();
        let m2 = Arc::clone(&m);
        let h = thread::spawn(move || m2.recv(3, 2, 1));
        thread::sleep(Duration::from_millis(10));
        m.deliver(pkt(3, 2, 1, &[9]));
        let got = h.join().unwrap();
        assert_eq!(got.payload.as_slice().unwrap(), &[9]);
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn poisoned_recv_panics_instead_of_hanging() {
        let poison = Arc::new(PoisonFlag::default());
        let m = Mailbox::new(0, 1, Arc::clone(&poison));
        poison.poison();
        let _ = m.recv(0, 0, 0);
    }

    #[test]
    fn backlog_counts_all_keys() {
        let m = mbox();
        m.deliver(pkt(0, 0, 0, &[1]));
        m.deliver(pkt(1, 0, 0, &[2]));
        m.deliver(pkt(1, 0, 1, &[3]));
        assert_eq!(m.backlog(), 3);
    }

    #[test]
    fn ping_pong_has_no_spurious_wakeups() {
        // Regression test for the targeted-wakeup design: a 3-party
        // ping-pong through one mailbox must wake the receiver only when
        // its match arrived — never for deliveries it is not waiting on
        // (the old broadcast design woke the receiver for *every*
        // deposit and re-scanned the whole map).
        let m = mbox();
        let rounds = 25u8;
        let receiver = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                for i in 0..rounds {
                    // Alternate sources; each recv targets one shard.
                    let got = m.recv(1, 0, 7);
                    assert_eq!(got.payload.as_slice().unwrap(), &[i]);
                    let got = m.recv(2, 0, 7);
                    assert_eq!(got.payload.as_slice().unwrap(), &[i]);
                }
            })
        };
        let sender = |src: usize, m: &Arc<Mailbox>| {
            let m = Arc::clone(m);
            thread::spawn(move || {
                for i in 0..rounds {
                    m.deliver(pkt(src, 0, 7, &[i]));
                }
            })
        };
        let s1 = sender(1, &m);
        let s2 = sender(2, &m);
        receiver.join().unwrap();
        s1.join().unwrap();
        s2.join().unwrap();
        assert_eq!(
            m.spurious_wakeups(),
            0,
            "deliveries on one (src, ctx, tag) woke a waiter for another"
        );
        // Every notified wakeup found its packet; blocked receives that
        // were satisfied before sleeping don't count at all.
        assert!(m.wakeups() <= 2 * rounds as u64);
    }
}
