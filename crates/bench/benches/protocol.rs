//! Criterion micro-benchmarks of the protocol building blocks plus
//! reduced-scale end-to-end runs of each figure workload, so `cargo
//! bench` exercises every code path the paper's evaluation uses.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mpiio::twophase::domains::compute_file_domains;
use mpiio::twophase::reqs::calc_my_req;
use mpiio::{AccessPlan, Datatype, Ext, FileView};
use simfs::RangeSet;
use workloads::btio::BtIo;
use workloads::flashio::FlashIo;
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn bench_datatype_flatten(c: &mut Criterion) {
    c.bench_function("flatten tile 1024x768", |b| {
        let t = Datatype::tile_2d(768 * 8, 1024 * 8, 768, 1024, 768 * 3, 1024 * 5, 64);
        b.iter(|| t.flatten());
    });
    c.bench_function("flatten bt cell struct (q=8)", |b| {
        let w = BtIo::with_grid(64, 64, 1);
        let (_, ft) = workloads::Workload::view(&w, 17);
        b.iter(|| ft.flatten());
    });
}

fn bench_view_extents(c: &mut Criterion) {
    let t = Datatype::tile_2d(768 * 8, 1024 * 8, 768, 1024, 768 * 3, 1024 * 5, 64);
    let view = FileView::new(0, &t);
    c.bench_function("view extents 48MB tile", |b| {
        b.iter(|| view.extents(0, 768 * 1024 * 64));
    });
}

fn bench_domains_and_reqs(c: &mut Criterion) {
    c.bench_function("file domains 1024 aggs", |b| {
        b.iter(|| compute_file_domains(0, 48 << 30, 1024));
    });
    let plan = AccessPlan::from_extents((0..768).map(|i| Ext::new(i << 20, 65536)).collect());
    let domains = compute_file_domains(0, 768 << 20, 256);
    c.bench_function("calc_my_req 768 runs x 256 domains", |b| {
        b.iter(|| calc_my_req(&plan, &domains));
    });
}

fn bench_rangeset(c: &mut Criterion) {
    c.bench_function("rangeset 10k inserts", |b| {
        b.iter_batched(
            RangeSet::new,
            |mut rs| {
                for i in 0..10_000u64 {
                    let s = (i * 7919) % 1_000_000;
                    rs.insert(s, s + 64);
                }
                rs
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end-to-end (reduced scale)");
    g.sample_size(10);
    g.bench_function("ior 16p baseline", |b| {
        b.iter(|| run_workload(Ior::tiny(16), RunConfig::paper(IoMode::Collective)))
    });
    g.bench_function("ior 16p parcoll-4", |b| {
        b.iter(|| run_workload(Ior::tiny(16), RunConfig::paper(IoMode::Parcoll { groups: 4 })))
    });
    g.bench_function("tileio 16p baseline", |b| {
        b.iter(|| run_workload(TileIo::tiny(16), RunConfig::paper(IoMode::Collective)))
    });
    g.bench_function("tileio 16p parcoll-4", |b| {
        b.iter(|| run_workload(TileIo::tiny(16), RunConfig::paper(IoMode::Parcoll { groups: 4 })))
    });
    g.bench_function("btio 16p parcoll-4 (iview)", |b| {
        b.iter(|| run_workload(BtIo::tiny(16), RunConfig::paper(IoMode::Parcoll { groups: 4 })))
    });
    g.bench_function("flash 16p parcoll-4", |b| {
        b.iter(|| {
            let mut w = FlashIo::checkpoint(16);
            w.blocks_per_proc = 4;
            run_workload(w, RunConfig::paper(IoMode::Parcoll { groups: 4 }))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_datatype_flatten,
    bench_view_extents,
    bench_domains_and_reqs,
    bench_rangeset,
    bench_end_to_end
);
criterion_main!(benches);
