//! Figure 10 — "The Performance of BT-IO with ParColl": NAS BT-IO class C
//! (162³ grid, diagonal multi-partitioning, full MPI-IO mode) bandwidth
//! versus (square) process counts. BT-IO is the paper's pattern-(c)
//! workload: its file views spread across the whole record and require
//! ParColl's intermediate file views. "ParColl is beneficial ... for any
//! number of processes."
//!
//! 10 of the 40 write steps are issued (steady state; `--quick` shrinks
//! the grid).

use bench::figures::btio_bandwidth;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, grid, steps): (&[usize], usize, usize) = match scale {
        Scale::Paper => (&[256, 324, 400, 484, 576], 162, 10),
        Scale::Quick => (&[16, 36], 24, 2),
    };
    let rows = btio_bandwidth(procs, grid, steps, 64);
    print_table(
        "Figure 10: BT-IO class C bandwidth, baseline vs ParColl",
        "procs",
        &rows,
    );
    emit_json("fig10_btio", &rows);
}
