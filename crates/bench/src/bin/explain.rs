//! `explain` — regenerate the diffable regression scenario and, given a
//! baseline, print where the runs diverge.
//!
//! ```text
//! explain [--out DIR] [--baseline DIR] [--fault SPEC] [--emit-baseline]
//! ```
//!
//! Runs the fixed traced scenario (see `bench::explain`), writes its
//! gate rows (`explain_scenario.json`) and digest sidecar
//! (`explain_digest.json`) into `--out` (default `bench_results/quick`
//! with `--emit-baseline`, otherwise required), and — when `--baseline`
//! names a directory holding a committed digest — diffs baseline
//! against the fresh run and prints the ranked root-cause table,
//! writing `explain_report.{txt,json}` next to the fresh results.
//!
//! `--fault ost_slow:OST:FACTOR[:FROM_MS:UNTIL_MS]` perturbs the run —
//! the knob used to demonstrate (and test) that a real regression is
//! named correctly. Exits 1 when a diff was requested and produced
//! findings, so scripts can chain on it.
//!
//! The scenario is a collective *write*; drifts in the read suites
//! (`read_sweep`, the §15 sieving/list-I/O path) are caught by the same
//! `regress` row gate over `bench_results/quick/read_sweep.json` and
//! explained by the generic OST/rank findings — the read path records
//! the same spans the diff aligns on.

use bench::explain::{explain_dirs, parse_fault, run_scenario, write_outputs, write_report};
use std::path::PathBuf;

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut fault = None;
    let mut emit_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = args.next().map(PathBuf::from),
            "--baseline" => baseline = args.next().map(PathBuf::from),
            "--fault" => match args.next().as_deref().map(parse_fault) {
                Some(Ok(plan)) => fault = Some(plan),
                Some(Err(e)) => {
                    eprintln!("explain: {e}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("explain: --fault needs a spec");
                    std::process::exit(2);
                }
            },
            "--emit-baseline" => emit_baseline = true,
            "--quick" => {} // the scenario is always quick-scale
            other => {
                eprintln!("explain: unknown argument {other:?}");
                eprintln!(
                    "usage: explain [--out DIR] [--baseline DIR] [--fault SPEC] [--emit-baseline]"
                );
                std::process::exit(2);
            }
        }
    }
    let out = out.unwrap_or_else(|| {
        if emit_baseline {
            PathBuf::from("bench_results/quick")
        } else {
            eprintln!("explain: need --out DIR (or --emit-baseline)");
            std::process::exit(2);
        }
    });

    let label = if emit_baseline { "baseline" } else { "HEAD" };
    let (rows, digest) = run_scenario(label, fault);
    if let Err(e) = write_outputs(&out, &rows, &digest) {
        eprintln!("explain: cannot write {}: {e}", out.display());
        std::process::exit(2);
    }
    println!(
        "explain: wrote scenario rows + digest ({} rounds, {} osts) to {}",
        digest.rounds.len(),
        digest.osts.len(),
        out.display()
    );

    let Some(baseline) = baseline else { return };
    match explain_dirs(&out, &baseline) {
        Err(e) => {
            eprintln!("explain: {e}");
            std::process::exit(2);
        }
        Ok(report) => {
            print!("{}", report.render_text());
            if let Err(e) = write_report(&out, &report) {
                eprintln!("explain: cannot write report: {e}");
                std::process::exit(2);
            }
            if !report.findings.is_empty() {
                std::process::exit(1);
            }
        }
    }
}
