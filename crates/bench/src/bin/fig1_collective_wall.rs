//! Figure 1 — "The Collective Wall in Collective IO": the share of
//! MPI-Tile-IO collective-write time spent in global synchronization as
//! the process count grows under the baseline extended two-phase
//! protocol. The paper measures 72% at 512 processes.

use bench::figures::collective_wall;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let procs: &[usize] = scale.pick(&[16, 32, 64, 128, 256, 512], &[8, 16, 32]);
    let rows = collective_wall(procs, scale == Scale::Paper);
    print_table(
        "Figure 1: the collective wall — % of MPI-Tile-IO time in global sync",
        "procs",
        &rows,
    );
    emit_json("fig1_collective_wall", &rows);
}
