//! Calibration probe: prints the headline numbers the paper's figures
//! hinge on, so the model constants in `simnet`/`simfs` can be tuned.
//! Not part of the figure set; see DESIGN.md §6.

use bench::figures::*;
use bench::{print_table, Row};
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all");

    if which == "all" || which == "wall" {
        let rows = collective_wall(&[16, 64, 128, 256, 512], true);
        print_table("collective wall (target: ~72% sync at 512)", "procs", &rows);
    }

    if which == "all" || which == "ior" {
        let rows = ior_bandwidth(&[512], &[64], 512 << 20, 4 << 20, Some(128));
        print_table(
            "IOR 512 procs (targets: baseline ~380 MB/s, ParColl best ~5301 MB/s)",
            "procs",
            &rows,
        );
    }

    if which == "all" || which == "tile" {
        let rows = tileio_group_sweep(512, &[1, 4, 16, 64, 256], true);
        print_table(
            "tile-io groups at 512 (target: peak at 64 groups, +210% write)",
            "groups",
            &rows,
        );
    }

    if which == "all" || which == "btio" {
        let rows = btio_bandwidth(&[256, 576], 162, 5, 64);
        print_table("BT-IO class C (target: ParColl > baseline everywhere)", "procs", &rows);
    }

    if which == "all" || which == "flash" {
        let rows = flashio_variants(1024, 80, 64);
        print_table(
            "Flash-IO checkpoint 1024 procs (targets: ParColl ~+38.5% over baseline; w/o Coll ~60 MB/s)",
            "procs",
            &rows,
        );
    }

    if which == "all" || which == "scale" {
        let mut rows: Vec<Row> = Vec::new();
        for p in [256usize, 1024] {
            let base = run_workload(tileio_at(p, true), RunConfig::paper(IoMode::Collective));
            rows.push(Row::new(BASELINE, p as f64, base.write_mbps, "MB/s"));
            let pc = run_workload(
                tileio_at(p, true),
                RunConfig::paper(IoMode::Parcoll { groups: 64.min(p / 8) }),
            );
            rows.push(Row::new("ParColl-64", p as f64, pc.write_mbps, "MB/s"));
        }
        print_table(
            "tile-io scalability (target at 1024: 2700 vs 11400 MB/s)",
            "procs",
            &rows,
        );
    }
}
