//! Figure 8 — "Reduction of Synchronization Cost": the synchronization
//! time of the Figure 7 sweep, in absolute seconds and as a share of the
//! total, versus the subgroup count. The paper: "the synchronization cost
//! is significantly reduced by both absolute value and relative ratio."

use bench::figures::tileio_group_sweep;
use bench::{emit_json, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, groups): (usize, &[usize]) = match scale {
        Scale::Paper => (512, &[1, 2, 4, 8, 16, 32, 64]),
        Scale::Quick => (16, &[1, 2, 4]),
    };
    let rows = tileio_group_sweep(procs, groups, scale == Scale::Paper);
    let mut out = Vec::new();
    for r in &rows {
        out.push(
            Row::new("sync seconds (avg rank)", r.x, r.extra["sync_s_avg"], "s")
                .with("sync_ratio", r.extra["sync_ratio"]),
        );
    }
    print_table(
        "Figure 8: synchronization cost vs subgroups (MPI-Tile-IO, 512 procs)",
        "groups",
        &out,
    );
    emit_json("fig8_sync_reduction", &out);
}
