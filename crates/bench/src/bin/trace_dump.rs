//! `trace_dump` — run a small MPI-Tile-IO collective write with the
//! simtrace sink enabled and emit both observability artifacts:
//!
//! * `trace.json` — Chrome trace-event JSON (load in Perfetto or
//!   `chrome://tracing`): rank → thread, node → process, OSTs in a
//!   separate "storage" process, virtual µs → `ts`.
//! * `trace_metrics.json` — per-track counters, histograms and
//!   span-duration totals, plus cross-track totals.
//!
//! It then prints a collective-wall attribution summary (which rank every
//! global collective waited for, and the ranks that cost the most total
//! wait) and cross-checks the trace against the `PhaseProfile` the MPI-IO
//! layer accounts independently: per rank, the `phase/sync` span total
//! must match `PhaseProfile::sync` to within a microsecond.
//!
//! With `--summary`, the run is repeated through the *streaming* sink
//! (events spilled to disk in chunks): the streamed Perfetto export must
//! be byte-identical to the in-memory one, and the collection stats —
//! total events, peak resident events, memory reduction — plus the
//! interval'd time-series summary are printed. This is the CI smoke
//! proving the O(intervals) path tells the same story as the O(events)
//! one.
//!
//! Usage: `trace_dump [--procs N] [--out DIR] [--top K] [--summary]`

use mpiio::{File, PhaseProfile};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};
use simtrace::{
    chrome_trace_json, collective_ops, metrics_json, series_json, SeriesConfig, TraceSink,
    TrackKey,
};
use std::sync::Arc;
use workloads::tileio::TileIo;
use workloads::Workload;

fn run_traced(sink: &TraceSink, procs: usize) -> Vec<PhaseProfile> {
    let fs = simfs::FileSystem::new(simfs::FsConfig::tiny());
    fs.attach_trace(sink);
    let mut cluster = ClusterConfig::cray_xt(procs, Mapping::Block);
    cluster.trace = sink.clone();

    let w = Arc::new(TileIo::tiny(procs));
    run_cluster(cluster, move |ep| {
        let comm = Communicator::world(&ep);
        let w = Arc::clone(&w);
        let (disp, ft) = w.view(comm.rank());
        let mut f = File::open(&comm, &fs, &w.path(), &Info::new());
        f.set_view(disp, &ft);
        comm.barrier();
        for call in 0..w.ncalls() {
            let (off, bytes) = w.call(comm.rank(), call);
            f.write_at_all(off, &IoBuffer::synthetic(bytes as usize));
        }
        comm.barrier();
        f.close()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let procs: usize = get("--procs").and_then(|v| v.parse().ok()).unwrap_or(16);
    let top_k: usize = get("--top").and_then(|v| v.parse().ok()).unwrap_or(5);
    let out_dir = get("--out").unwrap_or_else(|| "trace_out".into());
    let summary = args.iter().any(|a| a == "--summary");
    assert!(procs >= 2, "need at least 2 ranks for a collective");

    let sink = TraceSink::enabled();
    let profiles = run_traced(&sink, procs);
    let trace = sink.finish();
    let total_bytes = TileIo::tiny(procs).total_bytes();

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let trace_path = format!("{out_dir}/trace.json");
    let metrics_path = format!("{out_dir}/trace_metrics.json");
    let chrome = chrome_trace_json(&trace);
    std::fs::write(&trace_path, &chrome).expect("write trace");
    std::fs::write(&metrics_path, metrics_json(&trace)).expect("write metrics");
    println!(
        "mpi-tile-io collective write, {procs} ranks, {} KiB: wrote {trace_path}, {metrics_path}",
        total_bytes / 1024
    );

    // Reconcile the trace with the independent PhaseProfile accounting:
    // per rank, phase/sync span totals vs PhaseProfile::sync.
    let mut worst = 0.0f64;
    for (rank, prof) in profiles.iter().enumerate() {
        let track = trace
            .track(TrackKey::Rank(rank))
            .expect("every rank has a track");
        let span_us = track.span_total_us("phase", Some("sync"));
        let prof_us = prof.sync.as_micros();
        worst = worst.max((span_us - prof_us).abs());
    }
    println!("sync reconciliation: max |trace - profile| = {worst:.6} µs over {procs} ranks");
    assert!(
        worst < 1.0,
        "trace sync spans diverge from PhaseProfile by {worst} µs"
    );

    if summary {
        streaming_summary(&out_dir, procs, &chrome, &trace);
    }

    // Collective-wall attribution from the rendezvous spans.
    let ops = collective_ops(&trace);
    println!("\n{} collective operations:", ops.len());
    println!(
        "{:>10} {:>4} {:>4} {:>9} {:>12} {:>12} {:>12}",
        "op", "ctx", "seq", "straggler", "last_us", "max_wait_us", "tot_wait_us"
    );
    for op in &ops {
        println!(
            "{:>10} {:>4} {:>4} {:>9} {:>12.1} {:>12.3} {:>12.3}",
            op.op, op.ctx, op.seq, op.straggler, op.last_arrival_us, op.max_wait_us,
            op.total_wait_us
        );
    }

    // Top-K straggler ranks: who the rest of the job waited for, weighted
    // by the total wait their late arrivals caused.
    let mut per_rank: Vec<(usize, u64, f64)> = Vec::new(); // (rank, ops, wait)
    for op in &ops {
        match per_rank.iter_mut().find(|(r, _, _)| *r == op.straggler) {
            Some(e) => {
                e.1 += 1;
                e.2 += op.total_wait_us;
            }
            None => per_rank.push((op.straggler, 1, op.total_wait_us)),
        }
    }
    per_rank.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    println!("\ntop straggler ranks (by total wait inflicted):");
    for (rank, n_ops, wait_us) in per_rank.iter().take(top_k) {
        println!("  rank {rank:>3}: straggler in {n_ops:>3} collectives, {wait_us:>10.1} µs total wait");
    }
}

/// Repeat the run through the streaming sink and verify it tells the
/// same story in a fraction of the memory.
fn streaming_summary(out_dir: &str, procs: usize, chrome: &str, trace: &simtrace::Trace) {
    let spill_dir = format!("{out_dir}/stream_spill");
    let sink = TraceSink::streaming(&spill_dir, 16).expect("create spill directory");
    run_traced(&sink, procs);
    let streamed = sink.finish_stream().expect("finish streamed run");

    let streamed_path = format!("{out_dir}/trace_streamed.json");
    streamed
        .export_chrome_to(std::path::Path::new(&streamed_path))
        .expect("streamed export");
    let streamed_bytes = std::fs::read_to_string(&streamed_path).expect("read streamed export");
    assert_eq!(
        streamed_bytes, chrome,
        "streamed Perfetto export must be byte-identical to the in-memory one"
    );

    let stats = streamed.stats();
    println!(
        "\nstreaming summary: {} events total, {} peak resident ({:.1}x memory reduction), wall {:.1} µs",
        stats.total_events,
        stats.peak_buffered,
        stats.reduction(),
        stats.wall_us
    );
    println!("streamed export byte-identical to in-memory export ({} bytes)", chrome.len());

    let cfg = SeriesConfig::new(stats.wall_us / 64.0);
    let series = streamed.series(cfg).expect("fold streamed series");
    assert_eq!(
        series,
        simtrace::series_from_trace(trace, SeriesConfig::new(stats.wall_us / 64.0)),
        "streamed series fold must match the in-memory fold"
    );
    let series_path = format!("{out_dir}/trace_series.json");
    std::fs::write(&series_path, series_json(&series)).expect("write series");
    println!(
        "time series: {} intervals x {:.1} µs across {} tracks -> {series_path}",
        series.n_intervals,
        series.interval_us,
        series.tracks.len()
    );
}
