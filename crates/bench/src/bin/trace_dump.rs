//! `trace_dump` — run a small MPI-Tile-IO collective write with the
//! simtrace sink enabled and emit both observability artifacts:
//!
//! * `trace.json` — Chrome trace-event JSON (load in Perfetto or
//!   `chrome://tracing`): rank → thread, node → process, OSTs in a
//!   separate "storage" process, virtual µs → `ts`.
//! * `trace_metrics.json` — per-track counters, histograms and
//!   span-duration totals, plus cross-track totals.
//!
//! It then prints a collective-wall attribution summary (which rank every
//! global collective waited for, and the ranks that cost the most total
//! wait) and cross-checks the trace against the `PhaseProfile` the MPI-IO
//! layer accounts independently: per rank, the `phase/sync` span total
//! must match `PhaseProfile::sync` to within a microsecond.
//!
//! Usage: `trace_dump [--procs N] [--out DIR] [--top K]`

use mpiio::{File, PhaseProfile};
use simmpi::{Communicator, Info};
use simnet::{run_cluster, ClusterConfig, IoBuffer, Mapping};
use simtrace::{chrome_trace_json, collective_ops, metrics_json, TraceSink, TrackKey};
use std::sync::Arc;
use workloads::tileio::TileIo;
use workloads::Workload;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |key: &str| {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let procs: usize = get("--procs").and_then(|v| v.parse().ok()).unwrap_or(16);
    let top_k: usize = get("--top").and_then(|v| v.parse().ok()).unwrap_or(5);
    let out_dir = get("--out").unwrap_or_else(|| "trace_out".into());
    assert!(procs >= 2, "need at least 2 ranks for a collective");

    let sink = TraceSink::enabled();
    let fs = simfs::FileSystem::new(simfs::FsConfig::tiny());
    fs.attach_trace(&sink);
    let mut cluster = ClusterConfig::cray_xt(procs, Mapping::Block);
    cluster.trace = sink.clone();

    let w = Arc::new(TileIo::tiny(procs));
    let total_bytes = w.total_bytes();
    let fs2 = fs.clone();
    let profiles: Vec<PhaseProfile> = run_cluster(cluster, move |ep| {
        let comm = Communicator::world(&ep);
        let w = Arc::clone(&w);
        let (disp, ft) = w.view(comm.rank());
        let mut f = File::open(&comm, &fs2, &w.path(), &Info::new());
        f.set_view(disp, &ft);
        comm.barrier();
        for call in 0..w.ncalls() {
            let (off, bytes) = w.call(comm.rank(), call);
            f.write_at_all(off, &IoBuffer::synthetic(bytes as usize));
        }
        comm.barrier();
        f.close()
    });
    let trace = sink.finish();

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let trace_path = format!("{out_dir}/trace.json");
    let metrics_path = format!("{out_dir}/trace_metrics.json");
    std::fs::write(&trace_path, chrome_trace_json(&trace)).expect("write trace");
    std::fs::write(&metrics_path, metrics_json(&trace)).expect("write metrics");
    println!(
        "mpi-tile-io collective write, {procs} ranks, {} KiB: wrote {trace_path}, {metrics_path}",
        total_bytes / 1024
    );

    // Reconcile the trace with the independent PhaseProfile accounting:
    // per rank, phase/sync span totals vs PhaseProfile::sync.
    let mut worst = 0.0f64;
    for (rank, prof) in profiles.iter().enumerate() {
        let track = trace
            .track(TrackKey::Rank(rank))
            .expect("every rank has a track");
        let span_us = track.span_total_us("phase", Some("sync"));
        let prof_us = prof.sync.as_micros();
        worst = worst.max((span_us - prof_us).abs());
    }
    println!("sync reconciliation: max |trace - profile| = {worst:.6} µs over {procs} ranks");
    assert!(
        worst < 1.0,
        "trace sync spans diverge from PhaseProfile by {worst} µs"
    );

    // Collective-wall attribution from the rendezvous spans.
    let ops = collective_ops(&trace);
    println!("\n{} collective operations:", ops.len());
    println!(
        "{:>10} {:>4} {:>4} {:>9} {:>12} {:>12} {:>12}",
        "op", "ctx", "seq", "straggler", "last_us", "max_wait_us", "tot_wait_us"
    );
    for op in &ops {
        println!(
            "{:>10} {:>4} {:>4} {:>9} {:>12.1} {:>12.3} {:>12.3}",
            op.op, op.ctx, op.seq, op.straggler, op.last_arrival_us, op.max_wait_us,
            op.total_wait_us
        );
    }

    // Top-K straggler ranks: who the rest of the job waited for, weighted
    // by the total wait their late arrivals caused.
    let mut per_rank: Vec<(usize, u64, f64)> = Vec::new(); // (rank, ops, wait)
    for op in &ops {
        match per_rank.iter_mut().find(|(r, _, _)| *r == op.straggler) {
            Some(e) => {
                e.1 += 1;
                e.2 += op.total_wait_us;
            }
            None => per_rank.push((op.straggler, 1, op.total_wait_us)),
        }
    }
    per_rank.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    println!("\ntop straggler ranks (by total wait inflicted):");
    for (rank, n_ops, wait_us) in per_rank.iter().take(top_k) {
        println!("  rank {rank:>3}: straggler in {n_ops:>3} collectives, {wait_us:>10.1} µs total wait");
    }
}
