//! Figure 6 — "Benefits of ParColl to IOR collective I/O": aggregate
//! write bandwidth of IOR (each process collectively writing a contiguous
//! 512 MB block in 4 MB transfers to a shared file) at 128 and 512
//! processes, baseline vs ParColl-N with a least group size of 8. The
//! paper reports 380 MB/s for the baseline at 512 processes and up to
//! 5301 MB/s (12.8x) for ParColl.
//!
//! The full 128-transfer sequence is issued at 512 processes; pass
//! `--quick` for a short smoke run.

use bench::figures::ior_bandwidth;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, groups, block, transfer, calls): (&[usize], &[usize], u64, u64, Option<usize>) =
        match scale {
            Scale::Paper => (
                &[128, 512],
                &[2, 4, 8, 16, 32, 64],
                512 << 20,
                4 << 20,
                Some(64), // 64 of 128 transfers: steady state at half the host time
            ),
            Scale::Quick => (&[32], &[2, 4], 64 << 10, 16 << 10, None),
        };
    let rows = ior_bandwidth(procs, groups, block, transfer, calls);
    print_table(
        "Figure 6: IOR collective write bandwidth, baseline vs ParColl-N",
        "procs",
        &rows,
    );
    emit_json("fig6_ior", &rows);
}
