//! Figure 9 — "The Improved Scalability of MPI-Tile-IO": collective-write
//! bandwidth versus process count, baseline vs ParColl at its best group
//! count. The paper: at 1024 processes ParColl reaches 11.4 GB/s, 416% of
//! the baseline's 2.7 GB/s, with improvement "nearly proportional to the
//! number of processes".

use bench::figures::tileio_scalability;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let procs: &[usize] = scale.pick(&[64, 128, 256, 512, 1024], &[8, 16]);
    let rows = tileio_scalability(procs, |p| (p / 8).min(64), scale == Scale::Paper);
    print_table(
        "Figure 9: MPI-Tile-IO write scalability, baseline vs ParColl(best)",
        "procs",
        &rows,
    );
    emit_json("fig9_scalability", &rows);
}
