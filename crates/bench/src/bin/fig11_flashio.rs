//! Figure 11 — "The Performance of Flash IO": checkpoint-write bandwidth
//! of the Flash-IO kernel at 1024 processes under the default aggregator
//! selection and under an explicit 64-aggregator hint, baseline vs
//! ParColl-64, plus independent I/O ("Cray w/o Coll"). The paper: ParColl
//! improves the default case by 38.5%; without collective I/O the
//! checkpoint collapses to ~60 MB/s.

use bench::figures::flashio_variants;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, blocks, groups) = match scale {
        Scale::Paper => (1024, 80, 64),
        Scale::Quick => (16, 4, 4),
    };
    let rows = flashio_variants(procs, blocks, groups);
    print_table(
        "Figure 11: Flash-IO checkpoint bandwidth (1024 procs)",
        "procs",
        &rows,
    );
    emit_json("fig11_flashio", &rows);
}
