//! Ablation — stripe-aligned file domains (`striping_unit` hint): the
//! Lustre-aware refinement that later shipped in Cray's MPI-IO. Aligning
//! aggregator domains to the 4 MB stripe keeps each stripe single-writer
//! and halves the chunk-request count at domain seams; the effect on this
//! model is visible in the request statistics and (mildly) in bandwidth.

use bench::figures::{tileio_at, BASELINE};
use bench::{emit_json, print_table, Row, Scale};
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let procs = scale.pick(256, 16);
    let mut rows = Vec::new();
    for (label, align) in [("even domains", None), ("stripe-aligned domains", Some(4u64 << 20))] {
        let mut cfg = RunConfig::paper(IoMode::Collective);
        if let Some(a) = align {
            cfg.info.set("striping_unit", a);
        }
        let r = run_workload(tileio_at(procs, scale == Scale::Paper), cfg);
        rows.push(
            Row::new(format!("{BASELINE} ({label})"), procs as f64, r.write_mbps, "MB/s")
                .with("fs_requests", r.fs_stats.total_requests as f64)
                .with("mean_req_kb", r.fs_stats.mean_request_bytes() / 1024.0),
        );
    }
    print_table("Ablation: stripe-aligned collective file domains", "procs", &rows);
    emit_json("ablation_alignment", &rows);
}
