//! Ablation — intermediate-view strategies (paper §4.1): on the BT-IO
//! pattern, compare (a) ParColl with reordering intermediate views (the
//! default: the file is stored in logical order), (b) ParColl with
//! physical-layout-preserving scatter, and (c) ParColl with view
//! switching disabled (degenerates to one group). Shows both why view
//! switching is needed for pattern (c) and why the logical layout is the
//! only fast way to materialize it.

use bench::figures::BASELINE;
use bench::{emit_json, print_table, Row, Scale};
use workloads::btio::BtIo;
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let (p, grid, steps, groups) = match scale {
        Scale::Paper => (256, 162, 4, 32),
        Scale::Quick => (16, 24, 2, 4),
    };
    let mut rows = Vec::new();

    let base = run_workload(BtIo::with_grid(p, grid, steps), RunConfig::paper(IoMode::Collective));
    rows.push(Row::new(BASELINE, p as f64, base.write_mbps, "MB/s"));

    let reorder = run_workload(
        BtIo::with_grid(p, grid, steps),
        RunConfig::paper(IoMode::Parcoll { groups }),
    );
    rows.push(Row::new("ParColl (reordering iview)", p as f64, reorder.write_mbps, "MB/s"));

    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups });
    cfg.info.set("parcoll_iview_scatter", "true");
    let scatter = run_workload(BtIo::with_grid(p, grid, steps), cfg);
    rows.push(Row::new("ParColl (scatter iview)", p as f64, scatter.write_mbps, "MB/s"));

    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups });
    cfg.info.set("parcoll_force_iview", "false");
    let noview = run_workload(BtIo::with_grid(p, grid, steps), cfg);
    rows.push(Row::new("ParColl (view switching off)", p as f64, noview.write_mbps, "MB/s"));

    print_table("Ablation: intermediate-view strategies on BT-IO", "procs", &rows);
    emit_json("ablation_iview", &rows);
}
