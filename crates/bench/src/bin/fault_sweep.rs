//! `fault_sweep` — degraded-mode bandwidth under seeded fault plans.
//!
//! Not a paper figure: the paper's evaluation ran on a healthy machine.
//! This sweep prices the robustness machinery (DESIGN.md §10) instead —
//! how collective and ParColl write bandwidth degrade as the injected
//! fault intensity rises:
//!
//! * message-drop probability (each drop costs a retry round-trip),
//! * a uniform OST service-time slowdown,
//! * a single aggregator crash with mid-call failover,
//! * silent-corruption probability with end-to-end checksums on
//!   (DESIGN.md §14) — every flipped piece is detected and repaired with
//!   priced retries, and the row carries the repair volume.
//!
//! Every row is a fully deterministic virtual-time measurement: the same
//! seeded plan always yields the same bandwidth, so these rows are
//! regression-gateable like any figure.
//!
//! The sweep prices the *write* path under faults; the read path's
//! degraded-mode contract — an aggregator crash mid-restart must still
//! deliver byte-exact data through the sieving/list-I/O machinery
//! (DESIGN.md §15) — is pinned by `workloads/tests/read_parity.rs`, and
//! the healthy-machine read bandwidth by the `read_sweep` figure.

use bench::figures::{tileio_at, BASELINE};
use bench::{emit_json, print_table, Row, Scale};
use simnet::{FaultPlan, SimTime};
use simtrace::TraceSink;
use std::sync::Arc;
use workloads::runner::{run_workload, IoMode, RunConfig, RunResult};

fn faulted_run(mode: IoMode, procs: usize, full: bool, plan: Option<FaultPlan>) -> RunResult {
    let mut cfg = RunConfig::paper(mode);
    if let Some(p) = plan {
        cfg.faults = Some(Arc::new(p));
    }
    run_workload(tileio_at(procs, full), cfg)
}

fn main() {
    let scale = Scale::from_args();
    let full = scale == Scale::Paper;
    let (procs, groups) = if full { (128, 8) } else { (16, 4) };
    let modes: [(String, IoMode); 2] = [
        (BASELINE.to_string(), IoMode::Collective),
        (format!("ParColl-{groups}"), IoMode::Parcoll { groups }),
    ];
    let mut rows = Vec::new();

    // Sweep 1: message-drop probability. Every dropped payload is
    // tombstoned and re-delivered after a retry timeout, so bandwidth
    // decays with the drop rate instead of the run hanging.
    for &(ref series, ref mode) in &modes {
        for &p in &[0.0, 0.01, 0.02, 0.05, 0.10] {
            let plan =
                (p > 0.0).then(|| FaultPlan::new(0xD20B).msg_drop(p, None, None));
            let r = faulted_run(mode.clone(), procs, full, plan);
            rows.push(
                Row::new(format!("drop/{series}"), p, r.write_mbps, "MB/s")
                    .with("sync_s_avg", r.profile_avg.sync.as_secs()),
            );
        }
    }

    // Sweep 2: uniform OST slowdown for the whole run. A factor-k
    // service-time multiplier should cost at most k in bandwidth;
    // collective buffering hides part of it behind the exchange.
    for &(ref series, ref mode) in &modes {
        for &factor in &[1.0, 2.0, 4.0, 8.0] {
            let plan = (factor > 1.0).then(|| {
                FaultPlan::new(0x057A).ost_slow(None, factor, SimTime::ZERO, SimTime::secs(1e9))
            });
            let r = faulted_run(mode.clone(), procs, full, plan);
            rows.push(
                Row::new(format!("ost_slow/{series}"), factor, r.write_mbps, "MB/s")
                    .with("io_s_avg", r.profile_avg.io.as_secs()),
            );
        }
    }

    // Sweep 3: one aggregator crash after the first write round — the
    // failover replay path. x = 0 is the fault-free reference.
    for &(ref series, ref mode) in &modes {
        for crash in [false, true] {
            let plan = crash.then(|| FaultPlan::new(0xFA11).aggregator_crash(0, 1));
            let r = faulted_run(mode.clone(), procs, full, plan);
            rows.push(
                Row::new(format!("agg_crash/{series}"), crash as u64 as f64, r.write_mbps, "MB/s")
                    .with("sync_s_avg", r.profile_avg.sync.as_secs()),
            );
        }
    }

    // Sweep 4: silent-corruption probability under the checksum
    // protocol. Bandwidth decays smoothly as repair retries are priced
    // onto the exchange; the traced `pieces_repaired` counter rides
    // along so the row pins the repair *volume*, not just its cost —
    // a protocol change that repairs more (or fewer) pieces trips the
    // gate even if the timing happens to cancel out.
    for &(ref series, ref mode) in &modes {
        for &p in &[0.0, 0.05, 0.10, 0.25, 0.50] {
            let sink = TraceSink::enabled();
            let mut cfg = RunConfig::paper(mode.clone());
            cfg.integrity = true;
            cfg.trace = sink.clone();
            if p > 0.0 {
                cfg.faults = Some(Arc::new(FaultPlan::new(0xC02A).msg_corrupt(p, None, None)));
            }
            let r = run_workload(tileio_at(procs, full), cfg);
            let repaired: u64 = sink
                .finish()
                .tracks
                .iter()
                .map(|t| t.counters.get("pieces_repaired").copied().unwrap_or(0))
                .sum();
            rows.push(
                Row::new(format!("corrupt/{series}"), p, r.write_mbps, "MB/s")
                    .with("pieces_repaired", repaired as f64)
                    .with("sync_s_avg", r.profile_avg.sync.as_secs()),
            );
        }
    }

    print_table(
        "fault_sweep: write bandwidth vs injected fault intensity (MPI-Tile-IO)",
        "intensity",
        &rows,
    );
    emit_json("fault_sweep", &rows);
}
