//! Read sweep — the fig6-style read counterpart (DESIGN.md §15):
//! restart `read_at_all` bandwidth of the hole-dense checkpoint-restart
//! pattern (full tile image written, quarter-width columns read back, 75 %
//! holes per covering extent) as the ParColl subgroup count varies,
//! baseline vs ParColl-N, each with collective data sieving off and on
//! (`cb_ds_read`). The sieved partitioned series must beat the unsieved
//! baseline: list I/O stops fetching the holes, and subgroups localize
//! the read exchange exactly as they do the write.

use bench::figures::restart_read_sweep;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, groups): (usize, &[usize]) = match scale {
        Scale::Paper => (256, &[1, 2, 4, 8, 16, 32]),
        Scale::Quick => (16, &[1, 2, 4]),
    };
    let rows = restart_read_sweep(procs, groups, scale == Scale::Paper, 4);
    print_table(
        "Read sweep: restart read_at_all bandwidth, sieving off/on",
        "groups",
        &rows,
    );
    emit_json("read_sweep", &rows);
}
