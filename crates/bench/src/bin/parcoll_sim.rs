//! `parcoll_sim` — command-line driver for the simulated I/O stack.
//!
//! Run any of the paper's workloads at any scale through any I/O path:
//!
//! ```text
//! parcoll_sim <ior|tileio|btio|flashio> [options]
//!   --procs N            ranks (default 64; btio rounds to a square)
//!   --mode M             baseline | parcoll | independent (default parcoll)
//!   --groups G           ParColl subgroups (default procs/16)
//!   --verify             real data + byte-exact read-back (default synthetic)
//!   --mapping M          block | cyclic (default block)
//!   --cb-nodes N         cap aggregators at one per node, N nodes
//!   --align BYTES        stripe-align collective file domains
//!   --adaptive           adaptive group-size selection
//!   --autotune           online feedback tuning (parcoll::autotune)
//!   --integrity          end-to-end checksums (pieces + at-rest pages)
//!   --scrub              at-rest scrub pass after the run (implies --integrity)
//!   --rot N              plant N seeded at-rest rot extents (with --scrub)
//!   --block BYTES        ior: per-rank block (default 64 MiB)
//!   --transfer BYTES     ior: per-call transfer (default 4 MiB)
//!   --calls N            ior: cap transfer count
//!   --grid N             btio: grid points per dimension (default 64)
//!   --steps N            btio: write steps (default 5)
//!   --blocks N           flashio: blocks per process (default 8)
//! ```
//!
//! Prints bandwidth and the per-phase profile — the numbers the paper's
//! figures are made of.

use simfs::FsConfig;
use simnet::Mapping;
use workloads::btio::BtIo;
use workloads::flashio::FlashIo;
use workloads::ior::Ior;
use workloads::runner::{run_workload, DataMode, IoMode, RunConfig, RunResult};
use workloads::tileio::TileIo;
use workloads::Workload;

struct Args {
    map: std::collections::BTreeMap<String, String>,
    flags: std::collections::BTreeSet<String>,
    workload: String,
}

impl Args {
    fn parse() -> Args {
        let mut it = std::env::args().skip(1);
        let workload = it.next().unwrap_or_else(|| usage("missing workload"));
        let mut map = std::collections::BTreeMap::new();
        let mut flags = std::collections::BTreeSet::new();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .unwrap_or_else(|| usage(&format!("unexpected argument {a:?}")))
                .to_string();
            match key.as_str() {
                "verify" | "adaptive" | "autotune" | "integrity" | "scrub" => {
                    flags.insert(key);
                }
                _ => {
                    let v = it.next().unwrap_or_else(|| usage(&format!("--{key} needs a value")));
                    map.insert(key, v);
                }
            }
        }
        Args {
            map,
            flags,
            workload,
        }
    }

    fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.map.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage(&format!("bad value for --{key}: {v:?}"))),
            None => default,
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.into())
    }
}

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: parcoll_sim <ior|tileio|btio|flashio> [--procs N] [--mode baseline|parcoll|independent] [--groups G] [--verify] [--mapping block|cyclic] [--cb-nodes N] [--align BYTES] [--adaptive] [--autotune] [workload options]");
    std::process::exit(2);
}

fn main() {
    let args = Args::parse();
    let procs: usize = args.get("procs", 64);
    let groups: usize = args.get("groups", (procs / 16).max(2));
    let mode = match args.get_str("mode", "parcoll").as_str() {
        "baseline" => IoMode::Collective,
        "parcoll" => IoMode::Parcoll { groups },
        "independent" => IoMode::Independent,
        other => usage(&format!("unknown mode {other:?}")),
    };
    let mapping = match args.get_str("mapping", "block").as_str() {
        "block" => Mapping::Block,
        "cyclic" => Mapping::Cyclic,
        other => usage(&format!("unknown mapping {other:?}")),
    };

    let mut cfg = RunConfig {
        mode,
        data: if args.flags.contains("verify") {
            DataMode::Verify
        } else {
            DataMode::Synthetic
        },
        info: simmpi::Info::new(),
        mapping,
        fs: if args.flags.contains("verify") {
            FsConfig::tiny()
        } else {
            FsConfig::jaguar()
        },
        read_back: args.flags.contains("verify"),
        trace: simtrace::TraceSink::disabled(),
        faults: None,
        integrity: args.flags.contains("integrity") || args.flags.contains("scrub"),
        scrub: args.flags.contains("scrub"),
        autotune: args
            .flags
            .contains("autotune")
            .then(parcoll::PolicyCache::new),
    };
    if let Some(n) = args.map.get("cb-nodes") {
        cfg.info.set("cb_nodes", n);
    }
    if let Some(a) = args.map.get("align") {
        cfg.info.set("striping_unit", a);
    }
    if args.flags.contains("adaptive") {
        cfg.info.set("parcoll_adaptive", "true");
    }
    let rot: usize = args.get("rot", 0);
    if rot > 0 {
        // Seeded at-rest corruption for the scrubber to find: spread the
        // extents across the front of the file image.
        let mut plan = simnet::FaultPlan::new(0xD1CE);
        for i in 0..rot {
            plan = plan.ost_rot((i as u64) * (1 << 20), 4096);
        }
        cfg.faults = Some(std::sync::Arc::new(plan));
    }

    let result: RunResult = match args.workload.as_str() {
        "ior" => {
            let w = Ior {
                nprocs: procs,
                block_size: args.get("block", 64u64 << 20),
                transfer_size: args.get("transfer", 4u64 << 20),
                max_calls: args.map.get("calls").map(|v| {
                    v.parse().unwrap_or_else(|_| usage("bad --calls"))
                }),
            };
            describe(&w);
            run_workload(w, cfg)
        }
        "tileio" => {
            let w = TileIo::paper(procs);
            describe(&w);
            run_workload(w, cfg)
        }
        "btio" => {
            let q = (procs as f64).sqrt().floor() as usize;
            let w = BtIo::with_grid(q * q, args.get("grid", 64), args.get("steps", 5));
            describe(&w);
            run_workload(w, cfg)
        }
        "flashio" => {
            let mut w = FlashIo::checkpoint(procs);
            w.blocks_per_proc = args.get("blocks", 8);
            describe(&w);
            run_workload(w, cfg)
        }
        other => usage(&format!("unknown workload {other:?}")),
    };

    println!("elapsed (virtual) : {:.4} s", result.write_seconds);
    println!("write bandwidth   : {:.1} MB/s", result.write_mbps);
    if let Some(r) = result.read_mbps {
        println!("read bandwidth    : {r:.1} MB/s (verified byte-exact)");
    }
    let p = &result.profile_avg;
    println!(
        "profile (avg rank): sync {:.4}s | p2p {:.4}s | io {:.4}s  (sync share {:.1}%)",
        p.sync.as_secs(),
        p.p2p.as_secs(),
        p.io.as_secs(),
        p.sync_fraction() * 100.0
    );
    println!(
        "rounds={} collective_calls={}",
        result.profile_max.rounds, result.profile_max.calls
    );
    if let Some(scrub) = &result.scrub {
        println!(
            "scrub: {} files, {:.1} MB scanned, {} extents repaired, {} unrepairable",
            scrub.files_scanned,
            scrub.bytes_scanned as f64 / 1e6,
            scrub.repaired.len(),
            scrub.unrepairable.len()
        );
        for (path, off, len) in &scrub.repaired {
            println!("  repaired {path} [{off}, +{len})");
        }
        for (path, off, len) in &scrub.unrepairable {
            println!("  UNREPAIRABLE {path} [{off}, +{len})");
        }
    }
}

fn describe<W: Workload>(w: &W) {
    println!(
        "workload {} : {} ranks, {} calls, {:.1} MB total",
        w.name(),
        w.nprocs(),
        w.ncalls(),
        w.total_bytes() as f64 / 1e6
    );
}
