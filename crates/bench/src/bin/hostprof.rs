//! `hostprof` — host wall-clock attribution for the simulator's hot
//! paths. Runs the fig1/fig7/fig9 scenarios (the same sweeps `hostperf`
//! times) with the `simtrace::host` profiler armed and prints, per
//! scenario, the top-k host sinks with percentages of measured wall —
//! fiber scheduling vs mailbox churn vs pack/unpack memcpy vs trace
//! recording — so host-performance work starts from measurements.
//!
//! ```text
//! hostprof [--quick] [--top K] [--figure NAME]... [--flame-dir DIR]
//!          [--no-emit]
//! ```
//!
//! Per scenario it also writes `DIR/hostprof_<figure>.collapsed`
//! (collapsed-stack lines for `flamegraph.pl` / inferno / speedscope;
//! `--flame-dir` defaults to `bench_results`) and, unless `--no-emit`,
//! folds every scenario's attribution into
//! `bench_results/BENCH_hostprof.json`: `<fig>/<subsystem>` and
//! `<fig>/site/<name>` percent rows, an `<fig>/attributed` coverage
//! row, and `<fig>/counter/<name>` rows with the flatten-cache and
//! buffer-pool hit counts. Host-side only: the virtual-time artifacts
//! of the profiled runs are byte-identical with the profiler on or off.

use bench::hostprof::{attribution_rows, print_top, profile, scenarios, write_collapsed};
use bench::{emit_json, Scale};
use std::path::PathBuf;

struct Args {
    scale: Scale,
    top: usize,
    figures: Vec<String>,
    flame_dir: PathBuf,
    emit: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::from_args(),
        top: 8,
        figures: Vec::new(),
        flame_dir: PathBuf::from("bench_results"),
        emit: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("hostprof: {} needs a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {}
            "--top" => {
                out.top = value(i).parse().expect("--top: not a number");
                i += 1;
            }
            "--figure" => {
                out.figures.push(value(i).to_string());
                i += 1;
            }
            "--flame-dir" => {
                out.flame_dir = PathBuf::from(value(i));
                i += 1;
            }
            "--no-emit" => out.emit = false,
            other => {
                eprintln!("hostprof: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    out
}

fn main() {
    let args = parse_args();
    if cfg!(feature = "hostprof-off") {
        eprintln!(
            "hostprof: built with the hostprof-off feature — the probes are \
             compiled out and no samples can be collected"
        );
        std::process::exit(2);
    }
    let mut rows = Vec::new();
    let mut ran = 0usize;
    for (name, run) in scenarios(args.scale) {
        if !args.figures.is_empty() && !args.figures.iter().any(|f| name.starts_with(f.as_str())) {
            continue;
        }
        ran += 1;
        // One unprofiled warmup so caches and pools are in steady state
        // and the attribution reflects the loop the `hostperf` medians
        // time, not first-run setup.
        run();
        let profiled = profile(&run);
        print_top(name, &profiled, args.top);
        let flame = args.flame_dir.join(format!("hostprof_{name}.collapsed"));
        match write_collapsed(&flame, &profiled) {
            Ok(()) => println!("  collapsed stacks -> {}", flame.display()),
            Err(e) => eprintln!("hostprof: cannot write {}: {e}", flame.display()),
        }
        rows.extend(attribution_rows(name, &profiled));
        println!();
    }
    if ran == 0 {
        eprintln!("hostprof: no scenario matches {:?}", args.figures);
        std::process::exit(2);
    }
    if args.emit {
        emit_json("BENCH_hostprof", &rows);
    }
}
