//! Figure 5 — "Distribution of I/O Aggregators": reprints the paper's
//! table from the implementation. 8 processes on 4 dual-core nodes, two
//! subgroups; block and cyclic placements, with the paper's two
//! aggregator hints (one per node; an explicit three-node list).

use parcoll::aggdist::distribute_aggregators;
use simnet::{Mapping, Topology};

fn show(title: &str, topo: &Topology, agg_ranks: &[usize]) {
    let group_of = vec![0, 0, 0, 0, 1, 1, 1, 1];
    let aggs = distribute_aggregators(agg_ranks, &group_of, 2, |r| topo.node_of(r));
    println!("\n{title}");
    for node in 0..topo.nnodes() {
        let ranks: Vec<String> = topo
            .ranks_on_node(node)
            .iter()
            .map(|r| format!("P{r}"))
            .collect();
        println!("  N{node} ({})", ranks.join(", "));
    }
    println!(
        "  IO aggregator hint: {}",
        agg_ranks
            .iter()
            .map(|r| format!("N{}", topo.node_of(*r)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (g, list) in aggs.iter().enumerate() {
        let desc: Vec<String> = list
            .iter()
            .map(|&r| format!("N{}(P{})", topo.node_of(r), r))
            .collect();
        println!("  SubGroup {}: aggregators {}", g + 1, desc.join(", "));
    }
}

fn main() {
    println!("Figure 5: distribution of I/O aggregators (8 procs, 4 nodes, 2 subgroups)");

    let block = Topology::new(4, 2, 8, Mapping::Block).unwrap();
    show("Block mapping, aggregators on every node:", &block, &[0, 2, 4, 6]);

    let cyclic = Topology::new(4, 2, 8, Mapping::Cyclic).unwrap();
    show(
        "Cyclic mapping, three aggregators (nodes N0, N2, N3):",
        &cyclic,
        &[0, 2, 3],
    );

    println!("\n(Asserted against the paper's table in parcoll::aggdist unit tests.)");
}
