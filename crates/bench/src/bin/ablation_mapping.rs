//! Ablation — process placement under NIC injection serialization: both
//! cores of a Cray XT PE share one SeaStar, so which ranks are co-located
//! matters once injection is a bottleneck. The paper's Figure 5 uses
//! block and cyclic mappings for aggregator distribution; here we measure
//! the mapping's effect on the exchange phase directly by enabling the
//! per-node injection port in the network model.

use bench::figures::tileio_at;
use bench::{emit_json, print_table, Row, Scale};
use simnet::Mapping;
use workloads::runner::{run_workload_with_net, IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let procs = scale.pick(256, 16);
    let mut rows = Vec::new();
    for (label, mapping) in [("block mapping", Mapping::Block), ("cyclic mapping", Mapping::Cyclic)] {
        for (nic, nic_label) in [(false, "shared-nothing"), (true, "shared NIC")] {
            let mut cfg = RunConfig::paper(IoMode::Parcoll { groups: (procs / 16).max(2) });
            cfg.mapping = mapping;
            let r = run_workload_with_net(tileio_at(procs, scale == Scale::Paper), cfg, move |net| {
                net.nic_serialize = nic;
            });
            rows.push(
                Row::new(format!("{label}, {nic_label}"), procs as f64, r.write_mbps, "MB/s")
                    .with("p2p_s", r.profile_avg.p2p.as_secs()),
            );
        }
    }
    print_table(
        "Ablation: rank placement x NIC injection serialization (tile-io, ParColl)",
        "procs",
        &rows,
    );
    emit_json("ablation_mapping", &rows);
}
