//! `report` — render the JSON series under `bench_results/` as markdown
//! tables (one per figure), so EXPERIMENTS.md numbers are regenerable
//! with two commands: run the figure binaries, then `report`. Simtrace
//! metrics documents (from `trace_dump`) are folded in as their own
//! tables.

use bench::{print_metrics_doc, rows_from_json, Row};
use simtrace::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

fn main() {
    let dir = Path::new("bench_results");
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("no bench_results directory ({e}); run the figure binaries first");
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let Some(text) = std::fs::read_to_string(&path).ok() else {
            eprintln!("skipping {name}: unreadable");
            continue;
        };
        if let Some(rows) = rows_from_json(&text) {
            println!("\n### {name}\n");
            print_markdown(&rows);
        } else if let Some(doc) = Json::parse(&text)
            .ok()
            .filter(|d| d.get("kind").and_then(Json::as_str) == Some("simtrace_metrics"))
        {
            println!("\n### {name} (trace metrics)\n");
            print_metrics_doc(&doc);
        } else {
            eprintln!("skipping {name}: neither rows nor trace metrics");
        }
    }
}

/// Pivot rows into series × x markdown.
fn print_markdown(rows: &[Row]) {
    let mut xs: Vec<String> = Vec::new();
    let mut series: Vec<String> = Vec::new();
    let mut cell: BTreeMap<(String, String), f64> = BTreeMap::new();
    let unit = rows.first().map(|r| r.unit.clone()).unwrap_or_default();
    for r in rows {
        let x = if r.x.fract() == 0.0 {
            format!("{}", r.x as i64)
        } else {
            format!("{:.2}", r.x)
        };
        if !xs.contains(&x) {
            xs.push(x.clone());
        }
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
        cell.insert((r.series.clone(), x), r.y);
    }
    print!("| series ({unit}) |");
    for x in &xs {
        print!(" {x} |");
    }
    println!();
    print!("|---|");
    for _ in &xs {
        print!("---|");
    }
    println!();
    for s in &series {
        print!("| {s} |");
        for x in &xs {
            match cell.get(&(s.clone(), x.clone())) {
                Some(v) => print!(" {v:.1} |"),
                None => print!(" — |"),
            }
        }
        println!();
    }
}
