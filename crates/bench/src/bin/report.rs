//! `report` — render the JSON series under `bench_results/` as markdown
//! tables (one per figure), so EXPERIMENTS.md numbers are regenerable
//! with two commands: run the figure binaries, then `report`. Simtrace
//! metrics documents (from `trace_dump`), run digests (from `explain`),
//! diff reports and time-series documents are folded in as their own
//! sections.
//!
//! `report --check-docs` runs the docs-drift gate instead: every
//! `<!-- check: ... -->` marker in ARCHITECTURE.md, DESIGN.md and
//! EXPERIMENTS.md is verified against the committed rows (see
//! `bench::doccheck`), exiting 1 on any quoted figure that no longer
//! matches and 2 when the docs carry no markers at all.

use bench::doccheck::{parse_markers, verify};
use bench::{print_metrics_doc, rows_from_json, Row};
use simtrace::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// Docs whose quoted figures are under the drift gate.
const CHECKED_DOCS: &[&str] = &["ARCHITECTURE.md", "DESIGN.md", "EXPERIMENTS.md"];

fn main() {
    if std::env::args().any(|a| a == "--check-docs") {
        check_docs();
        return;
    }
    let dir = Path::new("bench_results");
    let mut entries: Vec<_> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect(),
        Err(e) => {
            eprintln!("no bench_results directory ({e}); run the figure binaries first");
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let Some(text) = std::fs::read_to_string(&path).ok() else {
            eprintln!("skipping {name}: unreadable");
            continue;
        };
        if let Some(rows) = rows_from_json(&text) {
            println!("\n### {name}\n");
            print_markdown(&rows);
            continue;
        }
        let Ok(doc) = Json::parse(&text) else {
            eprintln!("skipping {name}: neither rows nor a known document");
            continue;
        };
        match doc.get("kind").and_then(Json::as_str) {
            Some("simtrace_metrics") => {
                println!("\n### {name} (trace metrics)\n");
                print_metrics_doc(&doc);
            }
            Some("parcoll_run_digest") => {
                println!("\n### {name} (run digest)\n");
                print_digest_doc(&doc);
            }
            Some("simtrace_diff") => {
                println!("\n### {name} (run diff)\n");
                print_diff_doc(&doc);
            }
            Some("simtrace_series") => {
                println!("\n### {name} (time series)\n");
                print_series_doc(&doc);
            }
            _ => eprintln!("skipping {name}: neither rows nor a known document"),
        }
    }
}

/// Run the docs-drift gate and exit.
fn check_docs() {
    let mut checks = Vec::new();
    for doc in CHECKED_DOCS {
        let Ok(text) = std::fs::read_to_string(doc) else {
            eprintln!("check-docs: cannot read {doc} (run from the repo root)");
            std::process::exit(2);
        };
        match parse_markers(doc, &text) {
            Ok(mut c) => checks.append(&mut c),
            Err(e) => {
                eprintln!("check-docs: {e}");
                std::process::exit(2);
            }
        }
    }
    if checks.is_empty() {
        eprintln!(
            "check-docs: no <!-- check: ... --> markers in {CHECKED_DOCS:?} — the gate guards nothing"
        );
        std::process::exit(2);
    }
    let failures = verify(&checks, Path::new("bench_results"));
    if failures.is_empty() {
        println!(
            "check-docs: {} quoted figure(s) across {} doc(s) match bench_results",
            checks.len(),
            CHECKED_DOCS.len()
        );
    } else {
        eprintln!("check-docs: {} drifted figure(s):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}

/// Summarize a run digest: wall, path phases, heaviest rounds.
fn print_digest_doc(doc: &Json) {
    let wall = doc.get("wall_us").and_then(Json::as_f64).unwrap_or(0.0);
    let label = doc.get("label").and_then(Json::as_str).unwrap_or("?");
    println!("run `{label}`: wall {:.1} us", wall);
    if let Some(phases) = doc.get("path_phases_us").and_then(Json::as_obj) {
        print!("critical path:");
        for (phase, us) in phases {
            print!(" {phase} {:.1} us,", us.as_f64().unwrap_or(0.0));
        }
        println!();
    }
    let n = |k: &str| doc.get(k).and_then(Json::as_array).map_or(0, <[Json]>::len);
    println!(
        "{} ranks, {} collectives, {} osts, {} rounds",
        n("ranks"),
        n("collectives"),
        n("osts"),
        n("rounds")
    );
}

/// Print a diff report's findings as a markdown table.
fn print_diff_doc(doc: &Json) {
    let base = doc.get("base").and_then(Json::as_str).unwrap_or("?");
    let head = doc.get("head").and_then(Json::as_str).unwrap_or("?");
    println!("`{base}` -> `{head}`\n");
    println!("| # | finding |");
    println!("|---|---|");
    let findings = doc.get("findings").and_then(Json::as_array).unwrap_or(&[]);
    for (i, f) in findings.iter().enumerate() {
        let text = f.get("text").and_then(Json::as_str).unwrap_or("?");
        println!("| {} | {text} |", i + 1);
    }
}

/// Summarize a time-series document: interval grid plus per-track series.
fn print_series_doc(doc: &Json) {
    let interval = doc.get("interval_us").and_then(Json::as_f64).unwrap_or(0.0);
    let n = doc.get("n_intervals").and_then(Json::as_f64).unwrap_or(0.0);
    let wall = doc.get("wall_us").and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{n:.0} intervals x {interval:.1} us (wall {:.1} us)",
        wall
    );
    let tracks = doc.get("tracks").and_then(Json::as_array).unwrap_or(&[]);
    for t in tracks {
        let track = t.get("track").and_then(Json::as_str).unwrap_or("?");
        let names: Vec<&str> = t
            .get("series")
            .and_then(Json::as_obj)
            .map(|o| o.iter().map(|(k, _)| k.as_str()).collect())
            .unwrap_or_default();
        println!("  {track}: {}", names.join(", "));
    }
}

/// Pivot rows into series × x markdown.
fn print_markdown(rows: &[Row]) {
    let mut xs: Vec<String> = Vec::new();
    let mut series: Vec<String> = Vec::new();
    let mut cell: BTreeMap<(String, String), f64> = BTreeMap::new();
    let unit = rows.first().map(|r| r.unit.clone()).unwrap_or_default();
    for r in rows {
        let x = if r.x.fract() == 0.0 {
            format!("{}", r.x as i64)
        } else {
            format!("{:.2}", r.x)
        };
        if !xs.contains(&x) {
            xs.push(x.clone());
        }
        if !series.contains(&r.series) {
            series.push(r.series.clone());
        }
        cell.insert((r.series.clone(), x), r.y);
    }
    print!("| series ({unit}) |");
    for x in &xs {
        print!(" {x} |");
    }
    println!();
    print!("|---|");
    for _ in &xs {
        print!("---|");
    }
    println!();
    for s in &series {
        print!("| {s} |");
        for x in &xs {
            match cell.get(&(s.clone(), x.clone())) {
                Some(v) => print!(" {v:.1} |"),
                None => print!(" — |"),
            }
        }
        println!();
    }
}
