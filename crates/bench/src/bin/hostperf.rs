//! `hostperf` — wall-clock timing of figure regeneration (host seconds,
//! not virtual seconds). Complements `regress`, which pins the *virtual*
//! results: this harness pins how long the simulator takes to produce
//! them, so host-performance regressions are visible in review instead
//! of silently making the paper-scale gate impractical.
//!
//! ```text
//! hostperf [--quick] [--iters N] [--warmup N] [--series LABEL]
//!          [--stack-size BYTES] [--check <baseline.json>] [--no-emit]
//! ```
//!
//! Each tracked figure sweep runs in-process (no exec overhead): `warmup`
//! discarded runs, then `iters` timed runs; the row reports the median
//! with min/max/mean extras. Series are labeled `<figure>@<LABEL>` so one
//! document can hold several builds side by side — the committed
//! `bench_results/BENCH_hostperf.json` carries the pre-PR baseline series
//! next to the current one, which is how speedups stay reviewable.
//!
//! `--check` compares this run's medians against the matching series in a
//! baseline document and exits nonzero when any figure regressed by more
//! than 25% wall-clock — the CI smoke gate. `--stack-size` overrides the
//! per-rank thread stack for every cluster the sweeps spawn (see
//! `ClusterConfig::stack_size` for the measured high-water mark).

use bench::figures::{collective_wall, tileio_group_sweep, tileio_scalability};
use bench::{emit_json, print_table, rows_from_json, Row, Scale};
use std::time::Instant;

/// Wall-clock regression tolerance for `--check`: fresh median may be at
/// most `1 + HOSTPERF_TOL` times the baseline median.
const HOSTPERF_TOL: f64 = 0.25;

struct Args {
    scale: Scale,
    iters: usize,
    warmup: usize,
    series: String,
    check: Option<String>,
    emit: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::from_args(),
        iters: 5,
        warmup: 1,
        series: "HEAD".to_string(),
        check: None,
        emit: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("hostperf: {} needs a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {}
            "--iters" => {
                out.iters = value(i).parse().expect("--iters: not a number");
                i += 1;
            }
            "--warmup" => {
                out.warmup = value(i).parse().expect("--warmup: not a number");
                i += 1;
            }
            "--series" => {
                out.series = value(i).to_string();
                i += 1;
            }
            "--stack-size" => {
                let bytes: usize = value(i).parse().expect("--stack-size: not a number");
                simnet::set_default_stack_size(bytes);
                i += 1;
            }
            "--check" => {
                out.check = Some(value(i).to_string());
                i += 1;
            }
            "--no-emit" => out.emit = false,
            other => {
                eprintln!("hostperf: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(out.iters >= 1, "--iters must be at least 1");
    out
}

/// The figure sweeps the trajectory tracks. `fig1_collective_wall` is the
/// headline (the sweep every PR's speedup claim is judged on); the others
/// cover the ParColl subgroup path and the multi-size scalability sweep.
fn tracked(scale: Scale) -> Vec<(&'static str, Box<dyn Fn()>)> {
    let full = scale == Scale::Paper;
    vec![
        (
            "fig1_collective_wall",
            Box::new(move || {
                let procs: &[usize] = if full { &[16, 32, 64, 128, 256, 512] } else { &[8, 16, 32] };
                std::hint::black_box(collective_wall(procs, full));
            }) as Box<dyn Fn()>,
        ),
        (
            "fig7_tileio_groups",
            Box::new(move || {
                let (procs, groups): (usize, &[usize]) = if full {
                    (512, &[1, 2, 4, 8, 16, 32, 64, 128, 256])
                } else {
                    (16, &[1, 2, 4])
                };
                std::hint::black_box(tileio_group_sweep(procs, groups, full));
            }),
        ),
        (
            "fig9_scalability",
            Box::new(move || {
                let procs: &[usize] = if full { &[64, 128, 256, 512, 1024] } else { &[8, 16] };
                std::hint::black_box(tileio_scalability(procs, |p| (p / 8).min(64), full));
            }),
        ),
        (
            // The fault path: an aggregator crash after the first write
            // round forces the failover replay (re-dissemination, cursor
            // rebuild, adopted-domain exchange) on every collective call
            // that follows — this row prices that machinery in host time.
            "chaos_recovery",
            Box::new(move || {
                use workloads::runner::{run_workload, IoMode, RunConfig};
                use workloads::tileio::TileIo;
                let ranks = if full { 64 } else { 16 };
                let mut cfg = RunConfig::paper(IoMode::Collective);
                cfg.info.set("cb_nodes", 4i64);
                cfg.info.set("cb_buffer_size", 128i64);
                cfg.faults = Some(std::sync::Arc::new(
                    simnet::FaultPlan::new(0xDEAD).aggregator_crash(0, 1),
                ));
                std::hint::black_box(run_workload(TileIo::tiny(ranks), cfg));
            }),
        ),
    ]
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    for (name, run) in tracked(args.scale) {
        for _ in 0..args.warmup {
            run();
        }
        let mut samples = Vec::with_capacity(args.iters);
        for _ in 0..args.iters {
            let t0 = Instant::now();
            run();
            samples.push(t0.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        rows.push(
            Row::new(format!("{name}@{}", args.series), 0.0, median(&samples), "s")
                .with("min", samples[0])
                .with("max", *samples.last().unwrap())
                .with("mean", mean)
                .with("iters", args.iters as f64),
        );
    }
    print_table("hostperf: figure regeneration wall-clock (median)", "-", &rows);

    if let Some(baseline_path) = &args.check {
        let text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
            eprintln!("hostperf: cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = rows_from_json(&text).unwrap_or_else(|| {
            eprintln!("hostperf: {baseline_path} is not a row document");
            std::process::exit(2);
        });
        let mut failures = 0usize;
        for fresh in &rows {
            let Some(base) = baseline.iter().find(|b| b.series == fresh.series) else {
                println!("hostperf: {} has no baseline series (skipped)", fresh.series);
                continue;
            };
            let ratio = fresh.y / base.y.max(f64::MIN_POSITIVE);
            let verdict = if ratio > 1.0 + HOSTPERF_TOL {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "hostperf: {} {:.4}s vs baseline {:.4}s ({:+.1}%) {verdict}",
                fresh.series,
                fresh.y,
                base.y,
                (ratio - 1.0) * 100.0
            );
        }
        if failures > 0 {
            eprintln!("hostperf: {failures} figure(s) regressed >25% wall-clock");
            std::process::exit(1);
        }
    }

    if args.emit {
        emit_json("BENCH_hostperf", &rows);
    }
}
