//! `hostperf` — wall-clock timing of figure regeneration (host seconds,
//! not virtual seconds). Complements `regress`, which pins the *virtual*
//! results: this harness pins how long the simulator takes to produce
//! them, so host-performance regressions are visible in review instead
//! of silently making the paper-scale gate impractical.
//!
//! ```text
//! hostperf [--quick] [--iters N] [--warmup N] [--series LABEL]
//!          [--figure NAME]... [--stack-size BYTES] [--profile]
//!          [--workers N] [--workers-matrix] [--integrity-ab]
//!          [--check <baseline.json>] [--tol FIGURE=REL[:ABS]]...
//!          [--check-overhead <baseline.json>] [--out PATH] [--no-emit]
//! ```
//!
//! Each tracked figure sweep runs in-process (no exec overhead): `warmup`
//! discarded runs, then `iters` timed runs; the row reports the median
//! with min/max/mean extras. Series are labeled `<figure>@<LABEL>` so one
//! document can hold several builds side by side — the committed
//! `bench_results/BENCH_hostperf.json` carries the pre-PR baseline series
//! next to the current one, which is how speedups stay reviewable.
//!
//! `--check` compares this run's medians against the matching series in a
//! baseline document and exits nonzero on a wall-clock regression — the
//! CI smoke gate. The envelope is **per figure** (like `bench::regress`
//! tolerances): a millisecond-scale series like fig1 gets an absolute
//! floor absorbing scheduler noise without loosening the relative gate
//! on the slower, steadier sweeps; `--tol FIGURE=REL[:ABS]` overrides a
//! figure's envelope from the command line.
//!
//! `--check-overhead` is the profiler A/B gate: it compares this build's
//! medians against a baseline emitted by a `--features hostprof-off`
//! build (probes compiled out) by figure name, ignoring `@LABEL`, and
//! fails if the disarmed probes cost more than 2%. `--profile` runs one
//! extra profiled iteration per figure after timing and prints the
//! `hostprof` attribution (never affecting the timed samples).
//! `--stack-size` overrides the per-rank thread stack for every cluster
//! the sweeps spawn (see `ClusterConfig::stack_size`).
//!
//! `--integrity-ab` is the checksum-cost gate (DESIGN.md §14): it times
//! fig1/fig9-shaped *real-data* sweeps twice in-process — end-to-end
//! integrity off, then on — and fails if checksums-on costs more than 5%
//! wall-clock. Real data matters: the default tracked sweeps run
//! synthetic buffers, where sealing is a placeholder and an A/B would
//! measure nothing. Both sides are emitted as `<figure>@integrity-off` /
//! `@integrity-on` rows so the trajectory is reviewable.
//!
//! `--workers N` pins the sharded fiber executor's worker count for the
//! whole run (equivalent to `SIMNET_WORKERS=N`; CI's overhead A/B runs
//! at `--workers 4` so the gate covers the multi-threaded scheduler).
//! `--workers-matrix` additionally times fig1/fig7/fig9 at
//! `SIMNET_WORKERS={1,2,4,8}` and emits them as `<figure>@workers<N>`
//! series rows — the committed sharded-executor trajectory. Virtual
//! results are bitwise identical across the matrix (the determinism
//! suite pins that); only host wall time moves. Sharded rows get their
//! own looser one-sided `--check` envelope: on shared runners the
//! worker threads contend with whatever else the machine runs, and on
//! single-core runners `workers>1` legitimately costs scheduling
//! overhead instead of gaining parallelism.

use bench::figures::{collective_wall, restart_read_sweep, tileio_group_sweep, tileio_scalability};
use bench::regress::Tolerance;
use bench::{emit_json, print_table, rows_from_json, rows_to_json, Row, Scale};
use std::time::Instant;

/// Runtime-off overhead budget for `--check-overhead`: the default build
/// (probes compiled in, disarmed) may cost at most 2% over the
/// `hostprof-off` build, plus a 0.1 ms absolute floor so millisecond
/// figures don't fail on scheduler noise.
const OVERHEAD_TOL: Tolerance = Tolerance { rel: 0.02, abs: 1e-4 };

/// `--integrity-ab` budget: checksums-on may cost at most 5% wall over
/// checksums-off on the same real-data sweep, plus a 2 ms absolute floor
/// so the quick-scale (tens of ms) sweeps don't fail on scheduler noise.
const INTEGRITY_TOL: Tolerance = Tolerance { rel: 0.05, abs: 2e-3 };

/// Per-figure `--check` envelope. fig1 regenerates in ~3 ms at quick
/// scale — pure relative gating would make it the loosest or the
/// noisiest series depending on the constant, so the fast sweeps get an
/// absolute floor and the long steady ones a tighter relative bound.
/// `@workers<N>` sharded series get their own one-sided envelope:
/// multi-worker wall time depends on how many cores the runner actually
/// has free, so the budget is looser both relatively and absolutely
/// (still one-sided — a sharded config can only fail by getting
/// *slower* than its own baseline). Overrides match either the bare
/// figure name or the full `figure@label` series.
fn check_tolerance(series: &str, overrides: &[(String, Tolerance)]) -> Tolerance {
    let figure = figure_of(series);
    if let Some((_, tol)) = overrides.iter().find(|(f, _)| f == series || f == figure) {
        return *tol;
    }
    if let Some((_, label)) = series.split_once('@') {
        if label.starts_with("workers") {
            return Tolerance { rel: 0.40, abs: 0.005 };
        }
    }
    match figure {
        "fig7_tileio_groups" => Tolerance { rel: 0.20, abs: 0.002 },
        // The read sweep runs every point twice (sieving off/on), so it
        // gets a slightly higher absolute floor; still one-sided.
        "read_sweep" => Tolerance { rel: 0.25, abs: 0.003 },
        _ => Tolerance { rel: 0.25, abs: 0.002 },
    }
}

/// The figure name a series belongs to (`fig1_collective_wall@HEAD` →
/// `fig1_collective_wall`).
fn figure_of(series: &str) -> &str {
    series.split('@').next().unwrap_or(series)
}

struct Args {
    scale: Scale,
    iters: usize,
    warmup: usize,
    series: String,
    figures: Vec<String>,
    profile: bool,
    workers_matrix: bool,
    integrity_ab: bool,
    check: Option<String>,
    check_overhead: Option<String>,
    tol_overrides: Vec<(String, Tolerance)>,
    out: Option<String>,
    emit: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        scale: Scale::from_args(),
        iters: 5,
        warmup: 1,
        series: "HEAD".to_string(),
        figures: Vec::new(),
        profile: false,
        workers_matrix: false,
        integrity_ab: false,
        check: None,
        check_overhead: None,
        tol_overrides: Vec::new(),
        out: None,
        emit: true,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).unwrap_or_else(|| {
                eprintln!("hostperf: {} needs a value", argv[i]);
                std::process::exit(2);
            })
        };
        match argv[i].as_str() {
            "--quick" => {}
            "--iters" => {
                out.iters = value(i).parse().expect("--iters: not a number");
                i += 1;
            }
            "--warmup" => {
                out.warmup = value(i).parse().expect("--warmup: not a number");
                i += 1;
            }
            "--series" => {
                out.series = value(i).to_string();
                i += 1;
            }
            "--figure" => {
                out.figures.push(value(i).to_string());
                i += 1;
            }
            "--profile" => out.profile = true,
            "--workers" => {
                let n: usize = value(i).parse().expect("--workers: not a number");
                simnet::set_workers(n);
                i += 1;
            }
            "--workers-matrix" => out.workers_matrix = true,
            "--integrity-ab" => out.integrity_ab = true,
            "--stack-size" => {
                let bytes: usize = value(i).parse().expect("--stack-size: not a number");
                simnet::set_default_stack_size(bytes);
                i += 1;
            }
            "--check" => {
                out.check = Some(value(i).to_string());
                i += 1;
            }
            "--check-overhead" => {
                out.check_overhead = Some(value(i).to_string());
                i += 1;
            }
            "--tol" => {
                out.tol_overrides.push(parse_tol(value(i)));
                i += 1;
            }
            "--out" => {
                out.out = Some(value(i).to_string());
                i += 1;
            }
            "--no-emit" => out.emit = false,
            other => {
                eprintln!("hostperf: unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    assert!(out.iters >= 1, "--iters must be at least 1");
    out
}

/// Parse `FIGURE=REL[:ABS]` (e.g. `fig1_collective_wall=0.4:0.005`).
fn parse_tol(spec: &str) -> (String, Tolerance) {
    let bad = || -> ! {
        eprintln!("hostperf: --tol wants FIGURE=REL[:ABS], got {spec:?}");
        std::process::exit(2);
    };
    let Some((figure, rest)) = spec.split_once('=') else { bad() };
    let (rel, abs) = match rest.split_once(':') {
        Some((r, a)) => (r.parse().unwrap_or_else(|_| bad()), a.parse().unwrap_or_else(|_| bad())),
        None => (rest.parse().unwrap_or_else(|_| bad()), 0.0),
    };
    (figure.to_string(), Tolerance { rel, abs })
}

/// The figure sweeps the trajectory tracks. `fig1_collective_wall` is the
/// headline (the sweep every PR's speedup claim is judged on); the others
/// cover the ParColl subgroup path and the multi-size scalability sweep.
fn tracked(scale: Scale) -> Vec<bench::hostprof::Scenario> {
    let full = scale == Scale::Paper;
    vec![
        (
            "fig1_collective_wall",
            Box::new(move || {
                let procs: &[usize] = if full { &[16, 32, 64, 128, 256, 512] } else { &[8, 16, 32] };
                std::hint::black_box(collective_wall(procs, full));
            }) as Box<dyn Fn()>,
        ),
        (
            "fig7_tileio_groups",
            Box::new(move || {
                let (procs, groups): (usize, &[usize]) = if full {
                    (512, &[1, 2, 4, 8, 16, 32, 64, 128, 256])
                } else {
                    (16, &[1, 2, 4])
                };
                std::hint::black_box(tileio_group_sweep(procs, groups, full));
            }),
        ),
        (
            "fig9_scalability",
            Box::new(move || {
                let procs: &[usize] = if full { &[64, 128, 256, 512, 1024] } else { &[8, 16] };
                std::hint::black_box(tileio_scalability(procs, |p| (p / 8).min(64), full));
            }),
        ),
        (
            // The read path: the restart read sweep exercises the sieve
            // decision, the list-I/O coalescer, and the collective read
            // exchange — this row prices the read machinery in host time.
            "read_sweep",
            Box::new(move || {
                let (procs, groups): (usize, &[usize]) = if full {
                    (256, &[1, 2, 4, 8, 16, 32])
                } else {
                    (16, &[1, 2, 4])
                };
                std::hint::black_box(restart_read_sweep(procs, groups, full, 4));
            }),
        ),
        (
            // The fault path: an aggregator crash after the first write
            // round forces the failover replay (re-dissemination, cursor
            // rebuild, adopted-domain exchange) on every collective call
            // that follows — this row prices that machinery in host time.
            "chaos_recovery",
            Box::new(move || {
                use workloads::runner::{run_workload, IoMode, RunConfig};
                use workloads::tileio::TileIo;
                let ranks = if full { 64 } else { 16 };
                let mut cfg = RunConfig::paper(IoMode::Collective);
                cfg.info.set("cb_nodes", 4i64);
                cfg.info.set("cb_buffer_size", 128i64);
                cfg.faults = Some(std::sync::Arc::new(
                    simnet::FaultPlan::new(0xDEAD).aggregator_crash(0, 1),
                ));
                std::hint::black_box(run_workload(TileIo::tiny(ranks), cfg));
            }),
        ),
    ]
}

/// The fig1/fig9-shaped sweeps the `--integrity-ab` gate times, each
/// parameterized by the checksum knob. Paper configuration on both
/// sides — the same synthetic regime the tracked fig1/fig9 sweeps run —
/// so the A/B isolates what turning integrity on costs the figure
/// pipeline itself: the hint plumbing, trailer bookkeeping, and per-page
/// sum tracking (synthetic pages record a marker, real hashing only
/// happens where data is real).
fn integrity_scenarios(scale: Scale) -> Vec<(&'static str, Box<dyn Fn(bool)>)> {
    use workloads::runner::{run_workload, IoMode, RunConfig};
    let full = scale == Scale::Paper;
    let paper_run = move |p: usize, mode: IoMode, integrity: bool| {
        let mut cfg = RunConfig::paper(mode);
        cfg.integrity = integrity;
        std::hint::black_box(run_workload(bench::figures::tileio_at(p, full), cfg));
    };
    vec![
        (
            "fig1_collective_wall",
            Box::new(move |integrity| {
                let procs: &[usize] =
                    if full { &[16, 32, 64, 128, 256, 512] } else { &[8, 16, 32] };
                for &p in procs {
                    paper_run(p, IoMode::Collective, integrity);
                }
            }) as Box<dyn Fn(bool)>,
        ),
        (
            "fig9_scalability",
            Box::new(move |integrity| {
                let procs: &[usize] = if full { &[64, 128, 256, 512, 1024] } else { &[8, 16] };
                for &p in procs {
                    paper_run(p, IoMode::Collective, integrity);
                    let g = (p / 8).clamp(2, 64);
                    paper_run(p, IoMode::Parcoll { groups: g }, integrity);
                }
            }),
        ),
    ]
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Load a baseline row document or exit with a diagnostic.
fn load_baseline(path: &str) -> Vec<Row> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("hostperf: cannot read baseline {path}: {e}");
        std::process::exit(2);
    });
    rows_from_json(&text).unwrap_or_else(|| {
        eprintln!("hostperf: {path} is not a row document");
        std::process::exit(2);
    })
}

/// Warmup + timed iterations of one sweep; returns sorted samples.
fn time_sweep(run: &dyn Fn(), warmup: usize, iters: usize) -> Vec<f64> {
    for _ in 0..warmup {
        run();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        run();
        samples.push(t0.elapsed().as_secs_f64());
    }
    samples.sort_by(f64::total_cmp);
    samples
}

fn timing_row(series: String, samples: &[f64], iters: usize) -> Row {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    Row::new(series, 0.0, median(samples), "s")
        .with("min", samples[0])
        .with("max", *samples.last().expect("at least one iteration"))
        .with("mean", mean)
        .with("iters", iters as f64)
}

/// The figures the `--workers-matrix` sharded series cover, and the
/// worker counts they sweep.
const MATRIX_FIGURES: [&str; 3] =
    ["fig1_collective_wall", "fig7_tileio_groups", "fig9_scalability"];
const MATRIX_WORKERS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    for (name, run) in tracked(args.scale) {
        if !args.figures.is_empty() && !args.figures.iter().any(|f| name.starts_with(f.as_str())) {
            continue;
        }
        let samples = time_sweep(&run, args.warmup, args.iters);
        rows.push(timing_row(
            format!("{name}@{}", args.series),
            &samples,
            args.iters,
        ));
        if args.profile {
            // One extra armed run, outside the timed samples above.
            let profiled = bench::hostprof::profile(&run);
            bench::hostprof::print_top(name, &profiled, 8);
        }
    }
    if args.workers_matrix {
        // The sharded-executor trajectory: same sweeps, worker counts
        // pinned per series. Restore the ambient worker count after, so
        // `--workers`/`SIMNET_WORKERS` still governs anything else.
        let ambient = simnet::workers();
        for (name, run) in tracked(args.scale) {
            if !MATRIX_FIGURES.contains(&name) {
                continue;
            }
            if !args.figures.is_empty()
                && !args.figures.iter().any(|f| name.starts_with(f.as_str()))
            {
                continue;
            }
            for w in MATRIX_WORKERS {
                simnet::set_workers(w);
                let samples = time_sweep(&run, args.warmup, args.iters);
                rows.push(
                    timing_row(format!("{name}@workers{w}"), &samples, args.iters)
                        .with("workers", w as f64),
                );
            }
        }
        simnet::set_workers(ambient);
    }
    let mut integrity_failures = 0usize;
    if args.integrity_ab {
        // Checksum-cost A/B: both halves timed back-to-back in this
        // process, so the 5% budget compares like with like instead of
        // this runner against whichever machine wrote the baseline.
        for (name, run) in integrity_scenarios(args.scale) {
            if !args.figures.is_empty() && !args.figures.iter().any(|f| name.starts_with(f.as_str()))
            {
                continue;
            }
            let off = time_sweep(&|| run(false), args.warmup, args.iters);
            let on = time_sweep(&|| run(true), args.warmup, args.iters);
            let (m_off, m_on) = (median(&off), median(&on));
            let budget = m_off * (1.0 + INTEGRITY_TOL.rel) + INTEGRITY_TOL.abs;
            let verdict = if m_on > budget {
                integrity_failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "hostperf: integrity: {name} checksums-on {:.4}s vs off {:.4}s \
                 ({:+.2}%, budget {:.0}%+{:.0}ms) {verdict}",
                m_on,
                m_off,
                (m_on / m_off.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                INTEGRITY_TOL.rel * 100.0,
                INTEGRITY_TOL.abs * 1e3,
            );
            rows.push(
                timing_row(format!("{name}@integrity-off"), &off, args.iters),
            );
            rows.push(
                timing_row(format!("{name}@integrity-on"), &on, args.iters)
                    .with("overhead_rel", m_on / m_off.max(f64::MIN_POSITIVE) - 1.0),
            );
            if args.profile {
                let profiled = bench::hostprof::profile(&|| run(true));
                bench::hostprof::print_top(&format!("{name} (checksums on)"), &profiled, 8);
            }
        }
    }
    if rows.is_empty() {
        eprintln!("hostperf: no tracked figure matches {:?}", args.figures);
        std::process::exit(2);
    }
    print_table("hostperf: figure regeneration wall-clock (median)", "-", &rows);

    if let Some(baseline_path) = &args.check {
        let baseline = load_baseline(baseline_path);
        let mut failures = 0usize;
        for fresh in &rows {
            let Some(base) = baseline.iter().find(|b| b.series == fresh.series) else {
                println!("hostperf: {} has no baseline series (skipped)", fresh.series);
                continue;
            };
            let tol = check_tolerance(&fresh.series, &args.tol_overrides);
            // One-sided: only slower-than-baseline trips the gate.
            let budget = base.y * (1.0 + tol.rel) + tol.abs;
            let verdict = if fresh.y > budget {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "hostperf: {} {:.4}s vs baseline {:.4}s ({:+.1}%, budget {:.0}%+{:.1}ms) {verdict}",
                fresh.series,
                fresh.y,
                base.y,
                (fresh.y / base.y.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                tol.rel * 100.0,
                tol.abs * 1e3,
            );
        }
        if failures > 0 {
            eprintln!("hostperf: {failures} figure(s) regressed past their wall-clock envelope");
            std::process::exit(1);
        }
    }

    if let Some(baseline_path) = &args.check_overhead {
        let baseline = load_baseline(baseline_path);
        let mut failures = 0usize;
        let mut compared = 0usize;
        for fresh in &rows {
            let figure = figure_of(&fresh.series);
            let Some(base) = baseline.iter().find(|b| figure_of(&b.series) == figure) else {
                println!("hostperf: overhead: {figure} has no baseline series (skipped)");
                continue;
            };
            compared += 1;
            let budget = base.y * (1.0 + OVERHEAD_TOL.rel) + OVERHEAD_TOL.abs;
            let verdict = if fresh.y > budget {
                failures += 1;
                "FAIL"
            } else {
                "ok"
            };
            println!(
                "hostperf: overhead: {figure} {:.4}s vs probes-compiled-out {:.4}s \
                 ({:+.2}%, budget {:.0}%) {verdict}",
                fresh.y,
                base.y,
                (fresh.y / base.y.max(f64::MIN_POSITIVE) - 1.0) * 100.0,
                OVERHEAD_TOL.rel * 100.0,
            );
        }
        if compared == 0 {
            eprintln!("hostperf: overhead baseline {baseline_path} shares no figures with this run");
            std::process::exit(2);
        }
        if failures > 0 {
            eprintln!(
                "hostperf: disarmed probes cost >{:.0}% wall-clock on {failures} figure(s)",
                OVERHEAD_TOL.rel * 100.0
            );
            std::process::exit(1);
        }
    }

    if integrity_failures > 0 {
        eprintln!(
            "hostperf: checksums-on cost >{:.0}% wall-clock on {integrity_failures} figure(s)",
            INTEGRITY_TOL.rel * 100.0
        );
        std::process::exit(1);
    }

    if let Some(path) = &args.out {
        std::fs::write(path, rows_to_json(&rows)).unwrap_or_else(|e| {
            eprintln!("hostperf: cannot write {path}: {e}");
            std::process::exit(2);
        });
    }
    if args.emit {
        emit_json("BENCH_hostperf", &rows);
    }
}
