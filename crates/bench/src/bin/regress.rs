//! `regress` — the perf-regression gate: compare freshly regenerated
//! figure rows against a committed baseline, point by point.
//!
//! ```text
//! regress <fresh_dir> [<baseline_dir>]   (baseline defaults to bench_results)
//! ```
//!
//! Every `*.json` row document in the baseline must be reproduced in
//! the fresh directory with each (series, x) point matching within its
//! series tolerance (1 ppm relative by default — the simulator is
//! deterministic, so only cross-platform libm variance is tolerated).
//! Missing files, lost or new points, unit changes and drifted extras
//! are all failures. Exits nonzero on any finding, so CI can regenerate
//! the quick-scale figures into a scratch directory and gate on this.

use bench::regress::compare_dirs;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(fresh) = args.first() else {
        eprintln!("usage: regress <fresh_dir> [<baseline_dir>=bench_results]");
        std::process::exit(2);
    };
    let baseline = args.get(1).map(String::as_str).unwrap_or("bench_results");

    match compare_dirs(Path::new(fresh), Path::new(baseline)) {
        Err(e) => {
            eprintln!("regress: {e}");
            std::process::exit(2);
        }
        Ok(findings) if findings.is_empty() => {
            println!("regress: {fresh} reproduces {baseline} within tolerance");
        }
        Ok(findings) => {
            eprintln!("regress: {} finding(s) vs {baseline}:", findings.len());
            for f in &findings {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
    }
}
