//! `regress` — the perf-regression gate: compare freshly regenerated
//! figure rows against a committed baseline, point by point.
//!
//! ```text
//! regress [--explain] <fresh_dir> [<baseline_dir>]   (baseline defaults to bench_results)
//! ```
//!
//! Every `*.json` row document in the baseline must be reproduced in
//! the fresh directory with each (series, x) point matching within its
//! series tolerance (1 ppm relative by default — the simulator is
//! deterministic, so only cross-platform libm variance is tolerated).
//! Missing files, lost or new points, unit changes and drifted extras
//! are all failures. Exits nonzero on any finding, so CI can regenerate
//! the quick-scale figures into a scratch directory and gate on this.
//!
//! With `--explain`, a failed gate additionally diffs the committed
//! run-digest sidecar (`explain_digest.json`) against the fresh one and
//! prints the ranked root-cause table — which phase grew, on which
//! resource, in which exchange rounds — writing
//! `explain_report.{txt,json}` into the fresh directory for CI to
//! upload. The gate still exits 1; the report is diagnosis, not mercy.

use bench::explain::{explain_dirs, write_report};
use bench::regress::compare_dirs;
use std::path::Path;

fn main() {
    let mut explain = false;
    let mut dirs: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--explain" => explain = true,
            _ => dirs.push(arg),
        }
    }
    let Some(fresh) = dirs.first() else {
        eprintln!("usage: regress [--explain] <fresh_dir> [<baseline_dir>=bench_results]");
        std::process::exit(2);
    };
    let baseline = dirs.get(1).map(String::as_str).unwrap_or("bench_results");

    match compare_dirs(Path::new(fresh), Path::new(baseline)) {
        Err(e) => {
            eprintln!("regress: {e}");
            std::process::exit(2);
        }
        Ok(findings) if findings.is_empty() => {
            println!("regress: {fresh} reproduces {baseline} within tolerance");
        }
        Ok(findings) => {
            eprintln!("regress: {} finding(s) vs {baseline}:", findings.len());
            for f in &findings {
                eprintln!("  {f}");
            }
            if explain {
                match explain_dirs(Path::new(fresh), Path::new(baseline)) {
                    Err(e) => eprintln!("regress: no explanation available: {e}"),
                    Ok(report) => {
                        eprint!("{}", report.render_text());
                        match write_report(Path::new(fresh), &report) {
                            Ok(()) => eprintln!(
                                "regress: wrote {fresh}/explain_report.{{txt,json}}"
                            ),
                            Err(e) => eprintln!("regress: cannot write report: {e}"),
                        }
                    }
                }
            }
            std::process::exit(1);
        }
    }
}
