//! Ablation — collective algorithm replacement (paper §1's argument):
//! "It may be tempting to address this synchronization problem via a
//! simple replacement of these collective operations ... the real issue
//! here is the inherent need of synchronization inside the original
//! two-phase protocol."
//!
//! We swap the alltoall cost model from pairwise exchange to Bruck's
//! log-depth algorithm and re-run the Figure 1 profile: the wall barely
//! moves, because waiting and congestion — not the algorithmic latency —
//! dominate.

use bench::figures::{tileio_at, BASELINE};
use bench::{emit_json, print_table, Row, Scale};
use simnet::CollectiveAlg;
use workloads::runner::{IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let procs: &[usize] = scale.pick(&[64, 256, 512], &[8, 16]);
    let mut rows = Vec::new();
    for &p in procs {
        for (label, alg) in [
            (format!("{BASELINE} (pairwise alltoall)"), CollectiveAlg::Pairwise),
            (format!("{BASELINE} (Bruck alltoall)"), CollectiveAlg::Bruck),
        ] {
            let cfg = RunConfig::paper(IoMode::Collective);
            let w = tileio_at(p, scale == Scale::Paper);
            let r = run_with_alg(w, cfg, alg);
            rows.push(
                Row::new(label, p as f64, r.write_mbps, "MB/s")
                    .with("sync_s", r.profile_avg.sync.as_secs()),
            );
        }
    }
    print_table(
        "Ablation: swapping the alltoall algorithm does not break the wall",
        "procs",
        &rows,
    );
    emit_json("ablation_alltoall", &rows);
}

fn run_with_alg(
    w: workloads::tileio::TileIo,
    cfg: RunConfig,
    alg: CollectiveAlg,
) -> workloads::runner::RunResult {
    // run_workload constructs the cluster internally with the default
    // network model; we wrap it by temporarily overriding via the
    // dedicated hook below.
    workloads::runner::run_workload_with_net(w, cfg, move |net| net.alltoall_alg = alg)
}
