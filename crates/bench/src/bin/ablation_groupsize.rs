//! Ablation — group-size sweep across process counts (the paper's §4
//! trade-off and its "future work" on adaptively choosing the best group
//! size): for each process count, sweep the subgroup count and report the
//! full curve, exposing where the balance between aggregation benefit and
//! synchronization cost lands.

use bench::figures::tileio_group_sweep;
use bench::{emit_json, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_args();
    let procs: &[usize] = scale.pick(&[128, 256, 512], &[16]);
    let mut rows: Vec<Row> = Vec::new();
    for &p in procs {
        let groups: Vec<usize> = [1usize, 4, 16, 64, 128]
            .iter()
            .copied()
            .filter(|&g| g <= p / 2)
            .collect();
        for mut r in tileio_group_sweep(p, &groups, scale == Scale::Paper) {
            r.series = format!("{p} procs");
            rows.push(r);
        }
    }
    print_table("Ablation: best subgroup count per process count", "groups", &rows);
    emit_json("ablation_groupsize", &rows);
}
