//! Autotune convergence demonstration: starting from the default ParColl
//! configuration, the `parcoll::autotune` feedback controller must reach
//! within 10% of the best static fig7-style configuration within 4
//! epochs, and must never end a sweep more than 5% below the default
//! static configuration.
//!
//! Each epoch is one `run_workload` call (MPI-Tile-IO issues a single
//! collective write) threaded through a shared [`parcoll::PolicyCache`]:
//! the tuner state learned by one run is resumed by the next open, so
//! the sweep exercises exactly the repeated-open path a real application
//! would take. The static ladder is measured side by side, series
//! `static-<P>p` (x = subgroup count) next to `autotune-<P>p`
//! (x = epoch), and the binary asserts the convergence contract before
//! emitting `bench_results/autotune_sweep.json`.

use bench::figures::tileio_at;
use bench::table::Row;
use bench::{emit_json, print_table, Scale};
use parcoll::{ParcollConfig, PolicyCache};
use workloads::runner::{run_workload, IoMode, RunConfig};

/// Static ladder: powers of two up to the tuner's own cap (least group
/// size 8, the paper's IOR floor and the autotune default).
fn ladder(nprocs: usize) -> Vec<usize> {
    let cap = (nprocs / 8).max(1);
    let mut v = vec![1usize];
    let mut g = 2;
    while g <= cap {
        v.push(g);
        g *= 2;
    }
    v
}

fn paper_cfg(mode: IoMode) -> RunConfig {
    let mut cfg = RunConfig::paper(mode);
    // Visualization semantics, as in fig7: a forced intermediate view
    // must scatter back to the canonical layout.
    cfg.info.set("parcoll_iview_scatter", "true");
    cfg
}

fn sweep(nprocs: usize, full: bool, epochs: usize, strict: bool, rows: &mut Vec<Row>) {
    // Static ladder (the fig7 sweep restricted to the tuner's feasible
    // range).
    let mut static_bw = Vec::new();
    for g in ladder(nprocs) {
        let mode = if g <= 1 {
            IoMode::Collective
        } else {
            IoMode::Parcoll { groups: g }
        };
        let r = run_workload(tileio_at(nprocs, full), paper_cfg(mode));
        eprintln!("static {nprocs}p groups={g}: {:.1} MB/s", r.write_mbps);
        static_bw.push((g, r.write_mbps));
        rows.push(Row::new(format!("static-{nprocs}p"), g as f64, r.write_mbps, "MB/s"));
    }
    let best_static = static_bw.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    let default_groups = ParcollConfig::default().effective_groups(nprocs);
    let default_static = static_bw
        .iter()
        .find(|&&(g, _)| g == default_groups)
        .map(|&(_, y)| y)
        .expect("ladder contains the default group count");

    // Tuned epochs: one run per epoch, resuming through the policy cache.
    let cache = PolicyCache::new();
    let mut tuned_bw = Vec::new();
    let mut groups_now = default_groups;
    for e in 0..epochs {
        let mut cfg = paper_cfg(IoMode::Collective);
        cfg.autotune = Some(cache.clone());
        let r = run_workload(tileio_at(nprocs, full), cfg);
        // The log carries the knobs each observed epoch ran with; a
        // settled tuner logs nothing and holds its last configuration.
        let settled = r.autotune_log.is_empty();
        if let Some(d) = r.autotune_log.first() {
            groups_now = d.knobs.groups;
        }
        let action = r.autotune_log.first().map_or("settled", |d| d.action);
        eprintln!(
            "epoch {e} ({nprocs}p): {:.1} MB/s at {groups_now} groups [{action}]",
            r.write_mbps
        );
        tuned_bw.push(r.write_mbps);
        rows.push(
            Row::new(format!("autotune-{nprocs}p"), e as f64, r.write_mbps, "MB/s")
                .with("groups", groups_now as f64)
                .with("settled", if settled { 1.0 } else { 0.0 }),
        );
    }

    // The convergence contract (ISSUE 5 acceptance).
    let final_bw = *tuned_bw.last().expect("at least one epoch");
    assert!(
        final_bw >= 0.95 * default_static,
        "{nprocs}p: tuned endpoint {final_bw:.1} MB/s fell more than 5% below \
         the default static config ({default_static:.1} MB/s at {default_groups} groups)"
    );
    if strict {
        let converged = tuned_bw.iter().position(|&y| y >= 0.9 * best_static);
        assert!(
            converged.is_some_and(|e| e < 4),
            "{nprocs}p: no epoch within the first 4 reached 90% of the best \
             static config ({best_static:.1} MB/s); epochs: {tuned_bw:?}"
        );
    }
}

fn main() {
    let scale = Scale::from_args();
    let mut rows = Vec::new();
    match scale {
        Scale::Paper => {
            for &p in &[128usize, 512] {
                sweep(p, true, 6, true, &mut rows);
            }
        }
        Scale::Quick => {
            sweep(16, false, 4, false, &mut rows);
        }
    }
    print_table(
        "Autotune: tuned epochs vs static subgroup ladder (MPI-Tile-IO)",
        "groups|epoch",
        &rows,
    );
    emit_json("autotune_sweep", &rows);
}
