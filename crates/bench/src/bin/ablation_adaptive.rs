//! Ablation — adaptive group-size selection (the paper's §6 future work,
//! implemented in `parcoll::adaptive`): on a repetitive IOR-style
//! workload, the controller probes group counts over the first calls and
//! commits to the fastest, landing near the best fixed choice without
//! any offline tuning.

use bench::{emit_json, print_table, Row, Scale};
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let (p, block, transfer, calls) = match scale {
        Scale::Paper => (256usize, 256u64 << 20, 4u64 << 20, Some(48)),
        Scale::Quick => (16, 1 << 20, 256 << 10, Some(8)),
    };
    let make = || Ior {
        nprocs: p,
        block_size: block,
        transfer_size: transfer,
        max_calls: calls,
    };
    let mut rows = Vec::new();
    for groups in [1usize, 4, 16, 32] {
        if groups > p / 8 && groups > 1 {
            continue;
        }
        let mode = if groups == 1 {
            IoMode::Collective
        } else {
            IoMode::Parcoll { groups }
        };
        let r = run_workload(make(), RunConfig::paper(mode));
        rows.push(Row::new(format!("fixed G={groups}"), p as f64, r.write_mbps, "MB/s"));
    }
    // Adaptive: hint-driven, no explicit group count.
    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups: 1 });
    cfg.info.set("parcoll_adaptive", "true");
    cfg.info.set("parcoll_min_group", 8);
    let r = run_workload(make(), cfg);
    rows.push(Row::new("adaptive", p as f64, r.write_mbps, "MB/s"));

    print_table(
        "Ablation: adaptive group-size selection vs fixed choices (IOR)",
        "procs",
        &rows,
    );
    emit_json("ablation_adaptive", &rows);
}
