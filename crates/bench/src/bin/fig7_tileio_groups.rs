//! Figure 7 — "Performance of MPI-Tile-IO": collective write and read
//! bandwidth at 512 processes as the number of ParColl subgroups varies.
//! The paper's best point is 64 subgroups (+210% write, +180% read over
//! the baseline); beyond it, over-partitioning collapses ("fine-grained
//! I/O relinquishes the benefits of aggregation").

use bench::figures::tileio_group_sweep;
use bench::{emit_json, print_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let (procs, groups): (usize, &[usize]) = match scale {
        Scale::Paper => (512, &[1, 2, 4, 8, 16, 32, 64, 128, 256]),
        Scale::Quick => (16, &[1, 2, 4]),
    };
    let rows = tileio_group_sweep(procs, groups, scale == Scale::Paper);
    print_table(
        "Figure 7: MPI-Tile-IO bandwidth vs number of subgroups (512 procs)",
        "groups",
        &rows,
    );
    emit_json("fig7_tileio_groups", &rows);
}
