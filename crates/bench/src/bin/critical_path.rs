//! `critical_path` — happens-before critical-path breakdown for the
//! figure workloads. For MPI-Tile-IO at a sweep of process counts (and
//! both I/O protocols), runs the workload traced, reconstructs the
//! event graph, extracts the path that bounds the virtual wall, and
//! prints where that path spends its time: the collective wall as a
//! *chain of stragglers* rather than an averaged share.
//!
//! Alongside the per-phase path breakdown it prints the what-if panel —
//! three "wall if sync were free" estimates (the Figure 1/2
//! uniform-share estimate, the dependency-aware per-rank bound, and the
//! path-only subtraction) whose spread is the point: averaged sync
//! share overstates what removing synchronization could recover.
//!
//! Emits `bench_results/critical_path.json` rows, so `report` folds the
//! table in with the figures. `--quick` runs reduced scale.

use bench::figures::tileio_at;
use bench::{emit_json, Row, Scale};
use simtrace::{critical_path, rank_slack, what_if, TraceSink};
use workloads::runner::{run_workload, IoMode, RunConfig};

fn main() {
    let scale = Scale::from_args();
    let full = scale == Scale::Paper;
    let procs: &[usize] = scale.pick(&[16, 64, 128], &[8, 16]);

    let mut rows = Vec::new();
    for &p in procs {
        for (label, mode) in [
            ("baseline", IoMode::Collective),
            ("parcoll", IoMode::Parcoll { groups: (p / 8).max(2) }),
        ] {
            let sink = TraceSink::enabled();
            let mut cfg = RunConfig::paper(mode);
            cfg.trace = sink.clone();
            run_workload(tileio_at(p, full), cfg);
            let trace = sink.finish();
            let Some(path) = critical_path(&trace) else {
                eprintln!("{label} {p}: no path (empty trace?)");
                continue;
            };
            let w = what_if(&trace, &path);
            let chain = path.straggler_chain();
            let slack = rank_slack(&trace, &path);

            println!(
                "\n== tile-io {p} procs, {label}: wall {:.1} ms, path visits {} ranks in {} hops ==",
                w.wall_us / 1e3,
                path.time_on_rank().len(),
                chain.len(),
            );
            print!("  path breakdown:");
            for (phase, us) in path.breakdown() {
                print!(" {phase} {:.1} ms ({:.0}%),", us / 1e3, us / w.wall_us * 100.0);
            }
            println!();
            print!("  straggler chain (first hops):");
            for (rank, us) in chain.iter().take(6) {
                print!(" r{rank} {:.1} ms >", us / 1e3);
            }
            println!(" ...");
            let mut tight: Vec<_> = slack.iter().collect();
            tight.sort_by(|a, b| a.slack_us.total_cmp(&b.slack_us));
            print!("  least slack:");
            for s in tight.iter().take(4) {
                print!(" r{} {:.1} ms,", s.rank, s.slack_us / 1e3);
            }
            println!();
            println!(
                "  sync share {:.1}% | sync-free wall: figure {:.1} ms, rank bound {:.1} ms, path {:.1} ms",
                w.sync_share * 100.0,
                w.sync_free_figure_us / 1e3,
                w.sync_free_rank_bound_us / 1e3,
                w.sync_free_path_us / 1e3,
            );

            let x = p as f64;
            rows.push(
                Row::new(format!("{label} wall"), x, w.wall_us / 1e3, "ms")
                    .with("sync_share_pct", w.sync_share * 100.0)
                    .with("chain_hops", chain.len() as f64),
            );
            for (phase, us) in path.breakdown() {
                rows.push(Row::new(format!("{label} path {phase}"), x, us / 1e3, "ms"));
            }
            for (name, us) in [
                ("syncfree figure", w.sync_free_figure_us),
                ("syncfree rank-bound", w.sync_free_rank_bound_us),
                ("syncfree path", w.sync_free_path_us),
            ] {
                rows.push(Row::new(format!("{label} {name}"), x, us / 1e3, "ms"));
            }
        }
    }
    emit_json("critical_path", &rows);
}
