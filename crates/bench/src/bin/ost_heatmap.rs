//! `ost_heatmap` — per-OST load distribution for a workload run: busy
//! time, bytes, and request counts per target, plus imbalance metrics.
//! The busiest target is what every lock-step round waits for; watching
//! the distribution flatten under ParColl's drifted subgroups shows the
//! mechanism behind the IOR and Flash wins.
//!
//! Usage mirrors `parcoll_sim`: `ost_heatmap <workload> [--procs N]
//! [--mode baseline|parcoll] [--groups G]`.

use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().cloned().unwrap_or_else(|| "ior".into());
    let get = |key: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = get("--procs", 128);
    let groups = get("--groups", procs / 8);
    let mode = if args.iter().any(|a| a == "--mode")
        && args[args.iter().position(|a| a == "--mode").unwrap() + 1] == "baseline"
    {
        IoMode::Collective
    } else {
        IoMode::Parcoll { groups }
    };

    let r = match workload.as_str() {
        "tileio" => run_workload(TileIo::paper(procs), RunConfig::paper(mode)),
        _ => {
            let w = Ior {
                nprocs: procs,
                block_size: 256 << 20,
                transfer_size: 4 << 20,
                max_calls: Some(16),
            };
            run_workload(w, RunConfig::paper(mode))
        }
    };

    let st = &r.fs_stats;
    println!(
        "{workload} {procs} procs {mode:?}: {:.1} MB/s, imbalance {:.2}, breadth {:.0}%, mean req {:.0} KiB",
        r.write_mbps,
        st.imbalance(),
        st.utilization_breadth() * 100.0,
        st.mean_request_bytes() / 1024.0
    );
    let max_busy = st.max_ost_busy.as_secs().max(1e-12);
    println!("per-OST busy time ({} targets, # = busiest):", st.osts.len());
    for (i, o) in st.osts.iter().enumerate() {
        let frac = o.busy.as_secs() / max_busy;
        let bars = (frac * 40.0).round() as usize;
        println!(
            "  ost {i:>3} | {:<40} | {:>8.3}s {:>8} reqs",
            "#".repeat(bars),
            o.busy.as_secs(),
            o.requests
        );
    }
}
