//! `ost_heatmap` — per-OST load distribution for a workload run: busy
//! time, queue wait, bytes, and request counts per target, plus imbalance
//! metrics. The busiest target is what every lock-step round waits for;
//! watching the distribution flatten under ParColl's drifted subgroups
//! shows the mechanism behind the IOR and Flash wins.
//!
//! The per-OST numbers come from the simtrace OST tracks (`ost/serve`
//! and `ost/queue` service intervals, `ost_requests` / `ost_req_bytes`
//! counters) rather than any heatmap-private counting — the same spans a
//! `trace_dump` run renders in Perfetto.
//!
//! Usage mirrors `parcoll_sim`: `ost_heatmap <workload> [--procs N]
//! [--mode baseline|parcoll] [--groups G]`.

use simtrace::{Event, TraceSink, TrackKey};
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

/// Per-OST figures folded out of one trace track.
#[derive(Default, Clone, Copy)]
struct OstLoad {
    busy_us: f64,
    queue_us: f64,
    requests: u64,
    bytes: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().cloned().unwrap_or_else(|| "ior".into());
    let get = |key: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = get("--procs", 128);
    let groups = get("--groups", procs / 8);
    let mode = if args.iter().any(|a| a == "--mode")
        && args[args.iter().position(|a| a == "--mode").unwrap() + 1] == "baseline"
    {
        IoMode::Collective
    } else {
        IoMode::Parcoll { groups }
    };

    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(mode);
    cfg.trace = sink.clone();
    let r = match workload.as_str() {
        "tileio" => run_workload(TileIo::paper(procs), cfg),
        _ => {
            let w = Ior {
                nprocs: procs,
                block_size: 256 << 20,
                transfer_size: 4 << 20,
                max_calls: Some(16),
            };
            run_workload(w, cfg)
        }
    };
    let trace = sink.finish();

    // Fold each OST track's service intervals and counters.
    let mut osts: Vec<OstLoad> = Vec::new();
    for track in &trace.tracks {
        let TrackKey::Ost(i) = track.key else {
            continue;
        };
        if osts.len() <= i {
            osts.resize(i + 1, OstLoad::default());
        }
        let load = &mut osts[i];
        for event in &track.events {
            if let Event::Span { cat: "ost", name, dur_us, .. } = event {
                match name.as_ref() {
                    "serve" => load.busy_us += dur_us,
                    "queue" => load.queue_us += dur_us,
                    _ => {}
                }
            }
        }
        load.requests = track.counters.get("ost_requests").copied().unwrap_or(0);
        load.bytes = track
            .hists
            .get("ost_req_bytes")
            .map_or(0.0, |h| h.sum);
    }

    let max_busy = osts.iter().map(|o| o.busy_us).fold(0.0f64, f64::max);
    let mean_busy = if osts.is_empty() {
        0.0
    } else {
        osts.iter().map(|o| o.busy_us).sum::<f64>() / osts.len() as f64
    };
    let imbalance = max_busy / mean_busy.max(1e-12);
    let active = osts.iter().filter(|o| o.requests > 0).count();
    let breadth = active as f64 / osts.len().max(1) as f64;
    let total_reqs: u64 = osts.iter().map(|o| o.requests).sum();
    let total_bytes: f64 = osts.iter().map(|o| o.bytes).sum();
    let mean_req = total_bytes / (total_reqs.max(1) as f64);

    println!(
        "{workload} {procs} procs {mode:?}: {:.1} MB/s, imbalance {:.2}, breadth {:.0}%, mean req {:.0} KiB",
        r.write_mbps,
        imbalance,
        breadth * 100.0,
        mean_req / 1024.0
    );
    let scale = max_busy.max(1e-12);
    println!("per-OST busy time ({} targets, # = busiest):", osts.len());
    for (i, o) in osts.iter().enumerate() {
        let bars = (o.busy_us / scale * 40.0).round() as usize;
        println!(
            "  ost {i:>3} | {:<40} | {:>8.3}s {:>8} reqs {:>9.3}s queued",
            "#".repeat(bars),
            o.busy_us / 1e6,
            o.requests,
            o.queue_us / 1e6,
        );
    }
}
