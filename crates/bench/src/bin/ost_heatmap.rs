//! `ost_heatmap` — per-OST load distribution for a workload run: busy
//! time, queue wait, bytes, and request counts per target, plus imbalance
//! metrics. The busiest target is what every lock-step round waits for;
//! watching the distribution flatten under ParColl's drifted subgroups
//! shows the mechanism behind the IOR and Flash wins.
//!
//! The per-OST numbers come from the simtrace OST tracks (`ost/serve`
//! and `ost/queue` service intervals, `ost_requests` / `ost_req_bytes`
//! counters) rather than any heatmap-private counting — the same spans a
//! `trace_dump` run renders in Perfetto.
//!
//! With `--timeline [W]`, the run's OST tracks are additionally folded
//! into `W` virtual-time buckets (the `simtrace::series` interval fold)
//! and rendered as one shade-row per target — occupancy over *time*,
//! where the static heatmap only shows totals. A lock-step baseline
//! shows synchronized dark columns; drifted ParColl subgroups smear
//! them out.
//!
//! Usage mirrors `parcoll_sim`: `ost_heatmap <workload> [--procs N]
//! [--mode baseline|parcoll] [--groups G] [--timeline [W]]`.

use bench::{ost_loads, summarize_ost_loads};
use simtrace::{series_from_trace, SeriesConfig, TraceSink, TrackKey};
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let workload = args.first().cloned().unwrap_or_else(|| "ior".into());
    let get = |key: &str, default: usize| -> usize {
        args.iter()
            .position(|a| a == key)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let procs = get("--procs", 128);
    let groups = get("--groups", procs / 8);
    let mode = if args.iter().any(|a| a == "--mode")
        && args[args.iter().position(|a| a == "--mode").unwrap() + 1] == "baseline"
    {
        IoMode::Collective
    } else {
        IoMode::Parcoll { groups }
    };

    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(mode);
    cfg.trace = sink.clone();
    let r = match workload.as_str() {
        "tileio" => run_workload(TileIo::paper(procs), cfg),
        _ => {
            let w = Ior {
                nprocs: procs,
                block_size: 256 << 20,
                transfer_size: 4 << 20,
                max_calls: Some(16),
            };
            run_workload(w, cfg)
        }
    };
    let trace = sink.finish();

    // Fold each OST track's service intervals and counters.
    let osts = ost_loads(&trace);
    let s = summarize_ost_loads(&osts);

    println!(
        "{workload} {procs} procs {mode:?}: {:.1} MB/s, imbalance {:.2}, breadth {:.0}%, mean req {:.0} KiB",
        r.write_mbps,
        s.imbalance,
        s.breadth * 100.0,
        s.mean_request_bytes / 1024.0
    );
    let scale = s.max_busy_us.max(1e-12);
    println!("per-OST busy time ({} targets, # = busiest):", osts.len());
    for (i, o) in osts.iter().enumerate() {
        let bars = (o.busy_us / scale * 40.0).round() as usize;
        println!(
            "  ost {i:>3} | {:<40} | {:>8.3}s {:>8} reqs {:>9.3}s queued",
            "#".repeat(bars),
            o.busy_us / 1e6,
            o.requests,
            o.queue_us / 1e6,
        );
    }

    if let Some(pos) = args.iter().position(|a| a == "--timeline") {
        let width = args
            .get(pos + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or(72usize)
            .max(8);
        print_timeline(&trace, width);
    }
}

/// Render each OST's busy occupancy over virtual time as a shade row,
/// one character per interval of the `simtrace::series` fold.
fn print_timeline(trace: &simtrace::Trace, width: usize) {
    let wall = trace
        .tracks
        .iter()
        .flat_map(|t| t.events.iter())
        .map(|e| match e {
            simtrace::Event::Span { start_us, dur_us, .. } => start_us + dur_us,
            simtrace::Event::Instant { ts_us, .. } => *ts_us,
            simtrace::Event::Counter { ts_us, .. } => *ts_us,
        })
        .fold(0.0f64, f64::max);
    if wall <= 0.0 {
        println!("timeline: empty trace");
        return;
    }
    let interval = wall / width as f64;
    let series = series_from_trace(trace, SeriesConfig::new(interval));
    const SHADES: &[u8] = b" .:-=+*#%@";
    println!(
        "\nOST busy-occupancy timeline ({} buckets x {:.1} us, ' '=idle '@'=saturated):",
        series.n_intervals, series.interval_us
    );
    for t in &series.tracks {
        let TrackKey::Ost(ost) = t.key else { continue };
        let Some(busy) = t.series.get("ost_busy_us") else {
            continue;
        };
        let row: String = busy
            .iter()
            .map(|us| {
                let occupancy = (us / series.interval_us).clamp(0.0, 1.0);
                let idx = (occupancy * (SHADES.len() - 1) as f64).round() as usize;
                SHADES[idx] as char
            })
            .collect();
        println!("  ost {ost:>3} |{row}|");
    }
}
