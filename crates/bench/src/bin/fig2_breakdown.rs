//! Figure 2 — "Collective I/O Time Breakdown": absolute per-rank seconds
//! in synchronization, point-to-point exchange and file I/O for
//! MPI-Tile-IO under the baseline protocol. The paper's observation:
//! "the processing time spent in synchronization grows much faster
//! compared to the time spent on point-to-point communication and file
//! I/O", overtaking them by 512 processes.

use bench::figures::collective_wall;
use bench::{emit_json, print_table, Row, Scale};

fn main() {
    let scale = Scale::from_args();
    let procs: &[usize] = scale.pick(&[16, 32, 64, 128, 256, 512], &[8, 16, 32]);
    let rows = collective_wall(procs, scale == Scale::Paper);
    // Re-shape into one series per component, as the paper plots them.
    let mut out = Vec::new();
    for r in &rows {
        for (series, key) in [
            ("sync", "sync_s"),
            ("point-to-point", "p2p_s"),
            ("file I/O", "io_s"),
            ("local memcpy", "local_s"),
        ] {
            out.push(Row::new(series, r.x, r.extra[key], "s"));
        }
    }
    print_table(
        "Figure 2: collective I/O time breakdown (per-rank seconds, baseline)",
        "procs",
        &out,
    );
    emit_json("fig2_breakdown", &out);
}
