//! Row-level comparison of regenerated `bench_results` against a
//! committed baseline — the logic behind the `regress` binary.
//!
//! The simulator is deterministic (virtual timestamps are a pure
//! function of the configuration), so regenerating a figure must
//! reproduce the committed numbers *exactly* up to cross-platform libm
//! variance. The default tolerance is therefore tight (1 ppm relative);
//! any genuine behaviour change — a protocol tweak, a changed service
//! model, a reordered admission queue — shifts virtual times far beyond
//! it and trips the gate, forcing an intentional baseline update in the
//! same commit as the change that moved the numbers.

use crate::table::rows_from_json;
use crate::Row;
use std::collections::BTreeMap;
use std::path::Path;

/// Relative + absolute tolerance for one compared value: `a` matches
/// `b` when `|a-b| <= abs + rel * max(|a|,|b|)`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Relative tolerance.
    pub rel: f64,
    /// Absolute floor, in the unit of the compared value.
    pub abs: f64,
}

impl Tolerance {
    /// Does `fresh` match `base` under this tolerance?
    pub fn matches(&self, base: f64, fresh: f64) -> bool {
        (fresh - base).abs() <= self.abs + self.rel * base.abs().max(fresh.abs())
    }
}

/// Default: 1 ppm relative, tiny absolute floor. Virtual times are
/// deterministic; only libm variance across platforms is tolerated.
pub const DEFAULT_TOL: Tolerance = Tolerance { rel: 1e-6, abs: 1e-9 };

/// Per-series tolerance. Series whose values are derived through long
/// summation chains (bandwidth over hundreds of rounds) accumulate a
/// little more libm spread than raw times, so they get headroom — still
/// far below any real regression, which shifts numbers by percents.
///
/// `BENCH_hostperf` documents hold *host* wall-clock seconds, not
/// virtual times: they are inherently noisy, so they get the same ±25%
/// envelope as the `hostperf --check` gate (plus an absolute floor for
/// the millisecond-scale sweeps, where scheduler jitter dominates).
pub fn tolerance_for(file: &str, series: &str) -> Tolerance {
    if file.starts_with("BENCH_hostperf") {
        Tolerance { rel: 0.25, abs: 0.002 }
    } else if file.starts_with("BENCH_hostprof") {
        // Host-time attribution percentages: which sink dominates is
        // stable, the exact split is scheduler weather. Half relative
        // plus a 5-point absolute floor keeps the gate about shape.
        Tolerance { rel: 0.5, abs: 5.0 }
    } else if series.contains("MB/s") || series.ends_with("bandwidth") {
        Tolerance { rel: 1e-5, abs: 1e-6 }
    } else {
        DEFAULT_TOL
    }
}

/// Compare one file's fresh rows against its baseline rows. Returns a
/// human-readable finding per mismatch (empty = clean). Rows are keyed
/// by (series, x); a missing or extra key is a finding, as is a unit
/// change or an `extra` value drifting beyond tolerance.
pub fn compare_rows(file: &str, baseline: &[Row], fresh: &[Row]) -> Vec<String> {
    let key = |r: &Row| (r.series.clone(), r.x.to_bits());
    let base_map: BTreeMap<_, &Row> = baseline.iter().map(|r| (key(r), r)).collect();
    let fresh_map: BTreeMap<_, &Row> = fresh.iter().map(|r| (key(r), r)).collect();
    let mut findings = Vec::new();

    for (k, b) in &base_map {
        let Some(f) = fresh_map.get(k) else {
            findings.push(format!(
                "{file}: series {:?} lost point x={}",
                b.series, b.x
            ));
            continue;
        };
        let tol = tolerance_for(file, &b.series);
        if f.unit != b.unit {
            findings.push(format!(
                "{file}: {:?} x={} changed unit {:?} -> {:?}",
                b.series, b.x, b.unit, f.unit
            ));
        }
        if !tol.matches(b.y, f.y) {
            findings.push(format!(
                "{file}: {:?} x={} moved {} -> {} ({:+.3}%)",
                b.series,
                b.x,
                b.y,
                f.y,
                (f.y - b.y) / b.y.abs().max(f64::MIN_POSITIVE) * 100.0
            ));
        }
        for (name, bv) in &b.extra {
            match f.extra.get(name) {
                None => findings.push(format!(
                    "{file}: {:?} x={} lost extra {name:?}",
                    b.series, b.x
                )),
                Some(fv) if !tol.matches(*bv, *fv) => findings.push(format!(
                    "{file}: {:?} x={} extra {name:?} moved {bv} -> {fv}",
                    b.series, b.x
                )),
                Some(_) => {}
            }
        }
        for name in f.extra.keys() {
            if !b.extra.contains_key(name) {
                findings.push(format!(
                    "{file}: {:?} x={} gained extra {name:?} (update the baseline?)",
                    b.series, b.x
                ));
            }
        }
    }
    for (k, f) in &fresh_map {
        if !base_map.contains_key(k) {
            findings.push(format!(
                "{file}: new point {:?} x={} absent from baseline (update it?)",
                f.series, f.x
            ));
        }
    }
    findings
}

/// List the row-document stems (`*.json` that parse as row arrays) in a
/// directory, with their parsed rows. Non-row JSON (trace-metrics
/// documents) and non-JSON files are skipped.
fn row_files(dir: &Path) -> Result<BTreeMap<String, Vec<Row>>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut out = BTreeMap::new();
    for entry in rd.filter_map(|e| e.ok()) {
        let path = entry.path();
        if path.extension().is_none_or(|x| x != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        if let Some(rows) = rows_from_json(&text) {
            let stem = path.file_stem().unwrap().to_string_lossy().to_string();
            out.insert(stem, rows);
        }
    }
    Ok(out)
}

/// Compare every row document under `fresh_dir` against `baseline_dir`.
/// A baseline file with no fresh counterpart (a figure stopped being
/// generated) and a fresh file with no baseline (a figure nobody
/// blessed) are both findings.
pub fn compare_dirs(fresh_dir: &Path, baseline_dir: &Path) -> Result<Vec<String>, String> {
    let baseline = row_files(baseline_dir)?;
    let fresh = row_files(fresh_dir)?;
    if baseline.is_empty() {
        return Err(format!("no baseline row documents in {}", baseline_dir.display()));
    }
    let mut findings = Vec::new();
    for (name, base_rows) in &baseline {
        match fresh.get(name) {
            Some(fresh_rows) => findings.extend(compare_rows(name, base_rows, fresh_rows)),
            None => findings.push(format!("{name}: baseline file was not regenerated")),
        }
    }
    for name in fresh.keys() {
        if !baseline.contains_key(name) {
            findings.push(format!("{name}: no committed baseline (bless it?)"));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<Row> {
        vec![
            Row::new("sync", 16.0, 1.25, "s").with("ratio", 0.5),
            Row::new("sync", 64.0, 4.5, "s").with("ratio", 0.7),
        ]
    }

    #[test]
    fn identical_rows_are_clean() {
        assert!(compare_rows("f", &base(), &base()).is_empty());
    }

    #[test]
    fn hostprof_attribution_gets_wall_clock_headroom() {
        // Attribution percentages are host-scheduler weather: a 4-point
        // swing must pass under the BENCH_hostprof envelope while the
        // same swing on a virtual-time document is a finding.
        let base = vec![Row::new("fig9/simnet", 0.0, 40.0, "%")];
        let mut fresh = base.clone();
        fresh[0].y = 44.0;
        assert!(compare_rows("BENCH_hostprof", &base, &fresh).is_empty());
        assert_eq!(compare_rows("fig9_scalability", &base, &fresh).len(), 1);
    }

    #[test]
    fn libm_scale_drift_is_tolerated() {
        let mut fresh = base();
        fresh[0].y *= 1.0 + 1e-9;
        assert!(compare_rows("f", &base(), &fresh).is_empty());
    }

    #[test]
    fn perturbation_beyond_tolerance_is_caught() {
        let mut fresh = base();
        fresh[1].y *= 1.001;
        let findings = compare_rows("f", &base(), &fresh);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("x=64"), "{findings:?}");
    }

    #[test]
    fn missing_and_extra_points_are_findings() {
        let fresh = vec![base().remove(0), Row::new("sync", 256.0, 9.0, "s")];
        let findings = compare_rows("f", &base(), &fresh);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|f| f.contains("lost point")));
        assert!(findings.iter().any(|f| f.contains("absent from baseline")));
    }

    #[test]
    fn extra_value_drift_is_a_finding() {
        let mut fresh = base();
        fresh[0].extra.insert("ratio".into(), 0.51);
        let findings = compare_rows("f", &base(), &fresh);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("ratio"));
    }

    #[test]
    fn bandwidth_series_get_headroom() {
        let t = tolerance_for("fig6_ior", "ParColl-64 MB/s");
        assert!(t.rel > DEFAULT_TOL.rel);
        assert!(tolerance_for("fig2", "sync").rel == DEFAULT_TOL.rel);
    }

    #[test]
    fn hostperf_documents_get_wall_clock_envelope() {
        let t = tolerance_for("BENCH_hostperf", "fig1_collective_wall@HEAD");
        assert!(t.matches(0.010, 0.012), "20% host jitter must pass");
        assert!(!t.matches(0.010, 0.020), "2x must still fail");
        // Virtual-time documents keep the tight default.
        assert!(tolerance_for("fig1_collective_wall", "sync-share").rel == DEFAULT_TOL.rel);
    }

    #[test]
    fn dir_comparison_reports_per_file() {
        let root = std::env::temp_dir().join(format!("regress_test_{}", std::process::id()));
        let (b, f) = (root.join("base"), root.join("fresh"));
        std::fs::create_dir_all(&b).unwrap();
        std::fs::create_dir_all(&f).unwrap();
        let write = |dir: &Path, name: &str, rows: &[Row]| {
            std::fs::write(dir.join(name), crate::table::rows_to_json(rows)).unwrap()
        };
        write(&b, "fig.json", &base());
        write(&f, "fig.json", &base());
        write(&b, "gone.json", &base());
        write(&f, "unblessed.json", &base());
        // Non-row JSON is skipped, not a parse error.
        std::fs::write(f.join("metrics.json"), "{\"kind\": \"simtrace_metrics\"}").unwrap();
        let findings = compare_dirs(&f, &b).unwrap();
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings.iter().any(|x| x.contains("gone")));
        assert!(findings.iter().any(|x| x.contains("unblessed")));
        std::fs::remove_dir_all(&root).unwrap();
    }
}
