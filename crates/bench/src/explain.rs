//! The self-explaining half of the regression gate: a fixed traced
//! scenario, its [`RunDigest`] sidecar, and the baseline-vs-HEAD diff
//! that turns a tripped gate into a named root cause.
//!
//! The scenario is deliberately small and fully deterministic
//! (MPI-Tile-IO on the 4-OST jitter-free test file system, partitioned
//! collective I/O, a collective buffer small enough to force several
//! exchange rounds). `explain` emits two artifacts side by side:
//!
//! * [`SCENARIO_FILE`] — ordinary bench [`Row`]s (bandwidth plus phase
//!   seconds), which the `regress` row gate compares point-by-point;
//! * [`DIGEST_FILE`] — the run's [`RunDigest`] (critical-path phases,
//!   per-round charges, per-OST round-binned service). The digest is a
//!   JSON *object*, so the row gate skips it; only the differ reads it.
//!
//! When the gate trips, [`explain_dirs`] aligns the two digests by
//! stable keys and ranks the deltas — "io grew 11.8% on ost 6 in
//! rounds 3-5" — without anyone re-running the baseline commit.

use crate::table::{rows_to_json, Row};
use simnet::{FaultPlan, SimTime};
use simtrace::{diff, digest, digest_from_json, digest_json, DiffReport, RunDigest, TraceSink};
use std::path::Path;
use std::sync::Arc;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

/// Row document the regress gate compares (lives beside the figure
/// rows in the baseline directory).
pub const SCENARIO_FILE: &str = "explain_scenario.json";
/// Digest sidecar the differ reads (invisible to the row gate).
pub const DIGEST_FILE: &str = "explain_digest.json";
/// Human-readable report written next to the fresh results on failure.
pub const REPORT_TEXT: &str = "explain_report.txt";
/// Machine-readable report written next to the fresh results on failure.
pub const REPORT_JSON: &str = "explain_report.json";

/// Parse a fault spec of the form `ost_slow:<ost>:<factor>[:<from_ms>:<until_ms>]`
/// (`<ost>` = index or `any`; the window defaults to the whole run)
/// into a seeded [`FaultPlan`]. Used by the `explain` binary's
/// `--fault` flag and the gate's own tests to perturb the scenario.
pub fn parse_fault(spec: &str) -> Result<Arc<FaultPlan>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["ost_slow", ost, factor, rest @ ..] => {
            let ost = if *ost == "any" {
                None
            } else {
                Some(ost.parse::<usize>().map_err(|e| format!("bad OST index {ost:?}: {e}"))?)
            };
            let factor: f64 = factor.parse().map_err(|e| format!("bad factor {factor:?}: {e}"))?;
            let (from, until) = match rest {
                [] => (SimTime::ZERO, SimTime::secs(1e9)),
                [from_ms, until_ms] => (
                    SimTime::millis(from_ms.parse().map_err(|e| format!("bad from {from_ms:?}: {e}"))?),
                    SimTime::millis(until_ms.parse().map_err(|e| format!("bad until {until_ms:?}: {e}"))?),
                ),
                _ => return Err(format!("bad ost_slow spec {spec:?}: want ost_slow:OST:FACTOR[:FROM_MS:UNTIL_MS]")),
            };
            Ok(Arc::new(FaultPlan::new(0xE79).ost_slow(ost, factor, from, until)))
        }
        _ => Err(format!(
            "unknown fault spec {spec:?}: supported form is ost_slow:OST:FACTOR[:FROM_MS:UNTIL_MS]"
        )),
    }
}

/// Run the fixed explain scenario, optionally perturbed, and reduce it
/// to gate rows plus the diffable digest labelled `label`.
pub fn run_scenario(label: &str, faults: Option<Arc<FaultPlan>>) -> (Vec<Row>, RunDigest) {
    let nprocs = 16;
    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups: 4 });
    // The 4-OST jitter-free test file system keeps the scenario cheap
    // and makes single-OST perturbations unmistakable in the digest.
    cfg.fs = simfs::FsConfig::tiny();
    // A small collective buffer forces several exchange rounds per
    // call, so the differ has round structure to attribute into.
    cfg.info.set("cb_nodes", 4i64);
    cfg.info.set("cb_buffer_size", 128i64);
    cfg.trace = sink.clone();
    cfg.faults = faults;
    let r = run_workload(TileIo::tiny(nprocs), cfg);
    let trace = sink.finish();
    let d = digest(&trace, label).expect("traced run yields a digest");

    let rows = vec![Row::new("explain-scenario", nprocs as f64, r.write_mbps, "MB/s")
        .with("wall_s", r.write_seconds)
        .with("sync_s", r.profile_avg.sync.as_secs())
        .with("p2p_s", r.profile_avg.p2p.as_secs())
        .with("io_s", r.profile_avg.io.as_secs())
        .with("local_s", r.profile_avg.local.as_secs())];
    (rows, d)
}

/// Write the scenario rows and digest sidecar into `dir`.
pub fn write_outputs(dir: &Path, rows: &[Row], d: &RunDigest) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(SCENARIO_FILE), rows_to_json(rows))?;
    std::fs::write(dir.join(DIGEST_FILE), digest_json(d))?;
    Ok(())
}

fn load_digest(dir: &Path) -> Result<RunDigest, String> {
    let path = dir.join(DIGEST_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    digest_from_json(&text).ok_or_else(|| format!("{} is not a run digest", path.display()))
}

/// Diff the digest sidecars of two result directories: `baseline`'s
/// committed digest against `fresh`'s regenerated one.
pub fn explain_dirs(fresh: &Path, baseline: &Path) -> Result<DiffReport, String> {
    Ok(diff::diff(&load_digest(baseline)?, &load_digest(fresh)?))
}

/// Write the report into `dir` as [`REPORT_TEXT`] and [`REPORT_JSON`].
pub fn write_report(dir: &Path, report: &DiffReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join(REPORT_TEXT), report.render_text())?;
    std::fs::write(dir.join(REPORT_JSON), report.to_json())?;
    Ok(())
}
