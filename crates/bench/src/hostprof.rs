//! Driver-side glue for the `simtrace::host` profiler: run a figure
//! scenario under a root scope, fold the sample report into
//! per-subsystem attribution [`Row`]s, print the top host sinks, and
//! render the collapsed-stack file flamegraph tools consume.
//!
//! The `hostprof` binary is a thin wrapper over this module, and
//! `hostperf --profile` reuses [`profile`] + [`print_top`] to attach an
//! attribution printout to its timing runs.

use crate::figures::{collective_wall, tileio_group_sweep, tileio_scalability};
use crate::{Row, Scale};
use simtrace::host;
use std::time::Instant;

/// A named figure sweep to run in-process: `(figure name, runner)`.
pub type Scenario = (&'static str, Box<dyn Fn()>);

/// The profiled figure scenarios: the same fig1/fig7/fig9 sweeps
/// `hostperf` times (identical parameters per scale), so attribution
/// percentages line up with the wall-clock series PRs are judged on.
pub fn scenarios(scale: Scale) -> Vec<Scenario> {
    let full = scale == Scale::Paper;
    vec![
        (
            "fig1_collective_wall",
            Box::new(move || {
                let procs: &[usize] = if full { &[16, 32, 64, 128, 256, 512] } else { &[8, 16, 32] };
                std::hint::black_box(collective_wall(procs, full));
            }) as Box<dyn Fn()>,
        ),
        (
            "fig7_tileio_groups",
            Box::new(move || {
                let (procs, groups): (usize, &[usize]) = if full {
                    (512, &[1, 2, 4, 8, 16, 32, 64, 128, 256])
                } else {
                    (16, &[1, 2, 4])
                };
                std::hint::black_box(tileio_group_sweep(procs, groups, full));
            }),
        ),
        (
            "fig9_scalability",
            Box::new(move || {
                let procs: &[usize] = if full { &[64, 128, 256, 512, 1024] } else { &[8, 16] };
                std::hint::black_box(tileio_scalability(procs, |p| (p / 8).min(64), full));
            }),
        ),
    ]
}

/// One profiled scenario run: the folded sample report plus the
/// measured wall it is attributed against.
pub struct Profiled {
    /// Folded host-time samples (see [`host::collect`]).
    pub report: host::Report,
    /// Host seconds the scenario took under the profiler.
    pub wall_s: f64,
}

impl Profiled {
    /// Fraction of the measured wall attributed to *named* sinks, in
    /// percent — every sampled frame except the root scenario scope's
    /// self time (setup, verification and result folding the finer
    /// probes don't cover).
    pub fn attributed_pct(&self) -> f64 {
        let named: u64 = self
            .report
            .by_site()
            .iter()
            .filter(|s| s.site != host::Site::Scenario)
            .map(|s| s.self_ns)
            .sum();
        100.0 * named as f64 / (self.wall_s * 1e9).max(f64::MIN_POSITIVE)
    }
}

/// Run `run` once with the profiler armed, under a root
/// [`host::Site::Scenario`] scope, and collect the report. Profiler
/// state is reset first so each scenario's report stands alone; the
/// profiler is disarmed again before returning.
pub fn profile(run: &dyn Fn()) -> Profiled {
    host::reset();
    host::set_enabled(true);
    let t0 = Instant::now();
    {
        let _root = host::scope(host::Site::Scenario);
        run();
    }
    let wall_s = t0.elapsed().as_secs_f64();
    host::set_enabled(false);
    Profiled { report: host::collect(), wall_s }
}

/// Fold a profiled run into report rows: `<fig>/<subsystem>` percent
/// rows (plus `<fig>/site/<name>` per-site detail), the
/// `<fig>/attributed` coverage row, and `<fig>/counter/<name>` rows
/// carrying the flatten-cache and buffer-pool hit counts. Percentages
/// are of measured wall; `self_s` extras carry the absolute seconds.
pub fn attribution_rows(fig: &str, p: &Profiled) -> Vec<Row> {
    let wall_ns = (p.wall_s * 1e9).max(f64::MIN_POSITIVE);
    let mut rows = Vec::new();
    for (subsystem, self_ns) in p.report.by_subsystem() {
        rows.push(
            Row::new(format!("{fig}/{subsystem}"), 0.0, 100.0 * self_ns as f64 / wall_ns, "%")
                .with("self_s", self_ns as f64 / 1e9),
        );
    }
    for s in p.report.by_site() {
        rows.push(
            Row::new(
                format!("{fig}/site/{}", s.site.name()),
                0.0,
                100.0 * s.self_ns as f64 / wall_ns,
                "%",
            )
            .with("self_s", s.self_ns as f64 / 1e9)
            .with("samples", s.count as f64),
        );
    }
    let mut attributed = Row::new(format!("{fig}/attributed"), 0.0, p.attributed_pct(), "%")
        .with("wall_s", p.wall_s)
        .with("dropped", p.report.dropped as f64);
    for (thread, d) in &p.report.dropped_by_thread {
        attributed = attributed.with(&format!("dropped[{thread}]"), *d as f64);
    }
    rows.push(attributed);
    for (name, value) in &p.report.counters {
        rows.push(Row::new(format!("{fig}/counter/{name}"), 0.0, *value as f64, "n"));
    }
    rows
}

/// Print the top-`k` host sinks of a profiled run by self time, with
/// percentages of the measured wall.
pub fn print_top(fig: &str, p: &Profiled, k: usize) {
    let wall_ns = (p.wall_s * 1e9).max(f64::MIN_POSITIVE);
    let sites = p.report.by_site();
    println!(
        "hostprof: {fig} wall {:.3}s, {:.1}% attributed to named sinks \
         ({} sites, {} dropped samples); top {} by self time:",
        p.wall_s,
        p.attributed_pct(),
        sites.len(),
        p.report.dropped,
        k.min(sites.len())
    );
    for s in sites.iter().take(k) {
        println!(
            "  {:5.1}%  {:9.4}s  {:<10} {:<14} ({} samples)",
            100.0 * s.self_ns as f64 / wall_ns,
            s.self_ns as f64 / 1e9,
            s.site.subsystem(),
            s.site.name(),
            s.count
        );
    }
    let mut counters = String::new();
    for (name, value) in &p.report.counters {
        if !counters.is_empty() {
            counters.push_str(", ");
        }
        counters.push_str(&format!("{name} {value}"));
    }
    println!("  counters: {counters}");
    // Drops are a per-worker phenomenon under the sharded executor:
    // name the thread instead of hiding it in the sum.
    for (thread, d) in &p.report.dropped_by_thread {
        println!("  dropped[{thread}]: {d}");
    }
}

/// Write the report's collapsed stacks to `path` (the input format of
/// `flamegraph.pl`, inferno and speedscope: `outer;inner self_ns`).
pub fn write_collapsed(path: &std::path::Path, p: &Profiled) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, p.report.collapsed())
}
