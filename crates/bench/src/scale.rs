//! Run-scale selection for the figure binaries.

/// Paper-scale or reduced-scale execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The paper's process counts and data sizes.
    Paper,
    /// Reduced process counts / sizes for smoke tests and CI.
    Quick,
}

impl Scale {
    /// Parse from `std::env::args`: `--quick` selects [`Scale::Quick`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Choose between two values by scale.
    pub fn pick<T>(self, paper: T, quick: T) -> T {
        match self {
            Scale::Paper => paper,
            Scale::Quick => quick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Paper.pick(1, 2), 1);
        assert_eq!(Scale::Quick.pick(1, 2), 2);
    }
}
