//! Sweep functions behind each figure binary.
//!
//! Each function runs the relevant workload through
//! [`workloads::runner::run_workload`] and returns [`Row`]s shaped like
//! the paper's series. The binaries only choose parameters and print.

use crate::table::Row;
use workloads::btio::BtIo;
use workloads::flashio::FlashIo;
use workloads::ior::Ior;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

/// Baseline series label: our ext2ph stands in for Cray's MPI-IO, as the
/// paper's OPAL library did ("comparable performance", §2.2).
pub const BASELINE: &str = "Cray/ext2ph";

/// A tile-io instance scaled for the requested process count; `full`
/// selects the paper's 1024x768x64B tiles, otherwise a 16x smaller tile
/// with identical structure.
pub fn tileio_at(nprocs: usize, full: bool) -> TileIo {
    if full {
        TileIo::paper(nprocs)
    } else {
        let (ntx, nty) = TileIo::near_square_grid(nprocs);
        TileIo {
            ntx,
            nty,
            tile_x: 256,
            tile_y: 192,
            elem: 64,
        }
    }
}

/// Figures 1 & 2: profile MPI-Tile-IO collective writes under the
/// baseline protocol across process counts. Returns, per process count,
/// the average per-rank seconds in sync / p2p / io and the sync share.
pub fn collective_wall(procs: &[usize], full: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in procs {
        let w = tileio_at(p, full);
        let r = run_workload(w, RunConfig::paper(IoMode::Collective));
        let total =
            r.profile_avg.sync + r.profile_avg.p2p + r.profile_avg.io + r.profile_avg.local;
        let frac = if total.as_secs() > 0.0 {
            r.profile_avg.sync.as_secs() / total.as_secs() * 100.0
        } else {
            0.0
        };
        rows.push(
            Row::new("sync-share", p as f64, frac, "%")
                .with("sync_s", r.profile_avg.sync.as_secs())
                .with("p2p_s", r.profile_avg.p2p.as_secs())
                .with("io_s", r.profile_avg.io.as_secs())
                .with("local_s", r.profile_avg.local.as_secs())
                .with("write_mbps", r.write_mbps),
        );
    }
    rows
}

/// Figure 6: IOR collective write bandwidth, baseline vs ParColl-N.
/// `block`/`transfer` let the harness shrink the per-process volume while
/// keeping the paper's per-call shape (bandwidth is per-call steady
/// state).
pub fn ior_bandwidth(
    procs: &[usize],
    group_counts: &[usize],
    block: u64,
    transfer: u64,
    max_calls: Option<usize>,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in procs {
        let make = || Ior {
            nprocs: p,
            block_size: block,
            transfer_size: transfer,
            max_calls,
        };
        let base = run_workload(make(), RunConfig::paper(IoMode::Collective));
        rows.push(Row::new(BASELINE, p as f64, base.write_mbps, "MB/s"));
        for &g in group_counts {
            if g > p / 8 {
                continue; // paper: least group size of 8
            }
            let r = run_workload(make(), RunConfig::paper(IoMode::Parcoll { groups: g }));
            rows.push(Row::new(format!("ParColl-{g}"), p as f64, r.write_mbps, "MB/s"));
        }
    }
    rows
}

/// Figures 7 & 8: MPI-Tile-IO bandwidth and synchronization cost vs
/// subgroup count at a fixed process count. Group count 1 is the
/// baseline.
pub fn tileio_group_sweep(nprocs: usize, group_counts: &[usize], full: bool) -> Vec<Row> {
    let mut rows = Vec::new();
    for &g in group_counts {
        let mode = if g <= 1 {
            IoMode::Collective
        } else {
            IoMode::Parcoll { groups: g }
        };
        let mut cfg = RunConfig::paper(mode);
        cfg.read_back = true;
        // Visualization output is consumed by external tools, so the
        // on-disk layout must stay canonical: if over-partitioning forces
        // an intermediate view, it must scatter through the original view
        // rather than reorder the file. This is what makes extreme group
        // counts collapse (paper Figure 7).
        cfg.info.set("parcoll_iview_scatter", "true");
        let r = run_workload(tileio_at(nprocs, full), cfg);
        let series = if g <= 1 {
            BASELINE.to_string()
        } else {
            format!("ParColl-{g}")
        };
        rows.push(
            Row::new(series, g as f64, r.write_mbps, "MB/s")
                .with("read_mbps", r.read_mbps.unwrap_or(0.0))
                .with("sync_s_avg", r.profile_avg.sync.as_secs())
                .with("sync_s_max", r.profile_max.sync.as_secs())
                .with(
                    "sync_ratio",
                    r.profile_avg.sync.as_secs()
                        / (r.profile_avg.sync + r.profile_avg.p2p + r.profile_avg.io)
                            .as_secs()
                            .max(1e-12),
                ),
        );
    }
    rows
}

/// The read sweep (fig6-style counterpart for `read_at_all`, DESIGN.md
/// §15): restart read bandwidth of the hole-dense checkpoint-restart
/// pattern vs subgroup count, baseline vs ParColl-N, each with and
/// without collective data sieving (`cb_ds_read`). `den` is the restart
/// narrowing denominator — den=4 leaves 75 % holes per covering extent,
/// past the default cutover, so the sieved series exercise the list-I/O
/// arm.
pub fn restart_read_sweep(
    nprocs: usize,
    group_counts: &[usize],
    full: bool,
    den: usize,
) -> Vec<Row> {
    use workloads::restart::{run_restart, Restart};
    let mut rows = Vec::new();
    for &g in group_counts {
        for sieve in [false, true] {
            let mode = if g <= 1 {
                IoMode::Collective
            } else {
                IoMode::Parcoll { groups: g }
            };
            let mut cfg = RunConfig::paper(mode);
            if sieve {
                cfg.info.set("cb_ds_read", "enable");
            }
            let r = run_restart(Restart::with_den(tileio_at(nprocs, full), den), cfg);
            let series = match (g <= 1, sieve) {
                (true, false) => BASELINE.to_string(),
                (true, true) => format!("{BASELINE} +sieve"),
                (false, false) => format!("ParColl-{g}"),
                (false, true) => format!("ParColl-{g} +sieve"),
            };
            rows.push(
                Row::new(series, g as f64, r.read_mbps, "MB/s")
                    .with("write_mbps", r.write_mbps)
                    .with("read_s", r.read_seconds)
                    .with("ost_bytes", r.fs_stats.total_bytes as f64),
            );
        }
    }
    rows
}

/// Figure 9: MPI-Tile-IO collective-write scalability, baseline vs
/// ParColl at its best group count per process count.
pub fn tileio_scalability(
    procs: &[usize],
    groups_for: impl Fn(usize) -> usize,
    full: bool,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in procs {
        let base = run_workload(tileio_at(p, full), RunConfig::paper(IoMode::Collective));
        rows.push(Row::new(BASELINE, p as f64, base.write_mbps, "MB/s"));
        let g = groups_for(p).max(2);
        let r = run_workload(
            tileio_at(p, full),
            RunConfig::paper(IoMode::Parcoll { groups: g }),
        );
        rows.push(
            Row::new("ParColl(best)", p as f64, r.write_mbps, "MB/s").with("groups", g as f64),
        );
    }
    rows
}

/// Figure 10: BT-IO bandwidth vs (square) process counts, baseline vs
/// ParColl. `grid`/`steps` choose the class (C: 162/40).
pub fn btio_bandwidth(procs: &[usize], grid: usize, steps: usize, groups: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in procs {
        let make = || BtIo::with_grid(p, grid, steps);
        let base = run_workload(make(), RunConfig::paper(IoMode::Collective));
        rows.push(
            Row::new(BASELINE, p as f64, base.write_mbps, "MB/s")
                .with("sync_s", base.profile_avg.sync.as_secs())
                .with("p2p_s", base.profile_avg.p2p.as_secs())
                .with("io_s", base.profile_avg.io.as_secs())
                .with("local_s", base.profile_avg.local.as_secs()),
        );
        let g = groups.min(p / 8).max(2);
        let r = run_workload(make(), RunConfig::paper(IoMode::Parcoll { groups: g }));
        rows.push(
            Row::new(format!("ParColl-{g}"), p as f64, r.write_mbps, "MB/s")
                .with("sync_s", r.profile_avg.sync.as_secs())
                .with("p2p_s", r.profile_avg.p2p.as_secs())
                .with("io_s", r.profile_avg.io.as_secs())
                .with("local_s", r.profile_avg.local.as_secs()),
        );
    }
    rows
}

/// Figure 11: Flash-IO checkpoint bandwidth at one process count:
/// baseline and ParColl under the default aggregator selection and under
/// an explicit 64-aggregator hint, plus independent I/O ("Cray w/o
/// Coll").
pub fn flashio_variants(nprocs: usize, blocks_per_proc: usize, groups: usize) -> Vec<Row> {
    let make = || {
        let mut w = FlashIo::checkpoint(nprocs);
        w.blocks_per_proc = blocks_per_proc;
        w
    };
    let mut rows = Vec::new();

    let base = run_workload(make(), RunConfig::paper(IoMode::Collective));
    rows.push(Row::new(format!("{BASELINE} (default aggs)"), nprocs as f64, base.write_mbps, "MB/s"));

    let pc = run_workload(make(), RunConfig::paper(IoMode::Parcoll { groups }));
    rows.push(Row::new(
        format!("ParColl-{groups} (default aggs)"),
        nprocs as f64,
        pc.write_mbps,
        "MB/s",
    ));

    // Explicit 64 aggregators (the Cray XT practice for very large runs,
    // paper §5.4 citing [33]).
    let agg_list: String = (0..64.min(nprocs))
        .map(|i| (i * (nprocs / 64.min(nprocs))).to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut cfg = RunConfig::paper(IoMode::Collective);
    cfg.info.set("cb_config_list", &agg_list);
    let base64 = run_workload(make(), cfg);
    rows.push(Row::new(format!("{BASELINE} (64 aggs)"), nprocs as f64, base64.write_mbps, "MB/s"));

    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups });
    cfg.info.set("cb_config_list", &agg_list);
    let pc64 = run_workload(make(), cfg);
    rows.push(Row::new(
        format!("ParColl-{groups} (64 aggs)"),
        nprocs as f64,
        pc64.write_mbps,
        "MB/s",
    ));

    let ind = run_workload(make(), RunConfig::paper(IoMode::Independent));
    rows.push(Row::new("Cray w/o Coll", nprocs as f64, ind.write_mbps, "MB/s"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collective_wall_rows_have_profile_extras() {
        let rows = collective_wall(&[8, 16], false);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.extra.contains_key("sync_s"));
            assert!(r.y >= 0.0 && r.y <= 100.0);
        }
    }

    #[test]
    fn ior_rows_cover_series() {
        let rows = ior_bandwidth(&[16], &[2], 16 << 10, 4 << 10, None);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r.series == BASELINE));
        assert!(rows.iter().any(|r| r.series == "ParColl-2"));
        assert!(rows.iter().all(|r| r.y > 0.0));
    }

    #[test]
    fn group_sweep_includes_baseline_label() {
        let rows = tileio_group_sweep(8, &[1, 2], false);
        assert_eq!(rows[0].series, BASELINE);
        assert_eq!(rows[1].series, "ParColl-2");
        assert!(rows.iter().all(|r| r.extra.contains_key("read_mbps")));
    }

    #[test]
    fn read_sweep_covers_sieved_and_unsieved_series() {
        let rows = restart_read_sweep(8, &[1, 2], false, 4);
        assert_eq!(rows.len(), 4);
        let y = |s: &str| rows.iter().find(|r| r.series == s).unwrap().y;
        assert!(y("ParColl-2 +sieve") > y(BASELINE), "sieved partitioned read must win");
        let bytes = |s: &str| rows.iter().find(|r| r.series == s).unwrap().extra["ost_bytes"];
        assert!(
            bytes("ParColl-2 +sieve") < bytes("ParColl-2"),
            "list I/O must not fetch the holes"
        );
    }

    #[test]
    fn flash_variants_produce_five_series() {
        let rows = flashio_variants(8, 2, 2);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|r| r.series == "Cray w/o Coll"));
    }
}
