//! Result rows, console tables and JSON emission.

use simtrace::json::Json;
use std::collections::BTreeMap;
use std::path::Path;

/// One measured point of a figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Series label (e.g. "ParColl-64", "Cray/ext2ph baseline").
    pub series: String,
    /// X coordinate label (e.g. process count, subgroup count).
    pub x: f64,
    /// Primary Y value.
    pub y: f64,
    /// Unit of `y` (e.g. "MB/s", "s", "%").
    pub unit: String,
    /// Additional named values (profile components etc.).
    pub extra: BTreeMap<String, f64>,
}

impl Row {
    /// Construct a row.
    pub fn new(series: impl Into<String>, x: f64, y: f64, unit: impl Into<String>) -> Self {
        Row {
            series: series.into(),
            x,
            y,
            unit: unit.into(),
            extra: BTreeMap::new(),
        }
    }

    /// Attach a named extra value.
    pub fn with(mut self, key: &str, value: f64) -> Self {
        self.extra.insert(key.to_string(), value);
        self
    }

    /// JSON object form (field order matches the seed's serde layout, so
    /// regenerated `bench_results/*.json` stay byte-compatible).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("series".into(), Json::Str(self.series.clone())),
            ("x".into(), Json::Num(self.x)),
            ("y".into(), Json::Num(self.y)),
            ("unit".into(), Json::Str(self.unit.clone())),
            (
                "extra".into(),
                Json::Obj(
                    self.extra
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse one row from its JSON object form.
    pub fn from_json(doc: &Json) -> Option<Row> {
        let mut extra = BTreeMap::new();
        if let Some(members) = doc.get("extra").and_then(Json::as_obj) {
            for (k, v) in members {
                extra.insert(k.clone(), v.as_f64()?);
            }
        }
        Some(Row {
            series: doc.get("series")?.as_str()?.to_string(),
            x: doc.get("x")?.as_f64()?,
            y: doc.get("y")?.as_f64()?,
            unit: doc.get("unit")?.as_str()?.to_string(),
            extra,
        })
    }
}

/// Serialize rows exactly as the seed's `serde_json::to_string_pretty`
/// did (2-space indent, insertion-ordered fields, sorted `extra`).
pub fn rows_to_json(rows: &[Row]) -> String {
    Json::Arr(rows.iter().map(Row::to_json).collect()).pretty()
}

/// Parse a `bench_results/*.json` document into rows (`None` when the
/// file holds something other than a row array, e.g. trace metrics).
pub fn rows_from_json(text: &str) -> Option<Vec<Row>> {
    Json::parse(text)
        .ok()?
        .as_array()?
        .iter()
        .map(Row::from_json)
        .collect()
}

/// Print rows as an aligned console table, grouped by series.
pub fn print_table(title: &str, xlabel: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    let extra_keys: Vec<String> = {
        let mut keys: Vec<String> = rows
            .iter()
            .flat_map(|r| r.extra.keys().cloned())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    };
    print!("{:<28} {:>10} {:>14}", "series", xlabel, "value");
    for k in &extra_keys {
        print!(" {k:>14}");
    }
    println!();
    for r in rows {
        print!(
            "{:<28} {:>10} {:>10.1} {:>3}",
            r.series,
            format_x(r.x),
            r.y,
            r.unit
        );
        for k in &extra_keys {
            match r.extra.get(k) {
                Some(v) => print!(" {v:>14.4}"),
                None => print!(" {:>14}", "-"),
            }
        }
        println!();
    }
}

fn format_x(x: f64) -> String {
    if x.fract() == 0.0 {
        format!("{}", x as i64)
    } else {
        format!("{x:.2}")
    }
}

/// Write rows as JSON to `bench_results/<name>.json` (creating the
/// directory), so EXPERIMENTS.md numbers are regenerable.
pub fn emit_json(name: &str, rows: &[Row]) {
    let dir = Path::new("bench_results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, rows_to_json(rows)) {
        eprintln!("warning: cannot write {path:?}: {e}");
    } else {
        println!("[wrote {}]", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_builder() {
        let r = Row::new("s", 1.0, 2.0, "MB/s").with("sync", 0.5);
        assert_eq!(r.series, "s");
        assert_eq!(r.extra["sync"], 0.5);
    }

    #[test]
    fn table_prints_without_panic() {
        let rows = vec![
            Row::new("a", 128.0, 100.0, "MB/s").with("sync_s", 1.0),
            Row::new("b", 512.0, 4000.0, "MB/s"),
        ];
        print_table("test", "procs", &rows);
    }

    #[test]
    fn json_round_trips() {
        let rows = vec![Row::new("a", 1.0, 2.5, "s").with("sync_s", 0.25)];
        let json = rows_to_json(&rows);
        assert!(json.contains("\"series\": \"a\""));
        let back = rows_from_json(&json).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].series, "a");
        assert_eq!(back[0].x, 1.0);
        assert_eq!(back[0].y, 2.5);
        assert_eq!(back[0].extra["sync_s"], 0.25);
        // Re-serialization is byte-identical (determinism contract).
        assert_eq!(rows_to_json(&back), json);
    }

    #[test]
    fn non_row_documents_are_rejected_not_mangled() {
        assert!(rows_from_json("{\"kind\": \"simtrace_metrics\"}").is_none());
        assert!(rows_from_json("not json").is_none());
    }
}
