//! Shared folding of simtrace artifacts into report-ready figures.
//!
//! Two consumers need the same folds: `report` renders a persisted
//! metrics document (`trace_metrics.json`) as markdown, and
//! `ost_heatmap` folds a live [`Trace`]'s OST tracks into per-target
//! load lines. Both folds live here so the span/counter names are
//! spelled in exactly one place.

use simtrace::json::Json;
use simtrace::{Event, Trace, TrackKey};

/// Per-OST figures folded out of one trace track.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct OstLoad {
    /// Total service time, µs (`ost/serve` span durations).
    pub busy_us: f64,
    /// Total queue wait, µs (`ost/queue` span durations).
    pub queue_us: f64,
    /// Requests served (`ost_requests` counter).
    pub requests: u64,
    /// Bytes moved (`ost_req_bytes` histogram sum).
    pub bytes: f64,
}

/// Fold every OST track of a finished trace into per-target loads,
/// indexed by OST id (targets without a track fold to zero).
pub fn ost_loads(trace: &Trace) -> Vec<OstLoad> {
    let mut osts: Vec<OstLoad> = Vec::new();
    for track in trace.ost_tracks() {
        let TrackKey::Ost(i) = track.key else { continue };
        if osts.len() <= i {
            osts.resize(i + 1, OstLoad::default());
        }
        let load = &mut osts[i];
        for event in &track.events {
            if let Event::Span { cat: "ost", name, dur_us, .. } = event {
                match name.as_ref() {
                    "serve" => load.busy_us += dur_us,
                    "queue" => load.queue_us += dur_us,
                    _ => {}
                }
            }
        }
        load.requests = track.counters.get("ost_requests").copied().unwrap_or(0);
        load.bytes = track.hists.get("ost_req_bytes").map_or(0.0, |h| h.sum);
    }
    osts
}

/// Load-distribution summary over a set of per-OST loads.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OstSummary {
    /// Busiest target's service time, µs.
    pub max_busy_us: f64,
    /// Mean service time over all targets, µs.
    pub mean_busy_us: f64,
    /// `max / mean` (1.0 = perfectly flat).
    pub imbalance: f64,
    /// Fraction of targets that served at least one request.
    pub breadth: f64,
    /// Mean request size, bytes.
    pub mean_request_bytes: f64,
}

/// Summarize per-OST loads into the imbalance figures the heatmap and
/// the ablation discussions quote.
pub fn summarize_ost_loads(osts: &[OstLoad]) -> OstSummary {
    let max_busy_us = osts.iter().map(|o| o.busy_us).fold(0.0f64, f64::max);
    let mean_busy_us = if osts.is_empty() {
        0.0
    } else {
        osts.iter().map(|o| o.busy_us).sum::<f64>() / osts.len() as f64
    };
    let active = osts.iter().filter(|o| o.requests > 0).count();
    let total_reqs: u64 = osts.iter().map(|o| o.requests).sum();
    let total_bytes: f64 = osts.iter().map(|o| o.bytes).sum();
    OstSummary {
        max_busy_us,
        mean_busy_us,
        imbalance: max_busy_us / mean_busy_us.max(1e-12),
        breadth: active as f64 / osts.len().max(1) as f64,
        mean_request_bytes: total_bytes / (total_reqs.max(1) as f64),
    }
}

/// Render a `simtrace_metrics` JSON document as markdown tables:
/// cross-track counter totals, histogram summaries and span-duration
/// totals. Used by `report` for any `bench_results/*.json` that holds a
/// metrics document instead of figure rows.
pub fn print_metrics_doc(doc: &Json) {
    let Some(totals) = doc.get("totals") else {
        eprintln!("(malformed metrics document: no totals)");
        return;
    };
    if let Some(counters) = totals.get("counters").and_then(Json::as_obj) {
        if !counters.is_empty() {
            println!("| counter | total |");
            println!("|---|---|");
            for (k, v) in counters {
                println!("| {k} | {} |", v.as_u64().unwrap_or(0));
            }
            println!();
        }
    }
    if let Some(hists) = totals.get("histograms").and_then(Json::as_obj) {
        if !hists.is_empty() {
            println!("| histogram | count | mean | min | max |");
            println!("|---|---|---|---|---|");
            for (k, h) in hists {
                let f = |key: &str| h.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "| {k} | {} | {:.1} | {:.1} | {:.1} |",
                    h.get("count").and_then(Json::as_u64).unwrap_or(0),
                    f("mean"),
                    f("min"),
                    f("max"),
                );
            }
            println!();
        }
    }
    if let Some(spans) = totals.get("span_totals_us").and_then(Json::as_obj) {
        if !spans.is_empty() {
            println!("| span | total (µs, all tracks) |");
            println!("|---|---|");
            for (k, v) in spans {
                println!("| {k} | {:.1} |", v.as_f64().unwrap_or(0.0));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simtrace::TraceSink;

    fn ost_trace() -> Trace {
        let sink = TraceSink::enabled();
        let o0 = sink.recorder(TrackKey::Ost(0));
        o0.span("ost", "serve", 0.0, 30.0, vec![]);
        o0.span("ost", "queue", 0.0, 5.0, vec![]);
        o0.count("ost_requests", 3);
        o0.observe("ost_req_bytes", 4096.0);
        o0.observe("ost_req_bytes", 4096.0);
        let o2 = sink.recorder(TrackKey::Ost(2));
        o2.span("ost", "serve", 10.0, 20.0, vec![]);
        o2.count("ost_requests", 1);
        o2.observe("ost_req_bytes", 8192.0);
        sink.finish()
    }

    #[test]
    fn loads_fold_per_target_with_gaps() {
        let osts = ost_loads(&ost_trace());
        assert_eq!(osts.len(), 3);
        assert_eq!(osts[0].busy_us, 30.0);
        assert_eq!(osts[0].queue_us, 5.0);
        assert_eq!(osts[0].requests, 3);
        assert_eq!(osts[0].bytes, 8192.0);
        assert_eq!(osts[1], OstLoad::default());
        assert_eq!(osts[2].busy_us, 10.0);
    }

    #[test]
    fn summary_computes_imbalance_and_breadth() {
        let osts = ost_loads(&ost_trace());
        let s = summarize_ost_loads(&osts);
        assert_eq!(s.max_busy_us, 30.0);
        assert!((s.mean_busy_us - 40.0 / 3.0).abs() < 1e-9);
        assert!((s.imbalance - 30.0 / (40.0 / 3.0)).abs() < 1e-9);
        assert!((s.breadth - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.mean_request_bytes, 16384.0 / 4.0);
    }

    #[test]
    fn metrics_doc_printer_handles_real_documents() {
        let doc = Json::parse(&simtrace::metrics_json(&ost_trace())).unwrap();
        print_metrics_doc(&doc); // must not panic
        print_metrics_doc(&Json::parse("{}").unwrap()); // malformed: no totals
    }
}
