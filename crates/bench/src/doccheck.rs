//! Docs-drift gate: cross-check figures quoted in the prose docs
//! against the emitted `bench_results/*.json` rows.
//!
//! Prose that quotes a number carries an invisible HTML-comment marker
//! tying it to the row it came from:
//!
//! ```text
//! <!-- check: file=fig7_tileio_groups series="ParColl-4" x=4 value=1534.9 -->
//! ```
//!
//! `report --check-docs` re-reads the markers and fails when the quoted
//! `value` no longer matches the row's `y` (or, with `extra=<key>`, that
//! extra field) within `rel` relative tolerance (default 0.5% — quoted
//! numbers are rounded for prose). A doc set with *zero* markers fails
//! too: the gate guarding nothing is itself a drift.

use crate::table::{rows_from_json, Row};
use std::path::Path;

/// One `<!-- check: ... -->` marker found in a doc.
#[derive(Debug, Clone, PartialEq)]
pub struct DocCheck {
    /// Doc the marker lives in (for reporting).
    pub doc: String,
    /// 1-indexed line of the marker.
    pub line: usize,
    /// Row file stem under the results directory.
    pub file: String,
    /// Row series to match.
    pub series: String,
    /// Row x to match.
    pub x: f64,
    /// The value the prose quotes.
    pub value: f64,
    /// Relative tolerance for the comparison.
    pub rel: f64,
    /// Check this extra field instead of `y`.
    pub extra: Option<String>,
}

/// Default relative tolerance: prose rounds to a few significant digits.
pub const DEFAULT_REL: f64 = 0.005;

fn unquote(v: &str) -> &str {
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .unwrap_or(v)
}

/// Split a marker body into `key=value` tokens, honoring quoted values
/// with spaces (`series="Cray/ext2ph"` is one token).
fn tokens(body: &str) -> Vec<(&str, &str)> {
    let mut out = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let Some(eq) = rest.find('=') else { break };
        let key = rest[..eq].trim();
        let after = &rest[eq + 1..];
        let (value, tail) = if let Some(q) = after.strip_prefix('"') {
            match q.find('"') {
                Some(end) => (&q[..end], &q[end + 1..]),
                None => (q, ""),
            }
        } else {
            match after.find(char::is_whitespace) {
                Some(end) => (&after[..end], &after[end..]),
                None => (after, ""),
            }
        };
        out.push((key, value));
        rest = tail.trim_start();
    }
    out
}

/// Extract every check marker from `text` (one doc). Malformed markers
/// are errors, not skips — a typo'd marker silently checks nothing.
pub fn parse_markers(doc: &str, text: &str) -> Result<Vec<DocCheck>, String> {
    let mut checks = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("<!-- check:") {
            let body_start = at + "<!-- check:".len();
            let Some(end) = rest[body_start..].find("-->") else {
                return Err(format!("{doc}:{}: unterminated check marker", i + 1));
            };
            let body = &rest[body_start..body_start + end];
            let mut check = DocCheck {
                doc: doc.to_string(),
                line: i + 1,
                file: String::new(),
                series: String::new(),
                x: f64::NAN,
                value: f64::NAN,
                rel: DEFAULT_REL,
                extra: None,
            };
            for (key, raw) in tokens(body) {
                let v = unquote(raw);
                let num = || {
                    v.parse::<f64>()
                        .map_err(|e| format!("{doc}:{}: bad {key}={v:?}: {e}", i + 1))
                };
                match key {
                    "file" => check.file = v.to_string(),
                    "series" => check.series = v.to_string(),
                    "x" => check.x = num()?,
                    "value" => check.value = num()?,
                    "rel" => check.rel = num()?,
                    "extra" => check.extra = Some(v.to_string()),
                    other => {
                        return Err(format!("{doc}:{}: unknown check key {other:?}", i + 1))
                    }
                }
            }
            if check.file.is_empty() || check.series.is_empty() {
                return Err(format!("{doc}:{}: check needs file= and series=", i + 1));
            }
            if check.x.is_nan() || check.value.is_nan() {
                return Err(format!("{doc}:{}: check needs x= and value=", i + 1));
            }
            checks.push(check);
            rest = &rest[body_start + end..];
        }
    }
    Ok(checks)
}

fn find_row<'a>(rows: &'a [Row], check: &DocCheck) -> Option<&'a Row> {
    rows.iter()
        .find(|r| r.series == check.series && (r.x - check.x).abs() < 1e-9)
}

/// Verify `checks` against the row documents under `results_dir`.
/// Returns human-readable failures (empty = all quoted figures hold).
pub fn verify(checks: &[DocCheck], results_dir: &Path) -> Vec<String> {
    let mut failures = Vec::new();
    for c in checks {
        let at = format!("{}:{}", c.doc, c.line);
        let path = results_dir.join(format!("{}.json", c.file));
        let Ok(text) = std::fs::read_to_string(&path) else {
            failures.push(format!("{at}: missing results file {}", path.display()));
            continue;
        };
        let Some(rows) = rows_from_json(&text) else {
            failures.push(format!("{at}: {} is not a row document", path.display()));
            continue;
        };
        let Some(row) = find_row(&rows, c) else {
            failures.push(format!(
                "{at}: no row {:?} x={} in {}",
                c.series, c.x, c.file
            ));
            continue;
        };
        let actual = match &c.extra {
            None => Some(row.y),
            Some(key) => row.extra.get(key).copied(),
        };
        let Some(actual) = actual else {
            failures.push(format!(
                "{at}: row {:?} x={} has no extra {:?}",
                c.series,
                c.x,
                c.extra.as_deref().unwrap_or("")
            ));
            continue;
        };
        let tol = c.rel * c.value.abs().max(f64::MIN_POSITIVE);
        if (actual - c.value).abs() > tol {
            let what = c.extra.as_deref().unwrap_or("y");
            failures.push(format!(
                "{at}: {} {:?} x={} {what}: doc quotes {} but rows say {actual} (> {:.2}% off)",
                c.file,
                c.series,
                c.x,
                c.value,
                c.rel * 100.0,
            ));
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::rows_to_json;

    fn results_dir(rows: &[Row]) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("bench_doccheck_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("figX.json"), rows_to_json(rows)).unwrap();
        dir
    }

    #[test]
    fn marker_parses_with_quoted_series_and_defaults() {
        let text = "prose\n<!-- check: file=figX series=\"Cray/ext2ph\" x=4 value=1534.9 -->\n";
        let checks = parse_markers("DOC.md", text).unwrap();
        assert_eq!(checks.len(), 1);
        assert_eq!(checks[0].series, "Cray/ext2ph");
        assert_eq!(checks[0].line, 2);
        assert_eq!(checks[0].rel, DEFAULT_REL);
        assert!(checks[0].extra.is_none());
    }

    #[test]
    fn malformed_marker_is_an_error() {
        assert!(parse_markers("D.md", "<!-- check: series=\"a\" x=1 value=2 -->").is_err());
        assert!(parse_markers("D.md", "<!-- check: file=f series=\"a\" x=1").is_err());
        assert!(parse_markers("D.md", "<!-- check: file=f series=\"a\" x=1 value=nope -->").is_err());
    }

    #[test]
    fn verify_passes_within_tolerance_and_fails_on_drift() {
        let rows = vec![Row::new("s", 4.0, 1534.9047, "MB/s").with("sync_s", 0.00123)];
        let dir = results_dir(&rows);
        let ok = DocCheck {
            doc: "D.md".into(),
            line: 1,
            file: "figX".into(),
            series: "s".into(),
            x: 4.0,
            value: 1534.9,
            rel: DEFAULT_REL,
            extra: None,
        };
        assert!(verify(&[ok.clone()], &dir).is_empty());
        let extra = DocCheck {
            value: 0.0012,
            rel: 0.05,
            extra: Some("sync_s".into()),
            ..ok.clone()
        };
        assert!(verify(&[extra], &dir).is_empty());
        let drifted = DocCheck {
            value: 1700.0,
            ..ok
        };
        let fails = verify(&[drifted], &dir);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("doc quotes 1700"), "{}", fails[0]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
