//! # bench — the figure-reproduction harness
//!
//! One binary per figure of the paper's evaluation (§5), each printing
//! the same series the paper plots and emitting machine-readable JSON
//! under `bench_results/`:
//!
//! | binary | paper figure | content |
//! |---|---|---|
//! | `fig5_aggregators` | Fig. 5 | the aggregator-distribution table, verbatim |
//! | `fig1_collective_wall` | Fig. 1 | % of MPI-Tile-IO time in global sync vs process count |
//! | `fig2_breakdown` | Fig. 2 | absolute sync / p2p / file-I/O time vs process count |
//! | `fig6_ior` | Fig. 6 | IOR collective-write bandwidth, baseline vs ParColl-N |
//! | `fig7_tileio_groups` | Fig. 7 | MPI-Tile-IO read/write bandwidth vs subgroup count |
//! | `fig8_sync_reduction` | Fig. 8 | synchronization time (abs and ratio) vs subgroup count |
//! | `fig9_scalability` | Fig. 9 | MPI-Tile-IO write bandwidth vs process count |
//! | `fig10_btio` | Fig. 10 | BT-IO class C bandwidth vs process count |
//! | `fig11_flashio` | Fig. 11 | Flash-IO checkpoint bandwidth, aggregator variants |
//! | `read_sweep` | §5 read counterpart | restart `read_at_all` bandwidth vs subgroups, sieving off/on |
//! | `ablation_alltoall` | §1 claim | pairwise vs Bruck alltoall: the wall survives |
//! | `ablation_groupsize` | §4 trade-off | group-size sweep across process counts |
//! | `ablation_iview` | §4.1 | reordering vs scatter vs disabled intermediate views |
//! | `ablation_adaptive` | §6 future work | adaptive group-size controller vs fixed choices |
//! | `ablation_mapping` | Fig. 5 context | block vs cyclic placement under shared-NIC injection |
//!
//! Also here: `parcoll_sim`, a command-line driver for any workload ×
//! mode × scale; `report`, which renders `bench_results/*.json` as
//! markdown (and, with `--check-docs`, cross-checks figures quoted in
//! the prose docs against the emitted rows); `calibrate`, which
//! re-checks every headline number against its paper target; and
//! `explain`, which runs the fixed diffable scenario of [`explain`]
//! and turns a tripped `regress` gate into a ranked root-cause table.
//! `hostperf` times figure regeneration in host seconds, and `hostprof`
//! (see [`hostprof`]) attributes that host wall to named simulator hot
//! paths — fiber scheduling, mailboxes, buffer pooling, pack/unpack —
//! with a collapsed-stack flamegraph export.
//!
//! Binaries accept `--quick` to run a reduced-scale version (smaller
//! process counts and data) for smoke testing; the default is the paper's
//! scale. Criterion micro-benchmarks of the protocol building blocks live
//! in `benches/`.

#![warn(missing_docs)]

pub mod doccheck;
pub mod explain;
pub mod figures;
pub mod hostprof;
pub mod metrics;
pub mod regress;
pub mod scale;
pub mod table;

pub use metrics::{ost_loads, print_metrics_doc, summarize_ost_loads, OstLoad, OstSummary};
pub use scale::Scale;
pub use table::{emit_json, print_table, rows_from_json, rows_to_json, Row};
