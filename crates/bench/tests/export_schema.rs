//! Schema tests for the simtrace exporters on a *real* traced run (the
//! unit tests in `simtrace::export` use hand-built traces). Three
//! contracts consumers rely on:
//!
//! 1. `chrome_trace_json` is well-formed trace-event JSON: every event
//!    carries a known `ph`, pid/tid routing, non-negative timestamps
//!    and durations, and per-track events appear in completion order
//!    (Perfetto tolerates disorder; our determinism contract does not).
//! 2. `metrics_json` totals are exactly the fold of the recorder state
//!    the `Trace` holds — counters, histogram counts/sums, span totals.
//! 3. Both documents survive a parse → pretty round-trip byte-for-byte
//!    (the in-repo JSON printer is its own parser's fixed point), which
//!    is what keeps committed artifacts diff-stable.

use simtrace::json::Json;
use simtrace::{chrome_trace_json, metrics_json, Event, Trace, TraceSink};
use std::collections::BTreeMap;
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn traced_run() -> Trace {
    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups: 2 });
    cfg.trace = sink.clone();
    run_workload(TileIo::tiny(8), cfg);
    sink.finish()
}

#[test]
fn chrome_export_schema_holds_on_a_real_run() {
    let trace = traced_run();
    let doc = Json::parse(&chrome_trace_json(&trace)).expect("export parses");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let events = doc.get("traceEvents").unwrap().as_array().unwrap();
    assert!(events.len() > 100, "a traced 8-rank run is not this small");

    // Completion time of the last event seen per ordering key. A rank
    // lane is written by one thread on a clock that never runs
    // backwards, so the whole lane is in completion order. A storage
    // lane is appended per *request* (queue span, serve span, then a
    // depth counter stamped at arrival), requests ordered by admission
    // — so order holds per event kind, not across kinds.
    const STORAGE_PID: u64 = 1_000_000;
    let mut last_done: BTreeMap<(u64, u64, String), f64> = BTreeMap::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("every event has ph");
        assert!(
            matches!(ph, "M" | "X" | "i" | "C"),
            "unexpected event phase {ph:?}"
        );
        let pid = e.get("pid").and_then(Json::as_u64).expect("pid");
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let ts = e.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= 0.0, "negative virtual time {ts}");
        let done = if ph == "X" {
            let dur = e.get("dur").and_then(Json::as_f64).expect("X events have dur");
            assert!(dur >= 0.0, "negative duration {dur}");
            assert!(e.get("args").is_some(), "X events carry args");
            ts + dur
        } else {
            ts
        };
        // Epsilon: the recorder stores start and duration, so `ts + dur`
        // reintroduces last-bit rounding against the original end.
        let kind = if pid == STORAGE_PID {
            format!("{ph}/{}", e.get("name").and_then(Json::as_str).unwrap_or(""))
        } else {
            String::new()
        };
        let prev = last_done.entry((pid, tid, kind)).or_insert(0.0);
        assert!(
            done >= *prev - 1e-6,
            "lane ({pid},{tid}) went backwards: {done} after {prev}"
        );
        *prev = done;
    }

    // Every rank and OST track got a thread_name metadata record.
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
                .unwrap()
        })
        .collect();
    for r in 0..8 {
        assert!(names.contains(&format!("rank {r}").as_str()), "rank {r} unnamed");
    }
    assert!(names.iter().any(|n| n.starts_with("ost ")), "no storage lanes");
}

#[test]
fn metrics_totals_match_recorder_state() {
    let trace = traced_run();
    let doc = Json::parse(&metrics_json(&trace)).expect("metrics parse");
    assert_eq!(doc.get("kind").and_then(Json::as_str), Some("simtrace_metrics"));

    // Fold the trace independently of the exporter.
    let mut counters: BTreeMap<&str, u64> = BTreeMap::new();
    let mut hist_counts: BTreeMap<&str, u64> = BTreeMap::new();
    let mut hist_sums: BTreeMap<&str, f64> = BTreeMap::new();
    let mut spans: BTreeMap<String, f64> = BTreeMap::new();
    for track in &trace.tracks {
        for (name, v) in &track.counters {
            *counters.entry(name).or_insert(0) += v;
        }
        for (name, h) in &track.hists {
            *hist_counts.entry(name).or_insert(0) += h.count;
            *hist_sums.entry(name).or_insert(0.0) += h.sum;
        }
        for event in &track.events {
            if let Event::Span { cat, name, dur_us, .. } = event {
                *spans.entry(format!("{cat}/{name}")).or_insert(0.0) += dur_us;
            }
        }
    }
    assert!(!counters.is_empty() && !spans.is_empty(), "run recorded nothing");

    let totals = doc.get("totals").unwrap();
    let doc_counters = totals.get("counters").and_then(Json::as_obj).unwrap();
    assert_eq!(doc_counters.len(), counters.len());
    for (name, v) in &counters {
        assert_eq!(
            doc_counters.iter().find(|(k, _)| k.as_str() == *name).unwrap().1.as_u64(),
            Some(*v),
            "counter {name} total"
        );
    }
    let doc_hists = totals.get("histograms").and_then(Json::as_obj).unwrap();
    assert_eq!(doc_hists.len(), hist_counts.len());
    for (name, h) in doc_hists {
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(hist_counts[name.as_str()]));
        let sum = h.get("sum").and_then(Json::as_f64).unwrap();
        assert!((sum - hist_sums[name.as_str()]).abs() < 1e-6, "hist {name} sum");
    }
    let doc_spans = totals.get("span_totals_us").and_then(Json::as_obj).unwrap();
    assert_eq!(doc_spans.len(), spans.len());
    for (name, us) in doc_spans {
        assert!(
            (us.as_f64().unwrap() - spans[name]).abs() < 1e-6,
            "span total {name}"
        );
    }
    // The per-track list mirrors the trace's tracks one-to-one.
    let tracks = doc.get("tracks").unwrap().as_array().unwrap();
    assert_eq!(tracks.len(), trace.tracks.len());
}

#[test]
fn exports_are_parse_pretty_fixed_points() {
    let trace = traced_run();
    for text in [chrome_trace_json(&trace), metrics_json(&trace)] {
        let reprinted = Json::parse(&text).unwrap().pretty();
        assert_eq!(text, reprinted, "export is not its parser's fixed point");
    }
}
