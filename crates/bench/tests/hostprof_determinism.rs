//! The hostprof determinism contract: arming the host profiler must not
//! move a single byte of any virtual-time artifact. Host timers read
//! `Instant`, never the virtual clock, and publish only through
//! `host::collect` — so traces, digests and bench rows have to come out
//! byte-identical with profiling on or off (the PR rule that host
//! timing never enters deterministic artifacts, extended to hostprof).

use bench::explain::run_scenario;
use bench::rows_to_json;
use simtrace::{chrome_trace_json, digest_json, metrics_json, TraceSink};
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

/// The explain scenario's gate artifacts: row JSON + digest JSON.
fn scenario_artifacts() -> (String, String) {
    let (rows, d) = run_scenario("hostprof-ab", None);
    (rows_to_json(&rows), digest_json(&d))
}

/// A small traced ParColl run's raw trace artifacts: Perfetto JSON +
/// metrics JSON (the digest above is derived; this pins the trace
/// bytes themselves).
fn traced_artifacts() -> (String, String) {
    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(IoMode::Parcoll { groups: 2 });
    cfg.fs = simfs::FsConfig::tiny();
    cfg.info.set("cb_nodes", 2i64);
    cfg.info.set("cb_buffer_size", 128i64);
    cfg.trace = sink.clone();
    run_workload(TileIo::tiny(8), cfg);
    let trace = sink.finish();
    (chrome_trace_json(&trace), metrics_json(&trace))
}

#[test]
fn virtual_artifacts_byte_identical_with_hostprof_on_and_off() {
    // Profiler disarmed: the reference artifacts.
    simtrace::host::set_enabled(false);
    let off_scenario = scenario_artifacts();
    let off_trace = traced_artifacts();

    // Profiler armed, with a root scope so every probe path is live
    // (fiber slices, mailboxes, pack/unpack, trace recording).
    simtrace::host::reset();
    simtrace::host::set_enabled(true);
    let on_scenario = {
        let _root = simtrace::host::scope(simtrace::host::Site::Scenario);
        scenario_artifacts()
    };
    let on_trace = {
        let _root = simtrace::host::scope(simtrace::host::Site::Scenario);
        traced_artifacts()
    };
    simtrace::host::set_enabled(false);
    let report = simtrace::host::collect();

    assert_eq!(
        off_scenario.0, on_scenario.0,
        "bench rows changed with hostprof armed"
    );
    assert_eq!(
        off_scenario.1, on_scenario.1,
        "run digest changed with hostprof armed"
    );
    assert_eq!(
        off_trace.0, on_trace.0,
        "Perfetto trace changed with hostprof armed"
    );
    assert_eq!(
        off_trace.1, on_trace.1,
        "metrics JSON changed with hostprof armed"
    );

    // The comparison is only meaningful if the probes actually fired:
    // the armed runs must have sampled real simulator sites (unless the
    // probes are compiled out entirely).
    if cfg!(not(feature = "hostprof-off")) {
        assert!(
            report
                .paths
                .iter()
                .any(|p| p.leaf() != simtrace::host::Site::Scenario),
            "armed run recorded no probe samples — the A/B proved nothing"
        );
        assert_eq!(report.dropped, 0, "profiler rings overflowed mid-run");
    }
}
