//! Acceptance test for the self-explaining regression gate: a 1%
//! slowdown on a single OST must (a) trip the row gate and (b) be
//! *named* — correct phase, correct resource, with a round range — by
//! the top-ranked diff finding. No grepping Perfetto by hand.

use bench::explain::{parse_fault, run_scenario};
use bench::regress::compare_rows;
use simtrace::diff::diff;

#[test]
fn one_percent_slow_ost_trips_the_gate_and_is_named() {
    let (base_rows, base_digest) = run_scenario("baseline", None);
    let (head_rows, head_digest) =
        run_scenario("HEAD", Some(parse_fault("ost_slow:1:1.01").unwrap()));

    // (a) The row gate trips: scenario bandwidth is MB/s, whose
    // tolerance (1e-5 relative) is far tighter than a 1% perturbation.
    let findings = compare_rows("explain_scenario", &base_rows, &head_rows);
    assert!(
        !findings.is_empty(),
        "a 1% slow OST must move the scenario rows past tolerance"
    );

    // (b) The diff names the root cause: the io phase, on ost 1, with a
    // round attribution — ranked first, ahead of every symptom.
    let report = diff(&base_digest, &head_digest);
    let top = report
        .findings
        .first()
        .expect("perturbed run must produce findings");
    assert_eq!(top.kind, "ost", "top finding should blame the resource: {}", top.text);
    assert_eq!(top.subject, "ost 1", "wrong OST named: {}", top.text);
    assert_eq!(top.phase, "io", "wrong phase named: {}", top.text);
    assert!(
        top.rounds.is_some(),
        "finding should carry a round range: {}",
        top.text
    );
    assert!(
        top.head_us > top.base_us,
        "the named io time should have grown: {}",
        top.text
    );
}

#[test]
fn unperturbed_rerun_produces_no_findings() {
    let (base_rows, base_digest) = run_scenario("baseline", None);
    let (head_rows, head_digest) = run_scenario("HEAD", None);
    assert!(
        compare_rows("explain_scenario", &base_rows, &head_rows).is_empty(),
        "identical runs must pass the row gate"
    );
    let report = diff(&base_digest, &head_digest);
    assert!(
        report.findings.is_empty(),
        "identical runs must diff clean, got: {:?}",
        report.findings.first().map(|f| &f.text)
    );
}

#[test]
fn fault_spec_parser_rejects_garbage() {
    assert!(parse_fault("ost_slow:1:1.5").is_ok());
    assert!(parse_fault("ost_slow:any:2.0:0:20").is_ok());
    assert!(parse_fault("ost_slow:x:2.0").is_err());
    assert!(parse_fault("ost_slow:1").is_err());
    assert!(parse_fault("cpu_burn:1:2").is_err());
}
