//! Acceptance tests for the critical-path analysis on a real traced run:
//! the extracted path must tile the run exactly (its length *is* the
//! virtual wall time), and the what-if "sync-free" estimate must
//! reproduce the Figure 1/2 sync share the same run's phase profile
//! reports.

use simtrace::{critical_path, rank_slack, TraceSink, TrackKey};
use workloads::runner::{run_workload, IoMode, RunConfig};
use workloads::tileio::TileIo;

fn traced_tileio(procs: usize) -> (simtrace::Trace, workloads::runner::RunResult) {
    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(IoMode::Collective);
    cfg.trace = sink.clone();
    let result = run_workload(TileIo::tiny(procs), cfg);
    (sink.finish(), result)
}

#[test]
fn path_length_equals_virtual_wall_time_exactly() {
    let (trace, _) = traced_tileio(16);
    let path = critical_path(&trace).expect("a traced run yields a path");

    // The wall is the latest span end over every rank track.
    let wall = trace
        .rank_tracks()
        .flat_map(|t| {
            t.events.iter().filter_map(|e| match e {
                simtrace::Event::Span { start_us, dur_us, .. } => Some(start_us + dur_us),
                _ => None,
            })
        })
        .fold(0.0f64, f64::max);
    assert_eq!(path.wall_us, wall);
    // Exact: the segments tile [0, wall] with shared boundaries, so the
    // path length is the wall bitwise, not approximately.
    assert_eq!(path.length_us(), wall);
    assert_eq!(path.segments.first().unwrap().start_us, 0.0);
    assert_eq!(path.segments.last().unwrap().end_us, wall);
    for pair in path.segments.windows(2) {
        assert_eq!(
            pair[0].end_us, pair[1].start_us,
            "path segments must tile contiguously"
        );
    }
    // The walk visits more than one rank on a 16-rank collective write.
    assert!(path.straggler_chain().len() > 1, "path never left one rank");
}

#[test]
fn what_if_sync_free_matches_figure_sync_share() {
    // Paper-scale tiles at 16 ranks: the regime where the collective
    // wall is real (Figure 1 reports ~52 % sync share here), so the 5 %
    // tolerance actually discriminates.
    let sink = TraceSink::enabled();
    let mut cfg = RunConfig::paper(IoMode::Collective);
    cfg.trace = sink.clone();
    let result = run_workload(TileIo::paper(16), cfg);
    let trace = sink.finish();
    let path = critical_path(&trace).expect("a traced run yields a path");

    // Figure 1/2 sync share: average per-rank sync seconds over average
    // per-rank total seconds (bench::figures::collective_wall).
    let p = &result.profile_avg;
    let total = p.sync + p.p2p + p.io + p.local;
    let fig_share = p.sync.as_secs() / total.as_secs();

    let w = simtrace::what_if(&trace, &path);
    eprintln!(
        "wall {:.1} us | figure share {:.1}% (trace) vs {:.1}% (profile) | sync-free: figure {:.1} us, rank bound {:.1} us, path {:.1} us",
        w.wall_us,
        w.sync_share * 100.0,
        fig_share * 100.0,
        w.sync_free_figure_us,
        w.sync_free_rank_bound_us,
        w.sync_free_path_us,
    );
    // The graph-derived share must reproduce the figure's share: at this
    // scale Figure 1 reports ~52 %, so 5 % absolute actually bites.
    assert!(
        fig_share > 0.30,
        "expected a substantial collective wall at paper scale, got {:.1}%",
        fig_share * 100.0
    );
    assert!(
        (w.sync_share - fig_share).abs() < 0.05,
        "graph sync share {:.1}% diverges from profile sync share {:.1}%",
        w.sync_share * 100.0,
        fig_share * 100.0
    );
    // And the three estimates order as the model predicts: the figure's
    // uniform-recovery estimate is below the dependency-aware floor,
    // which is below the path-only estimate, which is below the wall.
    assert!(w.sync_free_figure_us <= w.sync_free_rank_bound_us + 1e-6);
    assert!(w.sync_free_rank_bound_us <= w.sync_free_path_us + 1e-6);
    assert!(w.sync_free_path_us <= w.wall_us + 1e-6);
}

#[test]
fn slack_is_zero_only_for_path_ranks() {
    let (trace, _) = traced_tileio(8);
    let path = critical_path(&trace).unwrap();
    let slack = rank_slack(&trace, &path);
    assert_eq!(slack.len(), 8);
    for s in &slack {
        assert!(s.on_path_us >= 0.0 && s.on_path_us <= path.wall_us + 1e-6);
        assert!((s.slack_us - (path.wall_us - s.on_path_us)).abs() < 1e-9);
        assert_eq!(
            trace
                .track(TrackKey::Rank(s.rank))
                .unwrap()
                .span_total_us("phase", Some("sync")),
            s.sync_us
        );
    }
    // Path time across ranks sums to the wall.
    let on_path: f64 = slack.iter().map(|s| s.on_path_us).sum();
    assert!(
        (on_path - path.wall_us).abs() < 1e-6,
        "per-rank path time {on_path} != wall {}",
        path.wall_us
    );
}
