//! Multi-worker hostprof correctness: with the fiber executor sharded
//! across 4 workers, every worker thread's samples must reach the
//! merged report — armed runs still attribute the overwhelming share
//! of wall time to named sinks, and any ring drops are reported
//! against the worker that dropped them rather than vanishing into a
//! silent sum.
//!
//! Lives in its own integration-test process because the worker count
//! is process-global.

use bench::hostprof::{profile, scenarios};
use bench::Scale;

#[cfg(not(feature = "hostprof-off"))]
#[test]
fn multi_worker_fig9_attributes_most_wall_to_named_sinks() {
    simnet::set_workers(4);
    let scens = scenarios(Scale::Quick);
    let (name, run) = scens
        .iter()
        .find(|(name, _)| *name == "fig9_scalability")
        .expect("fig9 scenario registered");
    let p = profile(run);

    // Each worker contributes its own FiberSched/FiberRun frames; if the
    // sharded executor's threads failed to register with the profiler,
    // attribution would collapse toward zero. (Per-thread frames can
    // legitimately sum past 100% of wall — workers run concurrently.)
    assert!(
        p.attributed_pct() >= 80.0,
        "{name}: only {:.1}% of wall attributed to named sinks under 4 workers",
        p.attributed_pct()
    );

    // Sharded scheduling appeared at all: the scheduler frame sampled.
    assert!(
        p.report
            .by_site()
            .iter()
            .any(|s| s.site == simtrace::host::Site::FiberSched && s.count > 0),
        "no scheduler frames sampled"
    );

    // Drop accounting stays per-thread: rings normally never overflow,
    // and when they do the report must name the thread.
    assert_eq!(
        p.report.dropped_by_thread.iter().map(|(_, d)| d).sum::<u64>(),
        p.report.dropped,
        "per-thread drop rows must tile the total"
    );
    assert_eq!(p.report.dropped, 0, "profiler rings overflowed mid-run");
}
