//! File striping across object storage targets.

/// A file's striping layout, Lustre-style: the file's byte stream is
/// round-robined over `stripe_count` OSTs in `stripe_size` units, starting
/// at OST `first_ost` within the file system's OST pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeLayout {
    /// Index of the first OST in the stripe set (files are rotated over
    /// the pool so a full machine's files spread load).
    pub first_ost: usize,
    /// Number of OSTs the file is striped over.
    pub stripe_count: usize,
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Total OSTs in the pool (for mapping stripe index → pool index).
    pub pool_size: usize,
}

/// One per-OST piece of a striped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// OST (pool index) serving this chunk.
    pub ost: usize,
    /// File offset of the chunk start.
    pub file_offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

impl StripeLayout {
    /// Construct and validate a layout.
    pub fn new(first_ost: usize, stripe_count: usize, stripe_size: u64, pool_size: usize) -> Self {
        assert!(pool_size > 0, "empty OST pool");
        assert!(
            (1..=pool_size).contains(&stripe_count),
            "stripe count {stripe_count} must be in 1..={pool_size}"
        );
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(first_ost < pool_size, "first OST out of pool");
        StripeLayout {
            first_ost,
            stripe_count,
            stripe_size,
            pool_size,
        }
    }

    /// The OST serving the byte at `offset`.
    pub fn ost_of(&self, offset: u64) -> usize {
        let stripe_index = (offset / self.stripe_size) as usize % self.stripe_count;
        (self.first_ost + stripe_index) % self.pool_size
    }

    /// Decompose `[offset, offset+len)` into per-stripe chunks, in file
    /// order. Adjacent stripes on the same OST (stripe_count == 1) are
    /// still reported per stripe unit: each unit is a separate server
    /// request, which is what the cost model charges.
    pub fn chunks(&self, offset: u64, len: u64) -> Vec<Chunk> {
        let mut out = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let stripe_end = (pos / self.stripe_size + 1) * self.stripe_size;
            let chunk_end = stripe_end.min(end);
            out.push(Chunk {
                ost: self.ost_of(pos),
                file_offset: pos,
                len: chunk_end - pos,
            });
            pos = chunk_end;
        }
        out
    }

    /// Sum of chunk lengths per OST for `[offset, offset+len)` — the load
    /// vector the contention model consumes. Returned as (ost, bytes,
    /// requests) triples for OSTs with non-zero load.
    pub fn ost_load(&self, offset: u64, len: u64) -> Vec<(usize, u64, u64)> {
        let mut per: std::collections::BTreeMap<usize, (u64, u64)> = Default::default();
        for c in self.chunks(offset, len) {
            let e = per.entry(c.ost).or_insert((0, 0));
            e.0 += c.len;
            e.1 += 1;
        }
        per.into_iter().map(|(o, (b, r))| (o, b, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> StripeLayout {
        // 4 OSTs in an 8-OST pool, 1KB stripes, starting at OST 2.
        StripeLayout::new(2, 4, 1024, 8)
    }

    #[test]
    fn ost_rotation_is_round_robin() {
        let l = layout();
        assert_eq!(l.ost_of(0), 2);
        assert_eq!(l.ost_of(1023), 2);
        assert_eq!(l.ost_of(1024), 3);
        assert_eq!(l.ost_of(2048), 4);
        assert_eq!(l.ost_of(3072), 5);
        assert_eq!(l.ost_of(4096), 2); // wraps after stripe_count
    }

    #[test]
    fn chunks_split_on_stripe_boundaries() {
        let l = layout();
        let cs = l.chunks(512, 2048);
        assert_eq!(
            cs,
            vec![
                Chunk { ost: 2, file_offset: 512, len: 512 },
                Chunk { ost: 3, file_offset: 1024, len: 1024 },
                Chunk { ost: 4, file_offset: 2048, len: 512 },
            ]
        );
    }

    #[test]
    fn chunks_cover_exactly_the_request() {
        let l = layout();
        for (off, len) in [(0u64, 1u64), (1000, 5000), (1024, 1024), (4095, 2)] {
            let cs = l.chunks(off, len);
            assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
            assert_eq!(cs[0].file_offset, off);
            for w in cs.windows(2) {
                assert_eq!(w[0].file_offset + w[0].len, w[1].file_offset);
            }
        }
    }

    #[test]
    fn empty_request_has_no_chunks() {
        assert!(layout().chunks(100, 0).is_empty());
    }

    #[test]
    fn ost_load_aggregates_per_target() {
        let l = layout();
        // 8KB from 0 covers each of the 4 OSTs twice (stripe wrap).
        let load = l.ost_load(0, 8192);
        assert_eq!(load.len(), 4);
        for &(ost, bytes, reqs) in &load {
            assert!((2..=5).contains(&ost));
            assert_eq!(bytes, 2048);
            assert_eq!(reqs, 2);
        }
    }

    #[test]
    fn single_stripe_file_uses_one_ost() {
        let l = StripeLayout::new(0, 1, 4096, 4);
        for off in [0u64, 4096, 123456] {
            assert_eq!(l.ost_of(off), 0);
        }
        assert_eq!(l.chunks(0, 10000).iter().map(|c| c.len).sum::<u64>(), 10000);
    }

    #[test]
    #[should_panic(expected = "stripe count")]
    fn oversized_stripe_count_rejected() {
        StripeLayout::new(0, 9, 1024, 8);
    }
}
