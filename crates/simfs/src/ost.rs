//! Object storage target: a serial virtual-time resource.

use parking_lot::Mutex;
use simnet::{SimTime, SplitMix64};

/// Accumulated service statistics of one OST.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OstStats {
    /// Total virtual busy time.
    pub busy: SimTime,
    /// Total bytes served.
    pub bytes: u64,
    /// Total chunk requests served.
    pub requests: u64,
}

#[derive(Debug)]
struct OstState {
    next_free: SimTime,
    stats: OstStats,
    rng: SplitMix64,
    /// (completion instant, writing client) of queued/in-flight
    /// requests, ascending by completion; used for queue depth and
    /// extent-lock conflict detection at each arrival.
    completions: std::collections::VecDeque<(SimTime, Option<u64>)>,
    /// Holder of the most recently granted write extent lock. Lustre
    /// locks persist after the I/O completes, so a later small write by a
    /// different client conflicts even on an idle target.
    lock_holder: Option<u64>,
    /// Trace recorder for this target's timeline (disabled by default;
    /// installed by `FileSystem::attach_trace`). Emissions happen under
    /// the state mutex, and the sink content-sorts OST events at export,
    /// so host arrival order cannot leak into the merged trace.
    trace: simtrace::Recorder,
    /// Fault plan and this target's index in it, when installed by
    /// `FileSystem::install_faults`. Consulted once per request under the
    /// state mutex, so fault arithmetic is admission-ordered.
    faults: Option<(std::sync::Arc<simnet::FaultPlan>, usize)>,
    /// Cumulative requests admitted, including retry attempts burned by
    /// fail windows — the deterministic coordinate of `ost_fail_after`.
    ops: u64,
}

/// One object storage target.
///
/// The OST is modeled as a serial server: a request arriving at `t` starts
/// service at `max(t, previous completion)` and occupies the target for
/// `requests · overhead + bytes / bandwidth`, optionally scaled by seeded
/// jitter. Different OSTs are independent, so striped requests proceed in
/// parallel across targets while colliding clients on one target queue.
///
/// Note on determinism: inside a cluster run, requests are admitted in
/// `(virtual arrival, rank)` order by the [`simnet::progress`] gate, so
/// queue depths, jitter draws and completion times are a pure function of
/// virtual time — concurrent-writer runs are byte-reproducible. Outside a
/// cluster (direct unit-test calls) the gate is a no-op and the queue
/// order is simply call order.
#[derive(Debug)]
pub struct Ost {
    state: Mutex<OstState>,
}

impl Ost {
    /// New idle OST with a jitter stream seeded by `seed`.
    pub fn new(seed: u64) -> Self {
        Ost {
            state: Mutex::new(OstState {
                next_free: SimTime::ZERO,
                stats: OstStats::default(),
                rng: SplitMix64::new(seed),
                completions: std::collections::VecDeque::new(),
                lock_holder: None,
                trace: simtrace::Recorder::disabled(),
                faults: None,
                ops: 0,
            }),
        }
    }

    /// Install a trace recorder; every subsequent [`serve`](Ost::serve)
    /// emits its service interval, queue wait and volume metrics on it.
    pub fn attach_trace(&self, rec: simtrace::Recorder) {
        self.state.lock().trace = rec;
    }

    /// Install a fault plan; this target is `index` in the plan's
    /// `ost_slow` / `ost_fail_after` rules.
    pub fn install_faults(&self, plan: std::sync::Arc<simnet::FaultPlan>, index: usize) {
        self.state.lock().faults = Some((plan, index));
    }

    /// Serve a request of `bytes` in `requests` chunk units arriving at
    /// `arrival`; returns the completion instant.
    ///
    /// `contention_per_queued` inflates the service time by that fraction
    /// per request still pending at arrival, modeling Lustre's
    /// shared-object extent-lock contention under deep write pile-ups.
    #[allow(clippy::too_many_arguments)]
    pub fn serve(
        &self,
        mut arrival: SimTime,
        bytes: u64,
        requests: u64,
        overhead: SimTime,
        bandwidth_bps: f64,
        jitter_cv: f64,
        contention_per_queued: f64,
        slow_prob: f64,
        slow_factor: f64,
        writer: Option<(u64, SimTime, u64)>,
        cache_window: SimTime,
    ) -> SimTime {
        // Deterministic admission: the OST mutates seeded RNG and queue
        // state, so concurrent requests must enter in virtual-time order,
        // not host-thread order. Declared before `st` so the admission is
        // held for the whole state mutation.
        let _admission = simnet::progress::admit(arrival);
        let mut st = self.state.lock();
        // hostprof: everything under the state lock (fault arithmetic,
        // queue maintenance, jitter, trace emission) is non-yielding;
        // the admission gate above can block and stays outside the scope.
        let _hp = simtrace::host::scope(simtrace::host::Site::OstServe);
        let mut fault_factor = 1.0f64;
        if let Some((plan, idx)) = st.faults.clone() {
            // The op counter and the queue mutate under one admission +
            // one lock acquisition, so the number of failed attempts is
            // plain arithmetic over the fail window — no re-admission,
            // and the I/O APIs stay infallible.
            let op = st.ops;
            st.ops += 1;
            fault_factor = plan.ost_slow_factor(idx, arrival);
            let fails = plan.ost_failures(idx, op);
            if fails > 0 {
                assert!(
                    fails <= plan.max_retries as u64,
                    "OST {idx} failed permanently: {fails} consecutive failures \
                     exceed the retry bound of {}",
                    plan.max_retries
                );
                let _timer = plan.hold_timer();
                st.ops += fails; // each failed attempt burns one op slot
                let backoff = plan.retry_penalty(fails as u32, SimTime::ZERO);
                if st.trace.enabled() {
                    st.trace.span(
                        "fault",
                        "ost_retry",
                        arrival.as_micros(),
                        (arrival + backoff).as_micros(),
                        vec![("attempts", simtrace::ArgValue::from(fails))],
                    );
                    st.trace.count("ost_fault_retries", fails);
                }
                // The request re-arrives after the backoff drains.
                arrival += backoff;
            }
        }
        while st.completions.front().is_some_and(|&(c, _)| c <= arrival) {
            st.completions.pop_front();
        }
        let depth = st.completions.len() as f64;
        let jitter = st.rng.jitter(jitter_cv);
        let straggle = if slow_prob > 0.0 && st.rng.next_f64() < slow_prob {
            slow_factor
        } else {
            1.0
        };
        let mut service = (overhead * requests as f64
            + SimTime::secs(bytes as f64 / bandwidth_bps))
            * jitter
            * straggle
            * fault_factor
            * (1.0 + contention_per_queued * depth);
        if let Some((client, handoff, exempt)) = writer {
            // Extent-lock conflict: ours is too small to hold a wide
            // (amortizing) extent lock, and either another client's write
            // is in flight or another client holds the extent lock from a
            // completed write (Lustre locks persist until revoked).
            let conflicted = bytes < exempt
                && (st
                    .completions
                    .iter()
                    .any(|&(_, w)| w.is_some_and(|other| other != client))
                    || st.lock_holder.is_some_and(|holder| holder != client));
            if conflicted {
                service += handoff;
            }
            st.lock_holder = Some(client);
        }
        // Work-conserving backlog; the write-back cache absorbs up to
        // `cache_window` of it before the requester feels queueing.
        let backlog_start = st.next_free.max(arrival);
        let felt_start = (st.next_free - cache_window).max(arrival);
        st.next_free = backlog_start + service;
        let done = felt_start + service;
        let writer_id = writer.map(|(c, _, _)| c);
        let backlog_done = st.next_free;
        st.completions.push_back((backlog_done, writer_id));
        st.stats.busy += service;
        st.stats.bytes += bytes;
        st.stats.requests += requests;
        if st.trace.enabled() {
            let queue_wait = backlog_start - arrival;
            if queue_wait > SimTime::ZERO {
                st.trace.span(
                    "ost",
                    "queue",
                    arrival.as_micros(),
                    backlog_start.as_micros(),
                    vec![("depth", simtrace::ArgValue::from(depth))],
                );
            }
            let mut args = vec![
                ("bytes", simtrace::ArgValue::from(bytes)),
                ("requests", simtrace::ArgValue::from(requests)),
                ("queue_wait_us", simtrace::ArgValue::from(queue_wait.as_micros())),
                // The completion instant the requester observes (the
                // write-back cache can make it earlier than the span's
                // backlog end) — the queue→serve edge target for
                // critical-path reconstruction.
                ("done_us", simtrace::ArgValue::from(done.as_micros())),
            ];
            if let Some(rank) = simnet::progress::current_rank() {
                args.push(("rank", simtrace::ArgValue::from(rank)));
            }
            st.trace.span(
                "ost",
                "serve",
                backlog_start.as_micros(),
                backlog_done.as_micros(),
                args,
            );
            st.trace.counter("ost_queue_depth", arrival.as_micros(), depth);
            // Outstanding work on this target as of this arrival: how
            // far its device clock runs ahead of the request stream.
            st.trace.counter(
                "ost_backlog_us",
                arrival.as_micros(),
                (backlog_done - arrival).as_micros(),
            );
            st.trace.count("ost_requests", requests);
            st.trace.observe("ost_req_bytes", bytes as f64);
        }
        done
    }

    /// Snapshot of this target's statistics.
    pub fn stats(&self) -> OstStats {
        self.state.lock().stats
    }

    /// The instant the target becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.state.lock().next_free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BW: f64 = 1e6; // 1 MB/s
    const OH: SimTime = SimTime(10e-6);

    #[test]
    fn idle_ost_serves_at_arrival() {
        let ost = Ost::new(1);
        let done = ost.serve(SimTime::secs(5.0), 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        // 1MB at 1MB/s + 10us overhead.
        assert!((done.as_secs() - 6.00001).abs() < 1e-9);
    }

    #[test]
    fn queued_requests_serialize() {
        let ost = Ost::new(1);
        let d1 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        let d2 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!(d2 > d1);
        assert!((d2.as_secs() - 2.0 * (1.0 + 1e-5)).abs() < 1e-9);
    }

    #[test]
    fn later_arrival_after_idle_gap() {
        let ost = Ost::new(1);
        let d1 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        // Arrives well after the first completes: no queueing.
        let arrival = d1 + SimTime::secs(10.0);
        let d2 = ost.serve(arrival, 500_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d2.as_secs() - (arrival.as_secs() + 0.5 + 1e-5)).abs() < 1e-9);
    }

    #[test]
    fn per_request_overhead_scales_with_chunks() {
        let ost = Ost::new(1);
        let done = ost.serve(SimTime::ZERO, 0, 100, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!((done.as_millis() - 1.0).abs() < 1e-9); // 100 * 10us
    }

    #[test]
    fn stats_accumulate() {
        let ost = Ost::new(1);
        ost.serve(SimTime::ZERO, 1000, 2, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        ost.serve(SimTime::ZERO, 500, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        let s = ost.stats();
        assert_eq!(s.bytes, 1500);
        assert_eq!(s.requests, 3);
        assert!(s.busy > SimTime::ZERO);
    }

    #[test]
    fn contention_inflates_deep_queues() {
        let ost = Ost::new(1);
        // First request: empty queue, no inflation.
        let d1 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.1, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d1.as_secs() - (1.0 + 1e-5)).abs() < 1e-9);
        // Second arrives while the first is pending: 10% slower.
        let d2 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.1, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d2 - d1).as_secs() > 1.09 * (1.0 + 1e-5) * 0.999);
        // A request arriving after everything drained is uninflated.
        let d3 = ost.serve(d2 + SimTime::secs(1.0), 1_000_000, 1, OH, BW, 0.0, 0.1, 0.0, 1.0, None, SimTime::ZERO);
        assert!(((d3 - d2 - SimTime::secs(1.0)).as_secs() - (1.0 + 1e-5)).abs() < 1e-9);
    }

    #[test]
    fn lock_handoff_charged_on_concurrent_foreign_writer() {
        let ost = Ost::new(1);
        let handoff = SimTime::secs(0.5);
        let w = |client: u64| Some((client, handoff, 1_000_000u64));
        // Lone small write: no conflict.
        let d1 = ost.serve(SimTime::ZERO, 1000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, w(1), SimTime::ZERO);
        let base = d1.as_secs();
        assert!(base < 0.1, "no handoff for a lone writer");
        // A different client's write arrives while client 1's pends.
        let d2 = ost.serve(SimTime::ZERO, 1000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, w(2), SimTime::ZERO);
        assert!((d2 - d1).as_secs() > 0.5, "concurrent foreign writer pays");
        // A third client takes the lock (conflicted), then writes again
        // while holding it: the second write is free.
        let d3 = ost.serve(d2, 1000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, w(3), SimTime::ZERO);
        assert!((d3 - d2).as_secs() > 0.5, "foreign lock holder pays");
        let d4 = ost.serve(d3, 1000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, w(3), SimTime::ZERO);
        assert!((d4 - d3).as_secs() < base + 1e-6, "own lock is no conflict");
        // Exempt-size write by a new client amid pending foreign writes.
        let d5 = ost.serve(d4 - SimTime::nanos(1.0), 2_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, w(4), SimTime::ZERO);
        assert!((d5 - d4).as_secs() < 2.1, "large writes are exempt");
        // Reads (no writer identity) never pay and never conflict others.
        let d6 = ost.serve(d5 + SimTime::secs(5.0), 1000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d6 - d5 - SimTime::secs(5.0)).as_secs() < base + 1e-6);
    }

    #[test]
    fn cache_window_absorbs_bursts_but_conserves_throughput() {
        let w = SimTime::secs(2.0); // 2s of cache at 1 MB/s = 2 MB
        let ost = Ost::new(1);
        // Burst of 3 x 1MB at t=0: with the cache, the 2nd and 3rd feel
        // little queueing...
        let d1 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, w);
        let d2 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, w);
        let d3 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, w);
        assert!(d2.as_secs() < 1.1, "2nd absorbed: {d2:?}");
        assert!(d3.as_secs() < 1.1, "3rd absorbed: {d3:?}");
        assert!((d1.as_secs() - (1.0 + 1e-5)).abs() < 1e-9);
        // ...but the backlog persists: a 4th arriving immediately pays
        // the full accumulated queue minus the cache window.
        let d4 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, w);
        assert!(d4.as_secs() > 1.9, "sustained overload still queues: {d4:?}");
        // next_free reflects all four services (work conservation).
        assert!((ost.next_free().as_secs() - 4.0 * (1.0 + 1e-5)).abs() < 1e-6);
    }

    #[test]
    fn stragglers_inflate_some_requests() {
        let ost = Ost::new(11);
        let mut slow = 0;
        let mut prev = SimTime::ZERO;
        for _ in 0..500 {
            let arrival = prev + SimTime::secs(10.0); // no queueing
            let done = ost.serve(arrival, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.1, 8.0, None, SimTime::ZERO);
            let service = (done - arrival).as_secs();
            if service > 4.0 {
                slow += 1;
                assert!((service - 8.0 * (1.0 + 1e-5)).abs() < 1e-6);
            }
            prev = done;
        }
        // ~10% +- sampling noise.
        assert!((20..=90).contains(&slow), "straggler count {slow}");
    }

    #[test]
    fn jitter_changes_service_but_stays_positive() {
        let a = Ost::new(7);
        let b = Ost::new(7);
        // Same seed -> same jitter sequence -> identical completions.
        let da = a.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.3, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        let db = b.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.3, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert_eq!(da, db);
        assert!(da > SimTime::ZERO);
        // Different seed -> (almost surely) different service time.
        let c = Ost::new(8);
        let dc = c.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.3, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert_ne!(da, dc);
    }

    #[test]
    fn fault_slow_window_scales_service_inside_window_only() {
        use simnet::FaultPlan;
        use std::sync::Arc;
        let ost = Ost::new(1);
        ost.install_faults(
            Arc::new(FaultPlan::new(0).ost_slow(
                Some(0),
                4.0,
                SimTime::ZERO,
                SimTime::secs(10.0),
            )),
            0,
        );
        let d1 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d1.as_secs() - 4.0 * (1.0 + 1e-5)).abs() < 1e-9, "4x inside window: {d1:?}");
        let arrival = SimTime::secs(20.0);
        let d2 = ost.serve(arrival, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!(
            ((d2 - arrival).as_secs() - (1.0 + 1e-5)).abs() < 1e-9,
            "clean outside window: {d2:?}"
        );
    }

    #[test]
    fn fault_fail_window_charges_backoff_then_drains() {
        use simnet::FaultPlan;
        use std::sync::Arc;
        let mut plan = FaultPlan::new(0).ost_fail_after(0, 1, 2);
        plan.retry_timeout = SimTime::secs(0.25);
        let ost = Ost::new(1);
        ost.install_faults(Arc::new(plan), 0);
        // Op 0: before the window, clean.
        let d0 = ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!((d0.as_secs() - (1.0 + 1e-5)).abs() < 1e-9);
        // Op 1 hits the window [1, 3): two failed attempts burn ops 1–2
        // and charge 0.25 + 0.5 of backoff before the clean retry.
        let a1 = d0 + SimTime::secs(5.0);
        let d1 = ost.serve(a1, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!(
            ((d1 - a1).as_secs() - (0.75 + 1.0 + 1e-5)).abs() < 1e-9,
            "backoff + service: {:?}",
            d1 - a1
        );
        // The window is drained: the next request is clean again.
        let a2 = d1 + SimTime::secs(5.0);
        let d2 = ost.serve(a2, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
        assert!(((d2 - a2).as_secs() - (1.0 + 1e-5)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "failed permanently")]
    fn fail_window_beyond_retry_bound_is_a_hard_failure() {
        use simnet::FaultPlan;
        use std::sync::Arc;
        let ost = Ost::new(1);
        ost.install_faults(Arc::new(FaultPlan::new(0).ost_fail_after(0, 0, 100)), 0);
        ost.serve(SimTime::ZERO, 1_000_000, 1, OH, BW, 0.0, 0.0, 0.0, 1.0, None, SimTime::ZERO);
    }
}
