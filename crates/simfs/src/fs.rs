//! The file system: metadata service, files, and client operations.

use crate::config::FsConfig;
use crate::integrity::{IntegrityError, IntegrityStore, ScrubReport};
use crate::layout::StripeLayout;
use crate::ost::{Ost, OstStats};
use crate::storage::{Storage, PAGE_SIZE};
use parking_lot::Mutex;
use simnet::{FaultPlan, IoBuffer, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// One file's metadata and contents.
#[derive(Debug)]
struct FileEntry {
    layout: StripeLayout,
    storage: Mutex<Storage>,
    /// Per-page checksums and rot bookkeeping; present iff
    /// [`FsConfig::integrity`] is on. Lock order: integrity before
    /// storage, everywhere.
    integrity: Option<Mutex<IntegrityStore>>,
    /// MPI-IO shared file pointer (one per file, across all openers).
    shared_ptr: std::sync::atomic::AtomicU64,
}

#[derive(Debug)]
struct Mds {
    files: HashMap<String, Arc<FileEntry>>,
    next_first_ost: usize,
    next_free: SimTime,
    opens: u64,
}

#[derive(Debug)]
struct FsInner {
    cfg: FsConfig,
    osts: Vec<Ost>,
    mds: Mutex<Mds>,
    next_client: std::sync::atomic::AtomicU64,
    /// The installed fault plan (rot rules address file extents through
    /// it); `None` until [`FileSystem::install_faults`].
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

/// A shared parallel file system instance. Cheap to clone (`Arc` inside);
/// one instance is shared by every rank of a cluster run.
///
/// # Examples
///
/// ```
/// use simfs::{FileSystem, FsConfig};
/// use simnet::{IoBuffer, SimTime};
///
/// let fs = FileSystem::new(FsConfig::tiny());
/// let (file, t_open) = fs.open("/data", SimTime::ZERO);
/// let t_write = file.write_at(0, &IoBuffer::from_slice(b"striped"), t_open);
/// let (data, _) = file.read_at(0, 7, t_write);
/// assert_eq!(data.as_slice().unwrap(), b"striped");
/// assert!(t_write > t_open); // virtual time advanced through the OSTs
/// ```
#[derive(Debug, Clone)]
pub struct FileSystem {
    inner: Arc<FsInner>,
}

/// An open file. Cheap to clone; all clones address the same file and
/// share the opener's client identity (for lock-contention accounting).
#[derive(Debug, Clone)]
pub struct FileHandle {
    fs: FileSystem,
    path: String,
    entry: Arc<FileEntry>,
    client: u64,
}

/// Aggregate file system statistics.
#[derive(Debug, Clone, Default)]
pub struct FsStats {
    /// Per-OST statistics, by pool index.
    pub osts: Vec<OstStats>,
    /// Total bytes served across all targets.
    pub total_bytes: u64,
    /// Total chunk requests across all targets.
    pub total_requests: u64,
    /// Metadata opens served.
    pub opens: u64,
    /// Busy time of the busiest target — the straggler that lock-step
    /// collective rounds end up waiting for.
    pub max_ost_busy: SimTime,
    /// Bytes of file-image pages resident in memory across all files
    /// (the quantity the `SIMFS_SPILL_MB` streaming limit caps).
    pub image_resident_bytes: u64,
    /// Bytes of file-image pages parked in spill files across all files.
    pub image_spilled_bytes: u64,
    /// At-rest extents detected and repaired by the integrity layer
    /// (read-path verification plus scrub passes), across all files.
    pub integrity_repaired: u64,
    /// Pages currently poisoned: corruption detected on data with no
    /// durable copy to repair from.
    pub integrity_poisoned: u64,
}

impl FileSystem {
    /// Create a file system from a validated configuration.
    pub fn new(cfg: FsConfig) -> Self {
        cfg.validate();
        let osts = (0..cfg.n_osts)
            .map(|i| Ost::new(cfg.seed.wrapping_add(0x9E37 * i as u64 + 1)))
            .collect();
        FileSystem {
            inner: Arc::new(FsInner {
                cfg,
                osts,
                mds: Mutex::new(Mds {
                    files: HashMap::new(),
                    next_first_ost: 0,
                    next_free: SimTime::ZERO,
                    opens: 0,
                }),
                next_client: std::sync::atomic::AtomicU64::new(1),
                faults: Mutex::new(None),
            }),
        }
    }

    fn new_entry(&self, layout: StripeLayout) -> Arc<FileEntry> {
        Arc::new(FileEntry {
            layout,
            storage: Mutex::new(Storage::new()),
            integrity: self
                .inner
                .cfg
                .integrity
                .then(|| Mutex::new(IntegrityStore::new())),
            shared_ptr: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &FsConfig {
        &self.inner.cfg
    }

    /// Attach a trace sink: each OST gets a recorder on its own `ost<i>`
    /// track and emits service intervals, queue waits and volume metrics
    /// for every request it serves. With a disabled sink this is a no-op
    /// installation (recording calls stay single-branch cheap).
    pub fn attach_trace(&self, sink: &simtrace::TraceSink) {
        for (i, ost) in self.inner.osts.iter().enumerate() {
            ost.attach_trace(sink.recorder(simtrace::TrackKey::Ost(i)));
        }
    }

    /// Install a fault plan on every OST: `ost_slow` / `ost_fail_after`
    /// rules address targets by their index here. Uninstalled (the
    /// default), the service model is byte-for-byte the unperturbed one.
    pub fn install_faults(&self, plan: &std::sync::Arc<simnet::FaultPlan>) {
        for (i, ost) in self.inner.osts.iter().enumerate() {
            ost.install_faults(std::sync::Arc::clone(plan), i);
        }
        // Keep the plan: `ost_rot` rules address at-rest file extents,
        // which the integrity layer materializes at read/scrub time.
        *self.inner.faults.lock() = Some(std::sync::Arc::clone(plan));
    }

    /// Open (creating if absent) with the default stripe parameters.
    /// Returns the handle and the virtual completion time of the open.
    pub fn open(&self, path: &str, now: SimTime) -> (FileHandle, SimTime) {
        let (sc, ss) = (
            self.inner.cfg.default_stripe_count,
            self.inner.cfg.default_stripe_size,
        );
        self.open_with_layout(path, sc, ss, now)
    }

    /// Open (creating if absent) with explicit striping. Striping of an
    /// existing file is immutable — the parameters apply only on create,
    /// as in Lustre.
    pub fn open_with_layout(
        &self,
        path: &str,
        stripe_count: usize,
        stripe_size: u64,
        now: SimTime,
    ) -> (FileHandle, SimTime) {
        let cfg = &self.inner.cfg;
        let mut mds = self.inner.mds.lock();
        mds.opens += 1;
        // MDS is a serial resource for the per-open bookkeeping; the base
        // latency overlaps across clients.
        let start = mds.next_free.max(now + cfg.rpc_latency);
        mds.next_free = start + cfg.open_per_client;
        let done = mds.next_free + cfg.open_base + cfg.rpc_latency;

        let entry = match mds.files.get(path) {
            Some(e) => Arc::clone(e),
            None => {
                let first = mds.next_first_ost;
                mds.next_first_ost = (mds.next_first_ost + 1) % cfg.n_osts;
                let entry =
                    self.new_entry(StripeLayout::new(first, stripe_count, stripe_size, cfg.n_osts));
                mds.files.insert(path.to_string(), Arc::clone(&entry));
                entry
            }
        };
        drop(mds);
        let client = self
            .inner
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        (
            FileHandle {
                fs: self.clone(),
                path: path.to_string(),
                entry,
                client,
            },
            done,
        )
    }

    /// Charge one *collective* open: `parties` clients that have already
    /// agreed on a common clock `now` are served back-to-back by the
    /// serial MDS bookkeeping. Returns the completion instant of the
    /// last-served client. Creates the file (with the given striping) if
    /// absent, exactly as [`open_with_layout`](Self::open_with_layout);
    /// fetch per-client handles afterwards with [`handle`](Self::handle).
    ///
    /// Charging the whole group in one call is what keeps virtual time
    /// independent of host-thread arrival order: `parties` concurrent
    /// per-client opens would be queued in whatever order the OS ran the
    /// threads.
    pub fn open_collective(
        &self,
        path: &str,
        stripe_count: usize,
        stripe_size: u64,
        now: SimTime,
        parties: usize,
    ) -> SimTime {
        let cfg = &self.inner.cfg;
        let mut mds = self.inner.mds.lock();
        mds.opens += parties as u64;
        let start = mds.next_free.max(now + cfg.rpc_latency);
        mds.next_free = start + cfg.open_per_client * parties as f64;
        let done = mds.next_free + cfg.open_base + cfg.rpc_latency;
        if !mds.files.contains_key(path) {
            let first = mds.next_first_ost;
            mds.next_first_ost = (mds.next_first_ost + 1) % cfg.n_osts;
            let entry =
                self.new_entry(StripeLayout::new(first, stripe_count, stripe_size, cfg.n_osts));
            mds.files.insert(path.to_string(), entry);
        }
        done
    }

    /// A handle to an already-opened file, with a fresh client identity.
    /// Used by clients whose open was charged collectively via
    /// [`open_collective`](Self::open_collective).
    ///
    /// # Panics
    ///
    /// Panics if `path` has never been opened.
    pub fn handle(&self, path: &str) -> FileHandle {
        let entry = self
            .inner
            .mds
            .lock()
            .files
            .get(path)
            .map(Arc::clone)
            .expect("handle() requires a prior open of the path");
        let client = self
            .inner
            .next_client
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        FileHandle {
            fs: self.clone(),
            path: path.to_string(),
            entry,
            client,
        }
    }

    /// Remove a file's metadata and contents. Existing handles keep their
    /// (now unlinked) contents alive, POSIX-style.
    pub fn unlink(&self, path: &str) -> bool {
        self.inner.mds.lock().files.remove(path).is_some()
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.mds.lock().files.contains_key(path)
    }

    /// The instant every queued byte is durable — what an `fsync`/close
    /// barrier waits for. Write-back caching lets writes complete ahead
    /// of the media; a benchmark that measures "bandwidth to stable
    /// storage" must include this drain.
    pub fn drain_time(&self) -> SimTime {
        self.inner
            .osts
            .iter()
            .map(Ost::next_free)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Snapshot aggregate statistics.
    pub fn stats(&self) -> FsStats {
        let osts: Vec<OstStats> = self.inner.osts.iter().map(Ost::stats).collect();
        let (opens, image_resident_bytes, image_spilled_bytes, integrity_repaired, integrity_poisoned) = {
            let mds = self.inner.mds.lock();
            let (mut res, mut spill, mut rep, mut poi) = (0u64, 0u64, 0u64, 0u64);
            for entry in mds.files.values() {
                if let Some(integ) = &entry.integrity {
                    let integ = integ.lock();
                    rep += integ.repaired_extents();
                    poi += integ.poisoned_pages();
                }
                let st = entry.storage.lock();
                res += st.resident_bytes();
                spill += st.spilled_bytes();
            }
            (mds.opens, res, spill, rep, poi)
        };
        FsStats {
            total_bytes: osts.iter().map(|s| s.bytes).sum(),
            total_requests: osts.iter().map(|s| s.requests).sum(),
            opens,
            max_ost_busy: osts
                .iter()
                .map(|s| s.busy)
                .fold(SimTime::ZERO, SimTime::max),
            osts,
            image_resident_bytes,
            image_spilled_bytes,
            integrity_repaired,
            integrity_poisoned,
        }
    }

    /// Walk every file's extents against its stored page sums in virtual
    /// time: materialize pending rot, repair what the durable-copy
    /// journal covers, and report the rest. Files are scanned in path
    /// order, so two runs with the same plan produce byte-identical
    /// reports. Returns the findings and the virtual completion instant
    /// (an idle background scan: OST bandwidth in parallel across
    /// targets, without perturbing foreground queue accounting).
    ///
    /// Without [`FsConfig::integrity`] there are no stored sums and the
    /// report is trivially clean.
    pub fn scrub(&self, now: SimTime) -> (ScrubReport, SimTime) {
        let cfg = &self.inner.cfg;
        let plan = self.inner.faults.lock().clone();
        let files: Vec<(String, Arc<FileEntry>)> = {
            let mds = self.inner.mds.lock();
            let mut v: Vec<_> = mds
                .files
                .iter()
                .map(|(p, e)| (p.clone(), Arc::clone(e)))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };
        let mut report = ScrubReport::default();
        let mut repairs = 0u64;
        for (path, entry) in files {
            report.files_scanned += 1;
            let Some(integ) = &entry.integrity else {
                continue;
            };
            let mut integ = integ.lock();
            let mut storage = entry.storage.lock();
            let size = storage.size();
            report.bytes_scanned += size;
            let out = integ.verify_range(&mut storage, plan.as_deref(), 0, size);
            repairs += out.repaired.len() as u64;
            for (o, l) in out.repaired {
                report.repaired.push((path.clone(), o, l));
            }
            for (o, l) in out.unrepairable {
                report.unrepairable.push((path.clone(), o, l));
            }
        }
        let scan = SimTime::secs(
            report.bytes_scanned as f64 / (cfg.ost_bandwidth_bps * cfg.n_osts as f64),
        );
        let repair_cost = (cfg.request_overhead
            + SimTime::secs(PAGE_SIZE as f64 / cfg.ost_bandwidth_bps))
            * repairs as f64;
        (report, now + cfg.rpc_latency * 2.0 + scan + repair_cost)
    }
}

impl FsStats {
    /// Mean per-OST busy time.
    pub fn mean_busy(&self) -> SimTime {
        if self.osts.is_empty() {
            return SimTime::ZERO;
        }
        self.osts.iter().map(|o| o.busy).sum::<SimTime>() / self.osts.len() as f64
    }

    /// Load-imbalance factor: busiest target's busy time over the mean
    /// (1.0 = perfectly balanced). Lock-step collective rounds stall on
    /// exactly this straggler.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_busy().as_secs();
        if mean == 0.0 {
            1.0
        } else {
            self.max_ost_busy.as_secs() / mean
        }
    }

    /// Fraction of targets that served any bytes.
    pub fn utilization_breadth(&self) -> f64 {
        if self.osts.is_empty() {
            return 0.0;
        }
        self.osts.iter().filter(|o| o.bytes > 0).count() as f64 / self.osts.len() as f64
    }

    /// Mean request size in bytes (0 if no requests) — small values are
    /// the signature of the over-partitioned / scatter regimes.
    pub fn mean_request_bytes(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.total_bytes as f64 / self.total_requests as f64
        }
    }
}

impl FileHandle {
    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The file's striping layout.
    pub fn layout(&self) -> &StripeLayout {
        &self.entry.layout
    }

    /// Current file size.
    pub fn size(&self) -> u64 {
        self.entry.storage.lock().size()
    }

    /// Write `data` at `offset`, arriving at virtual time `now`; returns
    /// the completion instant (all stripes durable).
    pub fn write_at(&self, offset: u64, data: &IoBuffer, now: SimTime) -> SimTime {
        let done = self.charge_io(offset, data.len() as u64, now, true);
        if !data.is_empty() {
            let integ = self.entry.integrity.as_ref().map(|m| m.lock());
            let mut st = self.entry.storage.lock();
            st.write(offset, data);
            if let Some(mut integ) = integ {
                integ.note_write(&st, offset, data.len() as u64);
            }
        }
        done
    }

    /// Write only the first `keep` bytes of `data` at `offset` — a *torn
    /// write*: the issuing aggregator died mid-request, a prefix landed
    /// on the platter and the tail did not. Charges I/O for the prefix
    /// only. Stored page sums cover the prefix (the bytes really are
    /// durable); the *logical* damage — stale bytes where the tail
    /// should be — is what crash recovery must replay over.
    pub fn write_at_torn(&self, offset: u64, data: &IoBuffer, keep: u64, now: SimTime) -> SimTime {
        let keep = keep.min(data.len() as u64);
        self.write_at(offset, &data.sub(0, keep as usize), now)
    }

    /// Read `len` bytes at `offset`, arriving at `now`; returns the data
    /// and the completion instant. With integrity on, the range is
    /// verified against stored sums first and any repairable corruption
    /// is repaired (charged to the completion time).
    ///
    /// # Panics
    ///
    /// Panics on unrepairable corruption — a read must never silently
    /// return wrong bytes; callers that can degrade gracefully use
    /// [`read_at_checked`](Self::read_at_checked).
    pub fn read_at(&self, offset: u64, len: usize, now: SimTime) -> (IoBuffer, SimTime) {
        match self.read_at_checked(offset, len, now) {
            Ok(r) => r,
            Err(e) => panic!("integrity failure on read: {e}"),
        }
    }

    /// Like [`read_at`](Self::read_at), but surfaces unrepairable
    /// corruption as a typed [`IntegrityError`] instead of panicking.
    pub fn read_at_checked(
        &self,
        offset: u64,
        len: usize,
        now: SimTime,
    ) -> Result<(IoBuffer, SimTime), IntegrityError> {
        let mut done = self.charge_io(offset, len as u64, now, false);
        let integ = self.entry.integrity.as_ref().map(|m| m.lock());
        let mut st = self.entry.storage.lock();
        if let Some(mut integ) = integ {
            let plan = self.fs.inner.faults.lock().clone();
            let out = integ.verify_range(&mut st, plan.as_deref(), offset, len as u64);
            if !out.repaired.is_empty() {
                // Each repaired extent re-reads one page from the
                // redundant copy: one request plus one page transfer.
                let cfg = &self.fs.inner.cfg;
                done += (cfg.request_overhead
                    + SimTime::secs(PAGE_SIZE as f64 / cfg.ost_bandwidth_bps))
                    * out.repaired.len() as f64;
            }
            if !out.unrepairable.is_empty() {
                return Err(IntegrityError {
                    path: self.path.clone(),
                    extents: out.unrepairable,
                });
            }
        }
        let data = st.read(offset, len);
        Ok((data, done))
    }

    /// Read a batch of discontiguous extents as one vectored *list-I/O*
    /// request (DESIGN.md §15): the extent list travels in a single RPC
    /// round-trip, and each OST serves its share as one request whose
    /// first chunk unit pays the full
    /// [`request_overhead`](crate::FsConfig::request_overhead) while
    /// every further unit costs only
    /// [`list_extent_overhead`](crate::FsConfig::list_extent_overhead) —
    /// the extents share the lock acquisition and queue admission.
    /// Returns one buffer per extent plus the completion instant.
    ///
    /// # Panics
    ///
    /// Panics on unrepairable corruption, like [`read_at`](Self::read_at).
    pub fn read_list(&self, extents: &[(u64, u64)], now: SimTime) -> (Vec<IoBuffer>, SimTime) {
        match self.read_list_checked(extents, now) {
            Ok(r) => r,
            Err(e) => panic!("integrity failure on list read: {e}"),
        }
    }

    /// Like [`read_list`](Self::read_list), but surfaces unrepairable
    /// corruption as a typed [`IntegrityError`].
    pub fn read_list_checked(
        &self,
        extents: &[(u64, u64)],
        now: SimTime,
    ) -> Result<(Vec<IoBuffer>, SimTime), IntegrityError> {
        let cfg = &self.fs.inner.cfg;
        // Aggregate the chunk-unit load per OST (BTreeMap: the service
        // order must be deterministic, not hash order).
        let mut per_ost: std::collections::BTreeMap<usize, (u64, u64)> =
            std::collections::BTreeMap::new();
        for &(off, len) in extents {
            if len == 0 {
                continue;
            }
            for (ost, bytes, requests) in self.entry.layout.ost_load(off, len) {
                let e = per_ost.entry(ost).or_default();
                e.0 += bytes;
                e.1 += requests;
            }
        }
        let mut done = if per_ost.is_empty() {
            now + cfg.rpc_latency * 2.0
        } else {
            let arrival = now + cfg.rpc_latency;
            let cache_window = SimTime::secs(cfg.cache_bytes as f64 / cfg.ost_bandwidth_bps);
            let mut done = arrival;
            for (&ost, &(bytes, units)) in &per_ost {
                let overhead =
                    cfg.request_overhead + cfg.list_extent_overhead * (units - 1) as f64;
                let completion = self.fs.inner.osts[ost].serve(
                    arrival,
                    bytes,
                    1,
                    overhead,
                    cfg.ost_bandwidth_bps,
                    cfg.jitter_cv,
                    cfg.contention_per_queued,
                    cfg.slow_prob,
                    cfg.slow_factor,
                    None,
                    cache_window,
                );
                done = done.max(completion);
            }
            done + cfg.rpc_latency
        };
        let integ = self.entry.integrity.as_ref().map(|m| m.lock());
        let mut st = self.entry.storage.lock();
        if let Some(mut integ) = integ {
            let plan = self.fs.inner.faults.lock().clone();
            let mut repairs = 0usize;
            let mut unrepairable = Vec::new();
            for &(off, len) in extents {
                if len == 0 {
                    continue;
                }
                let out = integ.verify_range(&mut st, plan.as_deref(), off, len);
                repairs += out.repaired.len();
                unrepairable.extend(out.unrepairable);
            }
            if repairs > 0 {
                done += (cfg.request_overhead
                    + SimTime::secs(PAGE_SIZE as f64 / cfg.ost_bandwidth_bps))
                    * repairs as f64;
            }
            if !unrepairable.is_empty() {
                return Err(IntegrityError {
                    path: self.path.clone(),
                    extents: unrepairable,
                });
            }
        }
        let bufs = extents
            .iter()
            .map(|&(off, len)| st.read(off, len as usize))
            .collect();
        Ok((bufs, done))
    }

    /// Atomically fetch-and-advance the file's shared pointer by `n`
    /// bytes, returning the pre-advance value (MPI shared-file-pointer
    /// semantics: any process may claim the next region).
    pub fn shared_fetch_add(&self, n: u64) -> u64 {
        self.entry
            .shared_ptr
            .fetch_add(n, std::sync::atomic::Ordering::SeqCst)
    }

    /// Read the shared pointer without advancing it.
    pub fn shared_load(&self) -> u64 {
        self.entry.shared_ptr.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Truncate the file (metadata-only cost: one RPC).
    pub fn truncate(&self, size: u64, now: SimTime) -> SimTime {
        let integ = self.entry.integrity.as_ref().map(|m| m.lock());
        let mut st = self.entry.storage.lock();
        st.truncate(size);
        if let Some(mut integ) = integ {
            integ.note_truncate(&st, size);
        }
        drop(st);
        now + self.fs.inner.cfg.rpc_latency * 2.0
    }

    fn charge_io(&self, offset: u64, len: u64, now: SimTime, is_write: bool) -> SimTime {
        let cfg = &self.fs.inner.cfg;
        if len == 0 {
            return now + cfg.rpc_latency * 2.0;
        }
        let writer = (is_write && cfg.lock_handoff > SimTime::ZERO)
            .then_some((self.client, cfg.lock_handoff, cfg.lock_exempt_bytes));
        let cache_window = SimTime::secs(cfg.cache_bytes as f64 / cfg.ost_bandwidth_bps);
        let arrival = now + cfg.rpc_latency;
        let mut done = arrival;
        for (ost, bytes, requests) in self.entry.layout.ost_load(offset, len) {
            let completion = self.fs.inner.osts[ost].serve(
                arrival,
                bytes,
                requests,
                cfg.request_overhead,
                cfg.ost_bandwidth_bps,
                cfg.jitter_cv,
                cfg.contention_per_queued,
                cfg.slow_prob,
                cfg.slow_factor,
                writer,
                cache_window,
            );
            done = done.max(completion);
        }
        done + cfg.rpc_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsConfig;

    fn fs() -> FileSystem {
        FileSystem::new(FsConfig::tiny())
    }

    #[test]
    fn open_write_read_round_trip() {
        let fs = fs();
        let (f, t_open) = fs.open("/a", SimTime::ZERO);
        assert!(t_open > SimTime::ZERO);
        let t1 = f.write_at(0, &IoBuffer::from_slice(b"parallel io"), t_open);
        assert!(t1 > t_open);
        let (data, t2) = f.read_at(0, 11, t1);
        assert!(t2 > t1);
        assert_eq!(data.as_slice().unwrap(), b"parallel io");
    }

    #[test]
    fn list_read_returns_per_extent_buffers_cheaper_than_serial() {
        let fs = fs();
        let (f, t) = fs.open("/l", SimTime::ZERO);
        let image: Vec<u8> = (0..64u8).collect();
        let t = f.write_at(0, &IoBuffer::from_vec(image.clone()), t);
        let runs = [(0u64, 8u64), (16, 8), (32, 8), (48, 8)];
        let (bufs, done) = f.read_list(&runs, t);
        assert_eq!(bufs.len(), 4);
        for (i, &(off, len)) in runs.iter().enumerate() {
            assert_eq!(
                bufs[i].as_slice().unwrap(),
                &image[off as usize..(off + len) as usize]
            );
        }
        // Batched cost: one RPC round-trip and, per OST, one full
        // request overhead plus the cheap per-extent units — strictly
        // below four chained read_at calls on an identical file.
        let fs2 = FileSystem::new(FsConfig::tiny());
        let (g, t2) = fs2.open("/l", SimTime::ZERO);
        let t2 = g.write_at(0, &IoBuffer::from_vec(image), t2);
        let mut serial = t2;
        for &(off, len) in &runs {
            serial = g.read_at(off, len as usize, serial).1;
        }
        assert!(done > t, "a list read still takes time");
        assert!(done - t < serial - t2, "batching must beat chained reads");
        // Empty list: pure RPC round-trip, no OST touched.
        let before = fs.stats().total_requests;
        let (none, t3) = f.read_list(&[], done);
        assert!(none.is_empty());
        assert!(t3 > done);
        assert_eq!(fs.stats().total_requests, before);
    }

    #[test]
    fn reopen_sees_existing_contents() {
        let fs = fs();
        let (f, t) = fs.open("/a", SimTime::ZERO);
        f.write_at(5, &IoBuffer::from_slice(&[1, 2, 3]), t);
        let (g, t2) = fs.open("/a", t);
        let (data, _) = g.read_at(5, 3, t2);
        assert_eq!(data.as_slice().unwrap(), &[1, 2, 3]);
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn distinct_paths_are_independent() {
        let fs = fs();
        let (a, t) = fs.open("/a", SimTime::ZERO);
        let (b, t2) = fs.open("/b", t);
        a.write_at(0, &IoBuffer::from_slice(&[1]), t2);
        let (data, _) = b.read_at(0, 1, t2);
        assert_eq!(data.as_slice().unwrap(), &[0]); // hole, not /a's byte
    }

    #[test]
    fn striping_spreads_load_across_osts() {
        let fs = fs();
        let (f, t) = fs.open("/striped", SimTime::ZERO);
        // 4KB write over 1KB stripes on 4 OSTs: each gets 1KB.
        f.write_at(0, &IoBuffer::synthetic(4096), t);
        let st = fs.stats();
        let loaded: Vec<u64> = st.osts.iter().map(|o| o.bytes).collect();
        assert_eq!(loaded.iter().sum::<u64>(), 4096);
        assert_eq!(loaded.iter().filter(|&&b| b == 1024).count(), 4);
    }

    #[test]
    fn parallel_osts_beat_single_ost() {
        // Same volume, stripe over 4 targets vs 1: wide layout is faster.
        let fs1 = fs();
        let (wide, t) = fs1.open_with_layout("/w", 4, 1024, SimTime::ZERO);
        let t_wide = wide.write_at(0, &IoBuffer::synthetic(1 << 20), t) - t;

        let fs2 = fs();
        let (narrow, t) = fs2.open_with_layout("/n", 1, 1024, SimTime::ZERO);
        let t_narrow = narrow.write_at(0, &IoBuffer::synthetic(1 << 20), t) - t;
        assert!(
            t_narrow.as_secs() > 3.0 * t_wide.as_secs(),
            "narrow {t_narrow} should be ~4x wide {t_wide}"
        );
    }

    #[test]
    fn contention_serializes_clients_on_one_ost() {
        let fs = fs();
        let (f, t) = fs.open_with_layout("/one", 1, 1024, SimTime::ZERO);
        // Two 1MB writes arriving simultaneously to the same OST.
        let d1 = f.write_at(0, &IoBuffer::synthetic(1 << 20), t);
        let d2 = f.write_at(1 << 20, &IoBuffer::synthetic(1 << 20), t);
        // Second completes roughly one service later than the first.
        assert!((d2 - d1).as_secs() > 0.9 * (1 << 20) as f64 / 1e6);
    }

    #[test]
    fn synthetic_and_real_data_coexist_across_files() {
        let fs = fs();
        let (f, t) = fs.open("/mix", SimTime::ZERO);
        f.write_at(0, &IoBuffer::from_slice(&[9; 64]), t);
        f.write_at(1 << 30, &IoBuffer::synthetic(1 << 20), t);
        let (head, _) = f.read_at(0, 64, t);
        assert_eq!(head.as_slice().unwrap(), &[9; 64]);
        let (tail, _) = f.read_at(1 << 30, 1 << 20, t);
        assert!(!tail.is_real());
    }

    #[test]
    fn unlink_removes_path() {
        let fs = fs();
        let (_f, _) = fs.open("/gone", SimTime::ZERO);
        assert!(fs.exists("/gone"));
        assert!(fs.unlink("/gone"));
        assert!(!fs.exists("/gone"));
        assert!(!fs.unlink("/gone"));
    }

    #[test]
    fn opens_accumulate_mds_cost() {
        let fs = fs();
        let (_, t1) = fs.open("/f", SimTime::ZERO);
        let (_, t2) = fs.open("/f", SimTime::ZERO);
        let (_, t3) = fs.open("/f", SimTime::ZERO);
        assert!(t2 > t1 || t3 > t2, "serialized MDS time must show up");
        assert_eq!(fs.stats().opens, 3);
    }

    #[test]
    fn first_ost_rotates_per_file() {
        let fs = fs();
        let (a, _) = fs.open_with_layout("/r1", 1, 1024, SimTime::ZERO);
        let (b, _) = fs.open_with_layout("/r2", 1, 1024, SimTime::ZERO);
        assert_ne!(a.layout().first_ost, b.layout().first_ost);
    }

    #[test]
    fn stats_track_requests_and_straggler() {
        let fs = fs();
        let (f, t) = fs.open("/s", SimTime::ZERO);
        f.write_at(0, &IoBuffer::synthetic(10 * 1024), t);
        let st = fs.stats();
        assert_eq!(st.total_bytes, 10 * 1024);
        assert_eq!(st.total_requests, 10); // 10 stripe chunks of 1KB
        assert!(st.max_ost_busy > SimTime::ZERO);
    }

    #[test]
    fn stats_diagnostics() {
        let fs = fs();
        let (f, t) = fs.open("/diag", SimTime::ZERO);
        // 2KB over 1KB stripes on 4 OSTs: 2 targets loaded, 2 idle.
        f.write_at(0, &IoBuffer::synthetic(2048), t);
        let st = fs.stats();
        assert!((st.utilization_breadth() - 0.5).abs() < 1e-12);
        assert!(st.imbalance() >= 1.0);
        assert!((st.mean_request_bytes() - 1024.0).abs() < 1e-9);
        assert!(st.mean_busy() > SimTime::ZERO);
    }

    #[test]
    fn empty_stats_are_sane() {
        let fs = fs();
        let st = fs.stats();
        assert_eq!(st.mean_request_bytes(), 0.0);
        assert_eq!(st.imbalance(), 1.0);
        assert_eq!(st.utilization_breadth(), 0.0);
    }

    #[test]
    fn zero_length_io_costs_only_rpc() {
        let fs = fs();
        let (f, t) = fs.open("/z", SimTime::ZERO);
        let done = f.write_at(0, &IoBuffer::empty(), t);
        assert!((done - t).as_micros() <= 3.0);
        let st = fs.stats();
        assert_eq!(st.total_bytes, 0);
    }

    #[test]
    fn jaguar_preset_constructs() {
        let fs = FileSystem::new(FsConfig::jaguar());
        let (f, t) = fs.open("/big", SimTime::ZERO);
        assert_eq!(f.layout().stripe_count, 64);
        assert_eq!(f.layout().stripe_size, 4 << 20);
        let done = f.write_at(0, &IoBuffer::synthetic(512 << 20), t);
        // 512MB over 64 OSTs at 450MB/s each: lower bound ~17.8ms + overheads.
        assert!(done.as_millis() > 15.0);
        assert!(done.as_secs() < 2.0);
    }
}
