//! At-rest data integrity: per-page checksums, lazy rot materialization,
//! detect-and-repair, and the scrub report types.
//!
//! When [`crate::FsConfig::integrity`] is on, every file carries an
//! [`IntegrityStore`]: an FNV-1a 64 sum per 64 KiB storage page (the
//! granularity [`crate::storage::Storage`] manages bytes at — the
//! simulator's stand-in for Lustre's per-extent OST checksums). Sums are
//! updated on the write path and verified on the read path and by
//! [`crate::FileSystem::scrub`].
//!
//! # Rot model
//!
//! An `ost_rot` fault rule names a file extent that decays at rest. The
//! decay is *materialized lazily*: the first read or scrub that touches
//! the extent applies the rule's seeded single-byte flip to the stored
//! bytes (without updating the stored sum — that is the corruption) and
//! journals the flip. The journal models the redundant durable copy a
//! real deployment repairs from: a detected mismatch whose flips are all
//! journaled is repaired by inverting them (XOR is self-inverse) and
//! re-verifying. A rotted page whose data was *synthetic* (modeled bytes
//! that were never materialized — there is no redundant copy to read
//! back) is poisoned: detection still works, repair is impossible, and
//! the read surfaces a typed [`IntegrityError`] instead of a silent
//! wrong answer.
//!
//! # Determinism
//!
//! Sums are pure functions of file contents; the planted flip is a pure
//! function of the plan seed and rule index; materialization order is
//! fixed by rule index. Two runs with the same plan therefore report
//! byte-identical scrub findings.

use crate::storage::{Storage, PAGE_SIZE};
use simnet::FaultPlan;
use std::collections::{BTreeMap, BTreeSet};

/// The integrity state of one storage page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageSum {
    /// Real bytes with their FNV-1a 64 sum (over the page clipped to the
    /// file size at the last write).
    Real(u64),
    /// Synthetic (modeled, never-materialized) bytes: consistent by
    /// construction, nothing to hash.
    Synthetic,
    /// Rot landed on synthetic bytes: the corruption is detectable but
    /// there is no durable copy to repair from. Any read overlapping the
    /// page is an integrity error until fresh data overwrites it.
    Poisoned,
}

/// What a verification pass found in one range: extents it repaired and
/// extents whose data is gone.
#[derive(Debug, Clone, Default)]
pub struct VerifyOutcome {
    /// Repaired extents `(offset, len)`, ascending, merged per page.
    pub repaired: Vec<(u64, u64)>,
    /// Unrepairable extents `(offset, len)`, ascending.
    pub unrepairable: Vec<(u64, u64)>,
}

/// Typed error for an unrepairable at-rest corruption — the alternative
/// to a silent wrong answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityError {
    /// Path of the damaged file.
    pub path: String,
    /// Unrepairable extents `(offset, len)`, ascending.
    pub extents: Vec<(u64, u64)>,
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrepairable corruption in {}: {} extent(s), first at offset {}",
            self.path,
            self.extents.len(),
            self.extents.first().map(|e| e.0).unwrap_or(0)
        )
    }
}

impl std::error::Error for IntegrityError {}

/// Findings of one [`crate::FileSystem::scrub`] pass over every file.
#[derive(Debug, Clone, Default)]
pub struct ScrubReport {
    /// Files walked (every file in the namespace, sorted by path).
    pub files_scanned: usize,
    /// Bytes verified against stored sums.
    pub bytes_scanned: u64,
    /// Repaired extents as `(path, offset, len)`, in scan order.
    pub repaired: Vec<(String, u64, u64)>,
    /// Unrepairable extents as `(path, offset, len)`, in scan order.
    pub unrepairable: Vec<(String, u64, u64)>,
}

impl ScrubReport {
    /// True when every stored byte verified clean (nothing repaired,
    /// nothing poisoned).
    pub fn is_clean(&self) -> bool {
        self.repaired.is_empty() && self.unrepairable.is_empty()
    }
}

/// Per-file integrity bookkeeping: page sums, pending rot rules, and the
/// durable-copy journal. Lives beside the file's `Storage` under the
/// same lock discipline (callers hold both).
#[derive(Debug, Default)]
pub struct IntegrityStore {
    /// Stored sum per page index (`offset / PAGE_SIZE`). Absent pages
    /// were never written (holes read as zeros and verify trivially).
    sums: BTreeMap<u64, PageSum>,
    /// Rot rules (by plan rule index) already materialized on this file;
    /// each rule decays a file at most once.
    rot_done: BTreeSet<usize>,
    /// Materialized flips `(byte offset, xor mask)` not yet repaired —
    /// the model's redundant durable copy.
    journal: Vec<(u64, u8)>,
    /// Extents repaired over this file's lifetime.
    repaired: u64,
}

/// Page index range `[first, last]` overlapping `[offset, offset+len)`,
/// or `None` for an empty range.
fn page_span(offset: u64, len: u64) -> Option<(u64, u64)> {
    if len == 0 {
        return None;
    }
    Some((offset / PAGE_SIZE, (offset + len - 1) / PAGE_SIZE))
}

impl IntegrityStore {
    /// Fresh store for an empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extents repaired over this file's lifetime.
    pub fn repaired_extents(&self) -> u64 {
        self.repaired
    }

    /// Pages currently poisoned (detectable but unrepairable).
    pub fn poisoned_pages(&self) -> u64 {
        self.sums.values().filter(|s| **s == PageSum::Poisoned).count() as u64
    }

    /// The sum a page's current stored bytes hash to (pure observation,
    /// no stored-sum update). Always hashes the full page window, zero-
    /// filled past EOF, so a stored sum stays valid when *other* pages
    /// later grow the file.
    fn page_sum_of(&self, storage: &Storage, page: u64) -> PageSum {
        match storage.hash_range(page * PAGE_SIZE, PAGE_SIZE as usize) {
            Some(sum) => PageSum::Real(sum),
            None => PageSum::Synthetic,
        }
    }

    /// Record a write of `[offset, offset+len)`: recompute the stored
    /// sum of every touched page from the post-write bytes. Fresh data
    /// heals poisoned pages it fully re-hashes.
    pub fn note_write(&mut self, storage: &Storage, offset: u64, len: u64) {
        let _hp = simtrace::host::scope(simtrace::host::Site::CksumCompute);
        let Some((first, last)) = page_span(offset, len) else {
            return;
        };
        for page in first..=last {
            let sum = self.page_sum_of(storage, page);
            self.sums.insert(page, sum);
        }
    }

    /// Record a truncation: forget sums of pages wholly past the new
    /// size and re-hash the page the new EOF lands in.
    pub fn note_truncate(&mut self, storage: &Storage, size: u64) {
        let first_gone = size.div_ceil(PAGE_SIZE);
        self.sums.retain(|&p, _| p < first_gone);
        self.journal.retain(|&(b, _)| b < size);
        if !size.is_multiple_of(PAGE_SIZE) {
            let page = size / PAGE_SIZE;
            if self.sums.contains_key(&page) {
                let sum = self.page_sum_of(storage, page);
                self.sums.insert(page, sum);
            }
        }
    }

    /// Materialize any pending rot rule whose extent overlaps
    /// `[offset, offset+len)`: apply the seeded flip to the stored bytes
    /// (stored sums untouched — that *is* the corruption) and journal
    /// it, or poison the page when the bytes are synthetic.
    fn materialize_rot(&mut self, storage: &mut Storage, plan: &FaultPlan, offset: u64, len: u64) {
        for (rule, roff, rlen) in plan.ost_rot_regions() {
            if self.rot_done.contains(&rule) {
                continue;
            }
            if roff >= offset + len || roff + rlen <= offset {
                continue;
            }
            self.rot_done.insert(rule);
            let (byte, xor) = plan.rot_flip(rule).expect("rot rule has a flip");
            if byte >= storage.size() {
                continue; // decayed a region never written — nothing to flip
            }
            let cur = storage.read(byte, 1);
            match cur.as_slice() {
                Some(bytes) => {
                    let flipped = [bytes[0] ^ xor];
                    storage.write(byte, &simnet::IoBuffer::from_slice(&flipped));
                    self.journal.push((byte, xor));
                }
                None => {
                    // Synthetic bytes: no platter image to flip, no
                    // durable copy to repair from.
                    self.sums.insert(byte / PAGE_SIZE, PageSum::Poisoned);
                }
            }
        }
    }

    /// Verify `[offset, offset+len)` against stored sums, materializing
    /// pending rot first and repairing what the journal covers. Clean
    /// data returns an empty outcome.
    pub fn verify_range(
        &mut self,
        storage: &mut Storage,
        plan: Option<&FaultPlan>,
        offset: u64,
        len: u64,
    ) -> VerifyOutcome {
        let _hp = simtrace::host::scope(simtrace::host::Site::CksumVerify);
        let mut out = VerifyOutcome::default();
        if let Some(plan) = plan {
            self.materialize_rot(storage, plan, offset, len);
        }
        let end = (offset + len).min(storage.size());
        if end <= offset {
            return out;
        }
        let Some((first, last)) = page_span(offset, end - offset) else {
            return out;
        };
        for page in first..=last {
            let Some(&stored) = self.sums.get(&page) else {
                continue; // hole: never written, reads as zeros
            };
            let ext_lo = (page * PAGE_SIZE).max(offset);
            let ext_hi = ((page + 1) * PAGE_SIZE).min(end);
            match stored {
                PageSum::Synthetic => {}
                PageSum::Poisoned => out.unrepairable.push((ext_lo, ext_hi - ext_lo)),
                PageSum::Real(sum) => {
                    if self.page_sum_of(storage, page) == PageSum::Real(sum) {
                        continue;
                    }
                    // Mismatch: invert every journaled flip on this page
                    // (the redundant-copy re-write) and re-verify.
                    let (plo, phi) = (page * PAGE_SIZE, (page + 1) * PAGE_SIZE);
                    let mut inverted = false;
                    self.journal.retain(|&(byte, xor)| {
                        if (plo..phi).contains(&byte) {
                            let cur = storage.read(byte, 1);
                            let b = cur.as_slice().expect("journaled bytes are real")[0];
                            storage.write(byte, &simnet::IoBuffer::from_slice(&[b ^ xor]));
                            inverted = true;
                            false
                        } else {
                            true
                        }
                    });
                    if inverted && self.page_sum_of(storage, page) == PageSum::Real(sum) {
                        self.repaired += 1;
                        out.repaired.push((ext_lo, ext_hi - ext_lo));
                    } else {
                        out.unrepairable.push((ext_lo, ext_hi - ext_lo));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::IoBuffer;

    fn store_with(data: &[u8]) -> (Storage, IntegrityStore) {
        let mut st = Storage::new();
        st.write(0, &IoBuffer::from_slice(data));
        let mut integ = IntegrityStore::new();
        integ.note_write(&st, 0, data.len() as u64);
        (st, integ)
    }

    #[test]
    fn clean_data_verifies_clean() {
        let (mut st, mut integ) = store_with(&[7u8; 1000]);
        let out = integ.verify_range(&mut st, None, 0, 1000);
        assert!(out.repaired.is_empty() && out.unrepairable.is_empty());
        assert_eq!(integ.repaired_extents(), 0);
    }

    #[test]
    fn rot_is_detected_and_repaired_from_journal() {
        let data: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        let (mut st, mut integ) = store_with(&data);
        let plan = FaultPlan::new(3).ost_rot(100, 50);
        // First read materializes, detects and repairs in one pass.
        let out = integ.verify_range(&mut st, Some(&plan), 0, 2000);
        assert_eq!(out.repaired.len(), 1);
        assert!(out.unrepairable.is_empty());
        assert_eq!(integ.repaired_extents(), 1);
        // Post-repair bytes are the originals.
        assert_eq!(st.read(0, 2000).as_slice().unwrap(), &data[..]);
        // The rule fired once: a second pass is clean.
        let again = integ.verify_range(&mut st, Some(&plan), 0, 2000);
        assert!(again.repaired.is_empty() && again.unrepairable.is_empty());
    }

    #[test]
    fn rot_on_synthetic_data_is_unrepairable_until_overwritten() {
        let mut st = Storage::new();
        st.write(0, &IoBuffer::synthetic(4096));
        let mut integ = IntegrityStore::new();
        integ.note_write(&st, 0, 4096);
        let plan = FaultPlan::new(3).ost_rot(0, 4096);
        let out = integ.verify_range(&mut st, Some(&plan), 0, 4096);
        assert!(out.repaired.is_empty());
        assert_eq!(out.unrepairable.len(), 1);
        assert_eq!(integ.poisoned_pages(), 1);
        // Fresh data heals the page.
        st.write(0, &IoBuffer::from_slice(&[1u8; 4096]));
        integ.note_write(&st, 0, 4096);
        let healed = integ.verify_range(&mut st, Some(&plan), 0, 4096);
        assert!(healed.unrepairable.is_empty());
        assert_eq!(integ.poisoned_pages(), 0);
    }

    #[test]
    fn rot_past_eof_is_a_no_op() {
        let (mut st, mut integ) = store_with(&[1u8; 100]);
        let plan = FaultPlan::new(3).ost_rot(50, 200);
        // Extent straddles EOF; the seeded byte may land past it.
        let out = integ.verify_range(&mut st, Some(&plan), 0, 100);
        assert!(out.unrepairable.is_empty());
    }

    #[test]
    fn out_of_range_rot_stays_pending() {
        let data = vec![5u8; 3 * PAGE_SIZE as usize];
        let (mut st, mut integ) = store_with(&data);
        let plan = FaultPlan::new(9).ost_rot(2 * PAGE_SIZE, 100);
        // Verifying the first page does not touch the rule...
        let out = integ.verify_range(&mut st, Some(&plan), 0, PAGE_SIZE);
        assert!(out.repaired.is_empty() && out.unrepairable.is_empty());
        // ...a later pass over its extent does.
        let out = integ.verify_range(&mut st, Some(&plan), 0, 3 * PAGE_SIZE);
        assert_eq!(out.repaired.len(), 1);
        assert!(out.repaired[0].0 >= 2 * PAGE_SIZE);
    }

    #[test]
    fn truncate_forgets_sums_past_eof() {
        let data = vec![9u8; 2 * PAGE_SIZE as usize];
        let (mut st, mut integ) = store_with(&data);
        st.truncate(PAGE_SIZE / 2);
        integ.note_truncate(&st, PAGE_SIZE / 2);
        let out = integ.verify_range(&mut st, None, 0, 2 * PAGE_SIZE);
        assert!(out.repaired.is_empty() && out.unrepairable.is_empty());
    }
}
