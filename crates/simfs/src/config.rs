//! File system configuration.

use simnet::SimTime;

/// Parameters of the simulated Lustre deployment.
///
/// [`FsConfig::jaguar`] reproduces the paper's test file system (§5):
/// 72 OSTs, 4 Gb/s Fibre Channel per target, files striped across 64
/// targets with a 4 MB stripe size. Bandwidth and overhead constants are
/// calibrated against the companion measurement paper (Yu, Vetter, Oral:
/// "Performance Characterization and Optimization of Parallel I/O on the
/// Cray XT", IPDPS'08), which reports per-OST streaming rates of roughly
/// 350–500 MB/s and millisecond-scale request latencies under load.
#[derive(Debug, Clone)]
pub struct FsConfig {
    /// Number of object storage targets in the file system.
    pub n_osts: usize,
    /// Stripe count for newly created files (≤ `n_osts`).
    pub default_stripe_count: usize,
    /// Stripe size in bytes for newly created files.
    pub default_stripe_size: u64,
    /// Sustained per-OST bandwidth, bytes/second.
    pub ost_bandwidth_bps: f64,
    /// Fixed service time an OST spends per chunk request (seek, lock,
    /// RAID bookkeeping) regardless of size.
    pub request_overhead: SimTime,
    /// Per-extent service time inside a batched *list-I/O* read
    /// ([`crate::FileHandle::read_list`]): the extent list travels in one
    /// RPC and the extents share the lock acquisition and queue
    /// admission, so each chunk unit beyond the first costs only this
    /// (command processing + block-layer scatter-gather) instead of the
    /// full [`FsConfig::request_overhead`].
    pub list_extent_overhead: SimTime,
    /// One-way client↔server RPC latency.
    pub rpc_latency: SimTime,
    /// Base cost of a metadata open.
    pub open_base: SimTime,
    /// Additional serialized MDS time consumed per open (many clients
    /// opening one shared file queue at the MDS).
    pub open_per_client: SimTime,
    /// Coefficient of variation of OST service-time jitter; 0 disables
    /// (fully deterministic service).
    pub jitter_cv: f64,
    /// Shared-object contention: fractional service-time inflation per
    /// request already queued at arrival. Lustre extent-lock ping-pong
    /// makes shared-file writes degrade as concurrent writers per OST
    /// grow (Yu/Vetter/Oral IPDPS'08 measure exactly this collapse);
    /// 0 disables.
    pub contention_per_queued: f64,
    /// Server write-back cache per OST: a burst of up to this many bytes
    /// is absorbed at ingest speed before queueing delays apply (the DDN
    /// S2A9550 couplets behind Jaguar carried multi-GB caches). Sustained
    /// throughput is still bounded by the service rate — the cache only
    /// decouples *completion latency* from backlog, which is what lets
    /// de-synchronized (ParColl) writers avoid paying each other's queue
    /// waits.
    pub cache_bytes: u64,
    /// Extent-lock handoff penalty: added to a *write* whose size is
    /// below [`FsConfig::lock_exempt_bytes`] when the previous writer on
    /// the target was a different client. Fine-grained interleaved
    /// writers on a shared Lustre file revoke each other's speculative
    /// extent locks on every access (LDLM ping-pong) — the mechanism
    /// behind the paper's 60 MB/s "Cray w/o Coll" Flash-IO series.
    /// Collective buffering writes stripe-sized chunks and is exempt.
    pub lock_handoff: SimTime,
    /// Writes at least this large take extents big enough to amortize
    /// lock traffic (stripe-aligned collective-buffer chunks).
    pub lock_exempt_bytes: u64,
    /// Probability that a request hits a *straggler* service (RAID
    /// destage stall, slow disk — the long tail every production Lustre
    /// exhibits). Lock-step collective rounds wait for the slowest of all
    /// aggregators' requests, so at scale some round nearly always eats a
    /// straggler: the paper's collective wall in storage form.
    pub slow_prob: f64,
    /// Service-time multiplier of a straggler request.
    pub slow_factor: f64,
    /// Seed for the jitter generators.
    pub seed: u64,
    /// End-to-end integrity: maintain per-page FNV-1a sums on the write
    /// path, verify (and repair planted `ost_rot`) on the read path, and
    /// enable [`crate::FileSystem::scrub`]. Off (the default) is bitwise
    /// identical to a build without the integrity layer.
    pub integrity: bool,
}

impl FsConfig {
    /// The paper's Jaguar file system (§5).
    pub fn jaguar() -> Self {
        FsConfig {
            n_osts: 72,
            default_stripe_count: 64,
            default_stripe_size: 4 << 20,
            ost_bandwidth_bps: 650e6,
            request_overhead: SimTime::micros(350.0),
            list_extent_overhead: SimTime::micros(15.0),
            rpc_latency: SimTime::micros(60.0),
            open_base: SimTime::millis(2.0),
            open_per_client: SimTime::micros(150.0),
            jitter_cv: 0.45,
            contention_per_queued: 0.0025,
            cache_bytes: 512 << 20,
            lock_handoff: SimTime::millis(20.0),
            lock_exempt_bytes: 4 << 20,
            slow_prob: 0.01,
            slow_factor: 20.0,
            seed: 0x0C0FFEE,
            integrity: false,
        }
    }

    /// A small deterministic file system for unit tests: 4 OSTs, 1 MB/s,
    /// no jitter, zero latencies except a visible per-request overhead.
    pub fn tiny() -> Self {
        FsConfig {
            n_osts: 4,
            default_stripe_count: 4,
            default_stripe_size: 1024,
            ost_bandwidth_bps: 1e6,
            request_overhead: SimTime::micros(10.0),
            list_extent_overhead: SimTime::micros(2.0),
            rpc_latency: SimTime::micros(1.0),
            open_base: SimTime::micros(5.0),
            open_per_client: SimTime::micros(1.0),
            jitter_cv: 0.0,
            contention_per_queued: 0.0,
            cache_bytes: 0,
            lock_handoff: SimTime::ZERO,
            lock_exempt_bytes: 0,
            slow_prob: 0.0,
            slow_factor: 1.0,
            seed: 1,
            integrity: false,
        }
    }

    /// Validate invariants, panicking with a description on misuse.
    pub fn validate(&self) {
        assert!(self.n_osts > 0, "need at least one OST");
        assert!(
            (1..=self.n_osts).contains(&self.default_stripe_count),
            "stripe count {} must be in 1..={}",
            self.default_stripe_count,
            self.n_osts
        );
        assert!(self.default_stripe_size > 0, "stripe size must be positive");
        assert!(self.ost_bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(
            self.list_extent_overhead <= self.request_overhead,
            "a batched list extent cannot cost more than a standalone request"
        );
        assert!(self.jitter_cv >= 0.0, "jitter cv must be non-negative");
        assert!(
            self.contention_per_queued >= 0.0,
            "contention factor must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&self.slow_prob),
            "straggler probability must be in [0, 1]"
        );
        assert!(self.slow_factor >= 1.0, "straggler factor must be >= 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaguar_matches_paper_parameters() {
        let c = FsConfig::jaguar();
        c.validate();
        assert_eq!(c.n_osts, 72);
        assert_eq!(c.default_stripe_count, 64);
        assert_eq!(c.default_stripe_size, 4 << 20);
    }

    #[test]
    fn tiny_is_deterministic() {
        let c = FsConfig::tiny();
        c.validate();
        assert_eq!(c.jitter_cv, 0.0);
    }

    #[test]
    #[should_panic(expected = "stripe count")]
    fn stripe_count_beyond_osts_rejected() {
        let mut c = FsConfig::tiny();
        c.default_stripe_count = 5;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one OST")]
    fn zero_osts_rejected() {
        let mut c = FsConfig::tiny();
        c.n_osts = 0;
        c.validate();
    }
}
