//! A set of disjoint byte ranges with merge/split maintenance.
//!
//! Used by the storage layer to track which extents hold synthetic
//! (unmaterialized) data, and by tests to verify coverage/overlap
//! invariants of ParColl's file-area partitioning.

/// Ordered set of disjoint, non-empty half-open ranges `[start, end)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    // Sorted by start; maintained disjoint and non-adjacent (adjacent
    // ranges are coalesced).
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// Empty set.
    pub fn new() -> Self {
        RangeSet::default()
    }

    /// Number of disjoint ranges.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True if no bytes are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total bytes covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// The ranges, sorted and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Insert `[start, end)`, merging with neighbours.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        // Find insertion window: all ranges overlapping or adjacent.
        let lo = self.ranges.partition_point(|&(_, e)| e < start);
        let mut hi = lo;
        let mut new_start = start;
        let mut new_end = end;
        while hi < self.ranges.len() && self.ranges[hi].0 <= end {
            new_start = new_start.min(self.ranges[hi].0);
            new_end = new_end.max(self.ranges[hi].1);
            hi += 1;
        }
        self.ranges.splice(lo..hi, std::iter::once((new_start, new_end)));
    }

    /// Remove `[start, end)`, splitting ranges that straddle the cut.
    pub fn remove(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut out = Vec::with_capacity(self.ranges.len() + 1);
        for &(s, e) in &self.ranges {
            if e <= start || s >= end {
                out.push((s, e));
            } else {
                if s < start {
                    out.push((s, start));
                }
                if e > end {
                    out.push((end, e));
                }
            }
        }
        self.ranges = out;
    }

    /// True if any byte of `[start, end)` is covered.
    pub fn intersects(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return false;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        i < self.ranges.len() && self.ranges[i].0 < end
    }

    /// True if every byte of `[start, end)` is covered.
    pub fn contains_range(&self, start: u64, end: u64) -> bool {
        if start >= end {
            return true;
        }
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        i < self.ranges.len() && self.ranges[i].0 <= start && self.ranges[i].1 >= end
    }

    /// Bytes of `[start, end)` that are covered.
    pub fn covered_within(&self, start: u64, end: u64) -> u64 {
        self.ranges
            .iter()
            .map(|&(s, e)| {
                let lo = s.max(start);
                let hi = e.min(end);
                hi.saturating_sub(lo)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_disjoint_keeps_order() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(0, 5);
        r.insert(30, 40);
        assert_eq!(r.ranges(), &[(0, 5), (10, 20), (30, 40)]);
        assert_eq!(r.covered(), 25);
    }

    #[test]
    fn insert_merges_overlaps_and_adjacency() {
        let mut r = RangeSet::new();
        r.insert(0, 10);
        r.insert(20, 30);
        r.insert(10, 20); // bridges both
        assert_eq!(r.ranges(), &[(0, 30)]);
        r.insert(25, 50);
        assert_eq!(r.ranges(), &[(0, 50)]);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_insert_is_noop() {
        let mut r = RangeSet::new();
        r.insert(5, 5);
        assert!(r.is_empty());
    }

    #[test]
    fn remove_splits_straddling_range() {
        let mut r = RangeSet::new();
        r.insert(0, 100);
        r.remove(40, 60);
        assert_eq!(r.ranges(), &[(0, 40), (60, 100)]);
        r.remove(0, 10);
        assert_eq!(r.ranges(), &[(10, 40), (60, 100)]);
        r.remove(30, 70);
        assert_eq!(r.ranges(), &[(10, 30), (70, 100)]);
    }

    #[test]
    fn remove_uncovered_is_noop() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.remove(0, 10);
        r.remove(20, 30);
        assert_eq!(r.ranges(), &[(10, 20)]);
    }

    #[test]
    fn intersects_and_contains() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert!(r.intersects(15, 35));
        assert!(r.intersects(19, 20));
        assert!(!r.intersects(20, 30));
        assert!(!r.intersects(0, 10));
        assert!(r.contains_range(10, 20));
        assert!(r.contains_range(12, 18));
        assert!(!r.contains_range(10, 21));
        assert!(!r.contains_range(15, 35));
        assert!(r.contains_range(5, 5)); // empty range trivially contained
    }

    #[test]
    fn covered_within_partial_overlaps() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.covered_within(0, 100), 20);
        assert_eq!(r.covered_within(15, 35), 10);
        assert_eq!(r.covered_within(20, 30), 0);
    }
}
