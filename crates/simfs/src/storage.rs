//! Sparse page store for file contents.
//!
//! Real data is stored in 64 KiB pages allocated on first touch; holes
//! read back as zeros (POSIX sparse-file semantics). Synthetic writes mark
//! their extents in a [`RangeSet`] instead of materializing bytes; a read
//! overlapping a synthetic extent yields a synthetic buffer of the right
//! size, because its contents are by construction unknowable.

use crate::rangeset::RangeSet;
use simnet::IoBuffer;
use std::collections::BTreeMap;

/// Page granularity of the backing store.
pub const PAGE_SIZE: u64 = 64 * 1024;

/// Sparse contents of one file.
#[derive(Debug, Default)]
pub struct Storage {
    pages: BTreeMap<u64, Box<[u8]>>,
    synthetic: RangeSet,
    size: u64,
}

impl Storage {
    /// Empty file.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Current file size (highest byte written + 1, or truncated size).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes of memory held by materialized pages (diagnostics).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// The extents currently holding synthetic data.
    pub fn synthetic_ranges(&self) -> &RangeSet {
        &self.synthetic
    }

    /// Write `data` at `offset`.
    pub fn write(&mut self, offset: u64, data: &IoBuffer) {
        let len = data.len() as u64;
        if len == 0 {
            return;
        }
        let end = offset + len;
        self.size = self.size.max(end);
        match data.as_slice() {
            Some(bytes) => {
                self.synthetic.remove(offset, end);
                self.write_pages(offset, bytes);
            }
            None => {
                // Unmaterialized write: drop any real bytes it overwrites
                // so stale data cannot resurface, then mark the extent.
                self.zero_pages(offset, end);
                self.synthetic.insert(offset, end);
            }
        }
    }

    /// Read `len` bytes at `offset`. Returns a synthetic buffer if the
    /// range intersects any synthetic extent; otherwise real bytes with
    /// zeros in holes. Reading past EOF zero-fills, as the MPI-IO layer
    /// guarantees it never exposes past-EOF reads to applications.
    pub fn read(&self, offset: u64, len: usize) -> IoBuffer {
        if len == 0 {
            return IoBuffer::empty();
        }
        let end = offset + len as u64;
        if self.synthetic.intersects(offset, end) {
            return IoBuffer::synthetic(len);
        }
        let mut out = vec![0u8; len];
        let first_page = offset / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        for (&page_idx, page) in self.pages.range(first_page..=last_page) {
            let page_start = page_idx * PAGE_SIZE;
            let copy_start = page_start.max(offset);
            let copy_end = (page_start + PAGE_SIZE).min(end);
            if copy_start >= copy_end {
                continue;
            }
            let src = &page[(copy_start - page_start) as usize..(copy_end - page_start) as usize];
            out[(copy_start - offset) as usize..(copy_end - offset) as usize]
                .copy_from_slice(src);
        }
        IoBuffer::from_vec(out)
    }

    /// Truncate to `size` bytes, discarding later content.
    pub fn truncate(&mut self, size: u64) {
        self.size = size;
        self.synthetic.remove(size, u64::MAX);
        let first_dead = size.div_ceil(PAGE_SIZE);
        self.pages.retain(|&idx, _| idx < first_dead);
        // Zero the tail of the boundary page.
        if !size.is_multiple_of(PAGE_SIZE) {
            if let Some(page) = self.pages.get_mut(&(size / PAGE_SIZE)) {
                for b in &mut page[(size % PAGE_SIZE) as usize..] {
                    *b = 0;
                }
            }
        }
    }

    fn write_pages(&mut self, offset: u64, bytes: &[u8]) {
        let end = offset + bytes.len() as u64;
        let mut pos = offset;
        while pos < end {
            let page_idx = pos / PAGE_SIZE;
            let page_start = page_idx * PAGE_SIZE;
            let copy_end = (page_start + PAGE_SIZE).min(end);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            let src = &bytes[(pos - offset) as usize..(copy_end - offset) as usize];
            page[(pos - page_start) as usize..(copy_end - page_start) as usize]
                .copy_from_slice(src);
            pos = copy_end;
        }
    }

    fn zero_pages(&mut self, start: u64, end: u64) {
        let first_page = start / PAGE_SIZE;
        let last_page = if end == 0 { 0 } else { (end - 1) / PAGE_SIZE };
        for (&page_idx, page) in self.pages.range_mut(first_page..=last_page) {
            let page_start = page_idx * PAGE_SIZE;
            let z_start = page_start.max(start);
            let z_end = (page_start + PAGE_SIZE).min(end);
            if z_start < z_end {
                for b in &mut page[(z_start - page_start) as usize..(z_end - page_start) as usize] {
                    *b = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut s = Storage::new();
        s.write(100, &IoBuffer::from_slice(b"hello world"));
        let got = s.read(100, 11);
        assert_eq!(got.as_slice().unwrap(), b"hello world");
        assert_eq!(s.size(), 111);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut s = Storage::new();
        s.write(10, &IoBuffer::from_slice(&[1, 2, 3]));
        let got = s.read(8, 7);
        assert_eq!(got.as_slice().unwrap(), &[0, 0, 1, 2, 3, 0, 0]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = Storage::new();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let off = PAGE_SIZE - 123;
        s.write(off, &IoBuffer::from_slice(&data));
        let got = s.read(off, data.len());
        assert_eq!(got.as_slice().unwrap(), data.as_slice());
        assert!(s.resident_bytes() >= data.len() as u64);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[1; 10]));
        s.write(3, &IoBuffer::from_slice(&[9; 4]));
        assert_eq!(
            s.read(0, 10).as_slice().unwrap(),
            &[1, 1, 1, 9, 9, 9, 9, 1, 1, 1]
        );
    }

    #[test]
    fn synthetic_write_marks_extent_without_memory() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::synthetic(1 << 40)); // a terabyte
        assert_eq!(s.size(), 1 << 40);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.read(123, 4096), IoBuffer::synthetic(4096));
    }

    #[test]
    fn read_overlapping_synthetic_is_synthetic() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[1; 100]));
        s.write(1000, &IoBuffer::synthetic(100));
        assert!(s.read(0, 100).is_real());
        assert!(!s.read(500, 1000).is_real());
        assert!(s.read(0, 500).is_real()); // clear of the synthetic extent
    }

    #[test]
    fn real_overwrite_clears_synthetic_marking() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::synthetic(100));
        s.write(0, &IoBuffer::from_slice(&[7; 100]));
        let got = s.read(0, 100);
        assert_eq!(got.as_slice().unwrap(), &[7; 100]);
    }

    #[test]
    fn synthetic_overwrite_hides_real_bytes() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[7; 100]));
        s.write(50, &IoBuffer::synthetic(10));
        assert!(!s.read(0, 100).is_real());
        // But the untouched prefix stays readable.
        assert_eq!(s.read(0, 50).as_slice().unwrap(), &[7; 50]);
    }

    #[test]
    fn truncate_discards_tail() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[5; 300]));
        s.truncate(100);
        assert_eq!(s.size(), 100);
        // Re-extend: bytes past the truncation point read as zero.
        s.write(200, &IoBuffer::from_slice(&[1]));
        assert_eq!(s.read(100, 100).as_slice().unwrap(), &[0; 100]);
    }

    #[test]
    fn empty_write_and_read() {
        let mut s = Storage::new();
        s.write(10, &IoBuffer::empty());
        assert_eq!(s.size(), 0);
        assert!(s.read(0, 0).is_empty());
    }

    #[test]
    fn large_offsets_work() {
        let mut s = Storage::new();
        let off = 486 * (1u64 << 30); // 486 GB, the Flash checkpoint size
        s.write(off, &IoBuffer::from_slice(&[42]));
        assert_eq!(s.read(off, 1).as_slice().unwrap(), &[42]);
        assert_eq!(s.size(), off + 1);
    }
}
