//! Sparse page store for file contents.
//!
//! Real data is stored in 64 KiB pages allocated on first touch; holes
//! read back as zeros (POSIX sparse-file semantics). Synthetic writes mark
//! their extents in a [`RangeSet`] instead of materializing bytes; a read
//! overlapping a synthetic extent yields a synthetic buffer of the right
//! size, because its contents are by construction unknowable.
//!
//! ## Streaming file images
//!
//! Verify-mode paper-scale runs materialize multi-gigabyte file images.
//! With a spill limit armed ([`set_spill_limit`] or `SIMFS_SPILL_MB`),
//! a file image keeps at most that many bytes of pages resident: once a
//! write pushes past the limit, the lowest-offset resident pages (the
//! coldest under the overwhelmingly sequential collective-I/O pattern)
//! are written through to an unlinked per-file temp file and dropped
//! from memory. Reads pull bytes straight off the spill file, so every
//! read stays byte-identical to the fully-resident store — spilling is
//! invisible except through [`Storage::spilled_bytes`]. Purely host-side
//! memory management; virtual time never observes it.

use crate::rangeset::RangeSet;
use simnet::IoBuffer;
use std::collections::BTreeMap;
use std::fs::File;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page granularity of the backing store.
pub const PAGE_SIZE: u64 = 64 * 1024;

/// Unresolved sentinel for [`SPILL_LIMIT`] (resolve the env var lazily).
const LIMIT_UNSET: u64 = u64::MAX;

/// Process-wide resident-bytes cap per file image; 0 = spilling disabled.
static SPILL_LIMIT: AtomicU64 = AtomicU64::new(LIMIT_UNSET);

/// Cap the resident page bytes of every file image at `bytes` (rounded
/// up to whole pages internally); `0` disables spilling. Overrides the
/// `SIMFS_SPILL_MB` environment variable.
pub fn set_spill_limit(bytes: u64) {
    SPILL_LIMIT.store(bytes, Ordering::Relaxed);
}

/// The per-file-image resident cap in force: the value of
/// [`set_spill_limit`], else `SIMFS_SPILL_MB` megabytes, else 0
/// (spilling disabled).
pub fn spill_limit() -> u64 {
    let v = SPILL_LIMIT.load(Ordering::Relaxed);
    if v != LIMIT_UNSET {
        return v;
    }
    let resolved = std::env::var("SIMFS_SPILL_MB")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .map(|mb| mb.saturating_mul(1 << 20))
        .unwrap_or(0);
    // Racing resolvers compute the same value; first store wins is fine.
    SPILL_LIMIT.store(resolved, Ordering::Relaxed);
    resolved
}

/// Disk backing for spilled pages: an unlinked temp file holding fixed
/// [`PAGE_SIZE`] slots. Created on first eviction, reclaimed by the OS
/// when the `Storage` drops (the path is unlinked immediately).
#[derive(Debug)]
struct SpillFile {
    file: File,
    slots: u64,
}

impl SpillFile {
    fn create() -> SpillFile {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "simfs-spill-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("creating spill file {}: {e}", path.display()));
        // Unlink right away: the fd keeps the blocks alive, the name
        // never outlives the process even on abort.
        let _ = std::fs::remove_file(&path);
        SpillFile { file, slots: 0 }
    }

    fn write_page(&self, slot: u64, page: &[u8]) {
        pwrite(&self.file, page, slot * PAGE_SIZE);
    }

    fn read_page_into(&self, slot: u64, out: &mut [u8]) {
        pread(&self.file, out, slot * PAGE_SIZE);
    }
}

#[cfg(unix)]
fn pwrite(file: &File, buf: &[u8], off: u64) {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, off).expect("spill write");
}

#[cfg(unix)]
fn pread(file: &File, buf: &mut [u8], off: u64) {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, off).expect("spill read");
}

#[cfg(windows)]
fn pwrite(file: &File, mut buf: &[u8], mut off: u64) {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_write(buf, off).expect("spill write");
        buf = &buf[n..];
        off += n as u64;
    }
}

#[cfg(windows)]
fn pread(file: &File, mut buf: &mut [u8], mut off: u64) {
    use std::os::windows::fs::FileExt;
    while !buf.is_empty() {
        let n = file.seek_read(buf, off).expect("spill read");
        assert!(n > 0, "spill read hit EOF");
        buf = &mut buf[n..];
        off += n as u64;
    }
}

/// Sparse contents of one file.
#[derive(Debug, Default)]
pub struct Storage {
    pages: BTreeMap<u64, Box<[u8]>>,
    /// Pages evicted to disk: page index → slot in the spill file.
    spilled: BTreeMap<u64, u64>,
    spill: Option<SpillFile>,
    /// Recycled spill-file slots (pages pulled back in or truncated).
    free_slots: Vec<u64>,
    synthetic: RangeSet,
    size: u64,
}

impl Storage {
    /// Empty file.
    pub fn new() -> Self {
        Storage::default()
    }

    /// Current file size (highest byte written + 1, or truncated size).
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Bytes of memory held by materialized pages (diagnostics).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Bytes of real data currently parked in the spill file.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled.len() as u64 * PAGE_SIZE
    }

    /// The extents currently holding synthetic data.
    pub fn synthetic_ranges(&self) -> &RangeSet {
        &self.synthetic
    }

    /// Write `data` at `offset`.
    pub fn write(&mut self, offset: u64, data: &IoBuffer) {
        let len = data.len() as u64;
        if len == 0 {
            return;
        }
        let end = offset + len;
        self.size = self.size.max(end);
        match data.as_slice() {
            Some(bytes) => {
                self.synthetic.remove(offset, end);
                self.write_pages(offset, bytes);
            }
            None => {
                // Unmaterialized write: drop any real bytes it overwrites
                // so stale data cannot resurface, then mark the extent.
                self.zero_pages(offset, end);
                self.synthetic.insert(offset, end);
            }
        }
    }

    /// Read `len` bytes at `offset`. Returns a synthetic buffer if the
    /// range intersects any synthetic extent; otherwise real bytes with
    /// zeros in holes. Reading past EOF zero-fills, as the MPI-IO layer
    /// guarantees it never exposes past-EOF reads to applications.
    pub fn read(&self, offset: u64, len: usize) -> IoBuffer {
        if len == 0 {
            return IoBuffer::empty();
        }
        let end = offset + len as u64;
        if self.synthetic.intersects(offset, end) {
            return IoBuffer::synthetic(len);
        }
        let mut out = vec![0u8; len];
        let first_page = offset / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        for (&page_idx, page) in self.pages.range(first_page..=last_page) {
            let page_start = page_idx * PAGE_SIZE;
            let copy_start = page_start.max(offset);
            let copy_end = (page_start + PAGE_SIZE).min(end);
            if copy_start >= copy_end {
                continue;
            }
            let src = &page[(copy_start - page_start) as usize..(copy_end - page_start) as usize];
            out[(copy_start - offset) as usize..(copy_end - offset) as usize]
                .copy_from_slice(src);
        }
        // Spilled pages stream straight off the spill file into the
        // destination slice — byte-identical to the resident path,
        // without pulling whole pages back into the cache.
        if !self.spilled.is_empty() {
            let spill = self.spill.as_ref().expect("spilled pages imply a file");
            for (&page_idx, &slot) in self.spilled.range(first_page..=last_page) {
                let page_start = page_idx * PAGE_SIZE;
                let copy_start = page_start.max(offset);
                let copy_end = (page_start + PAGE_SIZE).min(end);
                if copy_start >= copy_end {
                    continue;
                }
                let n = (copy_end - copy_start) as usize;
                let dst = &mut out[(copy_start - offset) as usize..][..n];
                pread(&spill.file, dst, slot * PAGE_SIZE + (copy_start - page_start));
            }
        }
        IoBuffer::from_vec(out)
    }

    /// Checksum of `[offset, offset+len)` exactly as [`Storage::read`]
    /// would return it — zeros in holes and past EOF — but without
    /// materializing the window: resident pages are fed to the hasher in
    /// place, holes from a static zero block, and spilled pages through
    /// one reused stack-side buffer. `None` when the range intersects a
    /// synthetic extent (modeled bytes have nothing to hash).
    pub fn hash_range(&self, offset: u64, len: usize) -> Option<u64> {
        use simnet::cksum::Fnv1a;
        static ZEROS: [u8; PAGE_SIZE as usize] = [0u8; PAGE_SIZE as usize];
        if len == 0 {
            return Some(Fnv1a::new().digest());
        }
        let end = offset + len as u64;
        if self.synthetic.intersects(offset, end) {
            return None;
        }
        let mut h = Fnv1a::new();
        let mut spill_buf: Option<Box<[u8]>> = None;
        for page_idx in offset / PAGE_SIZE..=(end - 1) / PAGE_SIZE {
            let page_start = page_idx * PAGE_SIZE;
            let lo = (page_start.max(offset) - page_start) as usize;
            let hi = ((page_start + PAGE_SIZE).min(end) - page_start) as usize;
            if let Some(page) = self.pages.get(&page_idx) {
                h.update(&page[lo..hi]);
            } else if let Some(&slot) = self.spilled.get(&page_idx) {
                let spill = self.spill.as_ref().expect("spilled pages imply a file");
                let buf = spill_buf
                    .get_or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                spill.read_page_into(slot, buf);
                h.update(&buf[lo..hi]);
            } else {
                h.update(&ZEROS[lo..hi]);
            }
        }
        Some(h.digest())
    }

    /// Truncate to `size` bytes, discarding later content.
    pub fn truncate(&mut self, size: u64) {
        self.size = size;
        self.synthetic.remove(size, u64::MAX);
        let first_dead = size.div_ceil(PAGE_SIZE);
        self.pages.retain(|&idx, _| idx < first_dead);
        let dead_slots: Vec<u64> = self
            .spilled
            .range(first_dead..)
            .map(|(_, &s)| s)
            .collect();
        self.free_slots.extend(dead_slots);
        self.spilled.retain(|&idx, _| idx < first_dead);
        // Zero the tail of the boundary page.
        if !size.is_multiple_of(PAGE_SIZE) {
            let boundary = size / PAGE_SIZE;
            self.unspill(boundary);
            if let Some(page) = self.pages.get_mut(&boundary) {
                for b in &mut page[(size % PAGE_SIZE) as usize..] {
                    *b = 0;
                }
                self.maybe_spill(u64::MAX);
            }
        }
    }

    fn write_pages(&mut self, offset: u64, bytes: &[u8]) {
        let end = offset + bytes.len() as u64;
        let mut pos = offset;
        while pos < end {
            let page_idx = pos / PAGE_SIZE;
            let page_start = page_idx * PAGE_SIZE;
            let copy_end = (page_start + PAGE_SIZE).min(end);
            self.unspill(page_idx);
            let page = self
                .pages
                .entry(page_idx)
                .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
            let src = &bytes[(pos - offset) as usize..(copy_end - offset) as usize];
            page[(pos - page_start) as usize..(copy_end - page_start) as usize]
                .copy_from_slice(src);
            self.maybe_spill(page_idx);
            pos = copy_end;
        }
    }

    fn zero_pages(&mut self, start: u64, end: u64) {
        let first_page = start / PAGE_SIZE;
        let last_page = if end == 0 { 0 } else { (end - 1) / PAGE_SIZE };
        for (&page_idx, page) in self.pages.range_mut(first_page..=last_page) {
            let page_start = page_idx * PAGE_SIZE;
            let z_start = page_start.max(start);
            let z_end = (page_start + PAGE_SIZE).min(end);
            if z_start < z_end {
                for b in &mut page[(z_start - page_start) as usize..(z_end - page_start) as usize] {
                    *b = 0;
                }
            }
        }
        // Spilled pages: a fully-covered page becomes all-zero, which is
        // indistinguishable from a hole — drop it. A partially-covered
        // page comes back resident for in-place zeroing.
        let in_range: Vec<u64> = self
            .spilled
            .range(first_page..=last_page)
            .map(|(&i, _)| i)
            .collect();
        for page_idx in in_range {
            let page_start = page_idx * PAGE_SIZE;
            if start <= page_start && page_start + PAGE_SIZE <= end {
                let slot = self.spilled.remove(&page_idx).expect("listed above");
                self.free_slots.push(slot);
            } else {
                self.unspill(page_idx);
                let page = self.pages.get_mut(&page_idx).expect("just unspilled");
                let z_start = page_start.max(start);
                let z_end = (page_start + PAGE_SIZE).min(end);
                for b in &mut page[(z_start - page_start) as usize..(z_end - page_start) as usize] {
                    *b = 0;
                }
                self.maybe_spill(page_idx);
            }
        }
    }

    /// Pull a spilled page back into the resident cache, recycling its
    /// slot. No-op if the page is not spilled.
    fn unspill(&mut self, page_idx: u64) {
        let Some(slot) = self.spilled.remove(&page_idx) else {
            return;
        };
        let spill = self.spill.as_ref().expect("spilled pages imply a file");
        let mut page = vec![0u8; PAGE_SIZE as usize].into_boxed_slice();
        spill.read_page_into(slot, &mut page);
        self.free_slots.push(slot);
        self.pages.insert(page_idx, page);
    }

    /// Enforce the resident cap: while over the limit, write the
    /// lowest-offset resident page (other than the just-touched `keep`)
    /// through to the spill file and drop it. Eviction order is
    /// deterministic, so the spill file contents are a pure function of
    /// the write sequence.
    fn maybe_spill(&mut self, keep: u64) {
        let limit = spill_limit();
        if limit == 0 {
            return;
        }
        let max_pages = (limit.div_ceil(PAGE_SIZE)).max(1) as usize;
        while self.pages.len() > max_pages {
            let Some(&victim) = self.pages.keys().find(|&&i| i != keep) else {
                return;
            };
            let page = self.pages.remove(&victim).expect("key just observed");
            let slot = self.free_slots.pop().unwrap_or_else(|| {
                let spill = self.spill.get_or_insert_with(SpillFile::create);
                let s = spill.slots;
                spill.slots += 1;
                s
            });
            self.spill
                .as_ref()
                .expect("slot allocation created the file")
                .write_page(slot, &page);
            self.spilled.insert(victim, slot);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut s = Storage::new();
        s.write(100, &IoBuffer::from_slice(b"hello world"));
        let got = s.read(100, 11);
        assert_eq!(got.as_slice().unwrap(), b"hello world");
        assert_eq!(s.size(), 111);
    }

    #[test]
    fn holes_read_as_zeros() {
        let mut s = Storage::new();
        s.write(10, &IoBuffer::from_slice(&[1, 2, 3]));
        let got = s.read(8, 7);
        assert_eq!(got.as_slice().unwrap(), &[0, 0, 1, 2, 3, 0, 0]);
    }

    #[test]
    fn cross_page_write_and_read() {
        let mut s = Storage::new();
        let data: Vec<u8> = (0..200_000).map(|i| (i % 251) as u8).collect();
        let off = PAGE_SIZE - 123;
        s.write(off, &IoBuffer::from_slice(&data));
        let got = s.read(off, data.len());
        assert_eq!(got.as_slice().unwrap(), data.as_slice());
        // Pages live in memory or the spill file, never lost.
        assert!(s.resident_bytes() + s.spilled_bytes() >= data.len() as u64);
    }

    #[test]
    fn overwrite_replaces_bytes() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[1; 10]));
        s.write(3, &IoBuffer::from_slice(&[9; 4]));
        assert_eq!(
            s.read(0, 10).as_slice().unwrap(),
            &[1, 1, 1, 9, 9, 9, 9, 1, 1, 1]
        );
    }

    #[test]
    fn synthetic_write_marks_extent_without_memory() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::synthetic(1 << 40)); // a terabyte
        assert_eq!(s.size(), 1 << 40);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.read(123, 4096), IoBuffer::synthetic(4096));
    }

    #[test]
    fn read_overlapping_synthetic_is_synthetic() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[1; 100]));
        s.write(1000, &IoBuffer::synthetic(100));
        assert!(s.read(0, 100).is_real());
        assert!(!s.read(500, 1000).is_real());
        assert!(s.read(0, 500).is_real()); // clear of the synthetic extent
    }

    #[test]
    fn real_overwrite_clears_synthetic_marking() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::synthetic(100));
        s.write(0, &IoBuffer::from_slice(&[7; 100]));
        let got = s.read(0, 100);
        assert_eq!(got.as_slice().unwrap(), &[7; 100]);
    }

    #[test]
    fn synthetic_overwrite_hides_real_bytes() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[7; 100]));
        s.write(50, &IoBuffer::synthetic(10));
        assert!(!s.read(0, 100).is_real());
        // But the untouched prefix stays readable.
        assert_eq!(s.read(0, 50).as_slice().unwrap(), &[7; 50]);
    }

    #[test]
    fn truncate_discards_tail() {
        let mut s = Storage::new();
        s.write(0, &IoBuffer::from_slice(&[5; 300]));
        s.truncate(100);
        assert_eq!(s.size(), 100);
        // Re-extend: bytes past the truncation point read as zero.
        s.write(200, &IoBuffer::from_slice(&[1]));
        assert_eq!(s.read(100, 100).as_slice().unwrap(), &[0; 100]);
    }

    #[test]
    fn empty_write_and_read() {
        let mut s = Storage::new();
        s.write(10, &IoBuffer::empty());
        assert_eq!(s.size(), 0);
        assert!(s.read(0, 0).is_empty());
    }

    /// The spill limit is process-global: tests that set it serialize on
    /// this lock so a concurrent test never observes a foreign cap.
    fn spill_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(Default::default)
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Restores the process-wide spill limit on scope exit so parallel
    /// tests are never left running under a stale cap.
    struct LimitGuard;
    impl Drop for LimitGuard {
        fn drop(&mut self) {
            set_spill_limit(0);
        }
    }

    #[test]
    fn spill_bounds_residency_and_reads_stay_byte_identical() {
        let _lock = spill_lock();
        let _g = LimitGuard;
        set_spill_limit(4 * PAGE_SIZE);
        let mut s = Storage::new();
        let n = 32 * PAGE_SIZE as usize + 777;
        let data: Vec<u8> = (0..n).map(|i| (i.wrapping_mul(31) % 251) as u8).collect();
        s.write(123, &IoBuffer::from_slice(&data));
        assert!(
            s.resident_bytes() <= 4 * PAGE_SIZE,
            "residency {} over the 4-page cap",
            s.resident_bytes()
        );
        assert!(s.spilled_bytes() >= 28 * PAGE_SIZE);

        // Full image and assorted subranges crossing the
        // resident/spilled boundary read back exactly.
        let got = s.read(123, n);
        assert_eq!(got.as_slice().unwrap(), &data[..]);
        for (off, len) in [
            (0u64, 100usize),
            (PAGE_SIZE - 7, 20),
            (3 * PAGE_SIZE - 10, 2 * PAGE_SIZE as usize),
            (123 + n as u64 - 50, 50),
        ] {
            let got = s.read(off, len);
            let expect: Vec<u8> = (off..off + len as u64)
                .map(|p| {
                    if p >= 123 && p < 123 + n as u64 {
                        data[(p - 123) as usize]
                    } else {
                        0
                    }
                })
                .collect();
            assert_eq!(got.as_slice().unwrap(), &expect[..], "read({off}, {len})");
        }

        // Overwriting a spilled range pulls the pages back, applies the
        // write, and re-evicts under the cap.
        s.write(2 * PAGE_SIZE + 5, &IoBuffer::from_slice(&[0xAB; 100]));
        assert!(s.resident_bytes() <= 4 * PAGE_SIZE);
        let got = s.read(2 * PAGE_SIZE, 200);
        let sl = got.as_slice().unwrap();
        assert_eq!(&sl[5..105], &[0xAB; 100]);
        assert_eq!(sl[0], data[(2 * PAGE_SIZE - 123) as usize]);

        // Truncation drops spilled tail pages and zero-fills re-extends.
        s.truncate(3 * PAGE_SIZE + 50);
        assert_eq!(s.size(), 3 * PAGE_SIZE + 50);
        assert!(s.spilled_bytes() <= 4 * PAGE_SIZE);
        let got = s.read(3 * PAGE_SIZE, 100);
        let sl = got.as_slice().unwrap();
        assert_eq!(&sl[50..], &[0u8; 50]);
    }

    #[test]
    fn synthetic_overwrite_clears_spilled_pages_too() {
        let _lock = spill_lock();
        let _g = LimitGuard;
        set_spill_limit(2 * PAGE_SIZE);
        let mut s = Storage::new();
        let data: Vec<u8> = (0..8 * PAGE_SIZE as usize).map(|i| (i % 250 + 1) as u8).collect();
        s.write(0, &IoBuffer::from_slice(&data));
        assert!(s.spilled_bytes() >= 6 * PAGE_SIZE);
        // Synthetic overwrite spanning spilled pages: covered pages must
        // not resurface stale real bytes.
        s.write(PAGE_SIZE + 10, &IoBuffer::synthetic((5 * PAGE_SIZE) as usize));
        assert!(!s.read(PAGE_SIZE + 10, 100).is_real());
        // The untouched prefix is still the original data.
        let got = s.read(0, 100);
        assert_eq!(got.as_slice().unwrap(), &data[..100]);
        // And the bytes just past the synthetic extent survive.
        let tail_off = PAGE_SIZE + 10 + 5 * PAGE_SIZE;
        let got = s.read(tail_off, 100);
        assert_eq!(
            got.as_slice().unwrap(),
            &data[tail_off as usize..tail_off as usize + 100]
        );
    }

    /// The process's peak resident set ("VmHWM"), in bytes.
    #[cfg(target_os = "linux")]
    fn peak_rss_bytes() -> u64 {
        let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
        let line = status
            .lines()
            .find(|l| l.starts_with("VmHWM:"))
            .expect("VmHWM line");
        let kb: u64 = line
            .split_whitespace()
            .nth(1)
            .expect("VmHWM value")
            .parse()
            .expect("VmHWM number");
        kb * 1024
    }

    #[test]
    fn spill_keeps_streaming_image_out_of_process_rss() {
        let _lock = spill_lock();
        let _g = LimitGuard;
        const LIMIT: u64 = 8 << 20; // 8 MiB resident cap
        const CHUNK: usize = 1 << 20;
        const TOTAL: u64 = 256 << 20; // image 32× the cap
        set_spill_limit(LIMIT);
        #[cfg(target_os = "linux")]
        let hwm_before = peak_rss_bytes();

        // Stream a 256 MiB real-data image through one reused chunk
        // buffer: byte at absolute position p is (p * 131) % 251.
        let mut s = Storage::new();
        let mut chunk = vec![0u8; CHUNK];
        let mut off = 0u64;
        while off < TOTAL {
            for (i, b) in chunk.iter_mut().enumerate() {
                *b = ((off as usize + i).wrapping_mul(131) % 251) as u8;
            }
            s.write(off, &IoBuffer::from_slice(&chunk));
            off += CHUNK as u64;
        }
        assert!(
            s.resident_bytes() <= LIMIT,
            "residency {} over the {} cap",
            s.resident_bytes(),
            LIMIT
        );
        assert_eq!(s.resident_bytes() + s.spilled_bytes(), TOTAL, "no page lost");

        // Spot-check reads deep in the spilled region.
        for probe in [0u64, 777 * PAGE_SIZE + 3, TOTAL - 100] {
            let got = s.read(probe, 100);
            let expect: Vec<u8> = (probe..probe + 100)
                .map(|p| ((p as usize).wrapping_mul(131) % 251) as u8)
                .collect();
            assert_eq!(got.as_slice().unwrap(), &expect[..], "read at {probe}");
        }

        // The streaming gate itself: the 256 MiB image must not have
        // passed through process memory. Peak RSS may only have grown by
        // the cap plus working buffers — far under the image size.
        #[cfg(target_os = "linux")]
        {
            let grew = peak_rss_bytes().saturating_sub(hwm_before);
            assert!(
                grew < 64 << 20,
                "peak RSS grew {} bytes while streaming a {} byte image",
                grew,
                TOTAL
            );
        }
    }

    #[test]
    fn large_offsets_work() {
        let mut s = Storage::new();
        let off = 486 * (1u64 << 30); // 486 GB, the Flash checkpoint size
        s.write(off, &IoBuffer::from_slice(&[42]));
        assert_eq!(s.read(off, 1).as_slice().unwrap(), &[42]);
        assert_eq!(s.size(), off + 1);
    }
}
