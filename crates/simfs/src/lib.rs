//! # simfs — a Lustre-like parallel file system simulator
//!
//! The paper's evaluation runs on a Jaguar Lustre file system: 72 object
//! storage targets (OSTs) behind 4 Gb/s Fibre Channel, files striped over
//! 64 targets with a 4 MB stripe size (paper §5). This crate reproduces
//! the properties of that system the evaluation depends on:
//!
//! * **Striping** — a file's byte range is round-robined over its stripe
//!   set in `stripe_size` units ([`StripeLayout`]); a request touching `k`
//!   stripes decomposes into `k` per-OST chunk requests.
//! * **Per-OST contention** — each [`ost::Ost`] is a serial resource with a
//!   virtual-time queue: a request starts at `max(arrival, ost_free)` and
//!   occupies the target for `per-request overhead + bytes / bandwidth`,
//!   so concurrent clients hitting one target serialize while different
//!   targets proceed in parallel.
//! * **Service-time jitter** — optional, seeded multiplicative noise on
//!   OST service times ([`simnet::SplitMix64`]). Lock-step collective
//!   rounds must wait for the *slowest* server each round; jitter is what
//!   separates `max` from `mean` and is a principal amplifier of the
//!   collective wall at scale.
//! * **Real data** — writes carry [`simnet::IoBuffer`]; real buffers are
//!   stored in sparse 64 KiB pages and read back byte-exact, so the whole
//!   MPI-IO stack is correctness-testable. Synthetic buffers mark extents
//!   and cost virtual time without consuming memory, enabling the paper's
//!   full-size runs (a 486 GB Flash-IO checkpoint) in a laptop process.
//!
//! Metadata operations go through a single [`fs::FileSystem`]-internal MDS
//! with a per-client open cost, matching Lustre's single-MDS design of the
//! era.

#![warn(missing_docs)]

pub mod config;
pub mod fs;
pub mod integrity;
pub mod layout;
pub mod ost;
pub mod rangeset;
pub mod storage;

pub use config::FsConfig;
pub use fs::{FileHandle, FileSystem, FsStats};
pub use integrity::{IntegrityError, ScrubReport};
pub use layout::StripeLayout;
pub use rangeset::RangeSet;
pub use storage::{set_spill_limit, spill_limit};
