//! Property-based tests for the file system substrate.

use proptest::prelude::*;
use simfs::layout::StripeLayout;
use simfs::ost::Ost;
use simfs::rangeset::RangeSet;
use simfs::storage::Storage;
use simnet::{IoBuffer, SimTime};

proptest! {
    /// OST queueing invariants under arbitrary request sequences:
    /// completions are causal (>= arrival), the backlog clock never goes
    /// backwards, and total busy time equals the sum of services
    /// (work conservation), independent of arrival pattern.
    #[test]
    fn ost_queueing_invariants(reqs in proptest::collection::vec(
        (0u64..1000, 1u64..1_000_000, 1u64..4), 1..40)) {
        let ost = Ost::new(42);
        let mut arrival = SimTime::ZERO;
        let mut prev_free = SimTime::ZERO;
        for (gap_ms, bytes, chunks) in reqs {
            arrival += SimTime::millis(gap_ms as f64);
            let done = ost.serve(
                arrival, bytes, chunks,
                SimTime::micros(100.0), 1e9,
                0.0, 0.001, 0.0, 1.0, None, SimTime::millis(5.0),
            );
            prop_assert!(done > arrival, "completion must follow arrival");
            let free = ost.next_free();
            prop_assert!(free >= prev_free, "backlog clock must be monotone");
            prop_assert!(free >= done - SimTime::millis(5.0) - SimTime::nanos(1.0));
            prev_free = free;
        }
        let st = ost.stats();
        // Busy time bounded below by pure service of all bytes.
        prop_assert!(st.busy.as_secs() >= st.bytes as f64 / 1e9 - 1e-9);
    }
}

/// Reference implementation of a range set: a boolean vector.
fn apply_ops(ops: &[(bool, u64, u64)], universe: u64) -> (RangeSet, Vec<bool>) {
    let mut rs = RangeSet::new();
    let mut reference = vec![false; universe as usize];
    for &(insert, a, b) in ops {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (lo, hi) = (lo % universe, hi % universe);
        if insert {
            rs.insert(lo, hi);
            for x in lo..hi {
                reference[x as usize] = true;
            }
        } else {
            rs.remove(lo, hi);
            for x in lo..hi {
                reference[x as usize] = false;
            }
        }
    }
    (rs, reference)
}

proptest! {
    /// RangeSet agrees with a boolean-vector reference under arbitrary
    /// insert/remove interleavings, and stays sorted + disjoint.
    #[test]
    fn rangeset_matches_reference(ops in proptest::collection::vec(
        (any::<bool>(), 0u64..64, 0u64..64), 1..40)) {
        let universe = 64;
        let (rs, reference) = apply_ops(&ops, universe);
        // Structural invariants.
        for w in rs.ranges().windows(2) {
            prop_assert!(w[0].1 < w[1].0, "ranges must be disjoint, non-adjacent: {:?}", rs.ranges());
        }
        for &(s, e) in rs.ranges() {
            prop_assert!(s < e);
        }
        // Pointwise agreement.
        for x in 0..universe {
            let covered = rs.intersects(x, x + 1);
            prop_assert_eq!(covered, reference[x as usize], "byte {}", x);
        }
        prop_assert_eq!(rs.covered(), reference.iter().filter(|&&b| b).count() as u64);
    }

    /// Stripe chunk decomposition exactly tiles any request.
    #[test]
    fn chunks_tile_request(first in 0usize..8, count in 1usize..8,
                           ssize in 1u64..4096, off in 0u64..100_000, len in 0u64..100_000) {
        let pool = 8;
        let count = count.min(pool);
        let l = StripeLayout::new(first % pool, count, ssize, pool);
        let cs = l.chunks(off, len);
        prop_assert_eq!(cs.iter().map(|c| c.len).sum::<u64>(), len);
        let mut pos = off;
        for c in &cs {
            prop_assert_eq!(c.file_offset, pos);
            prop_assert!(c.len > 0);
            prop_assert!(c.len <= ssize);
            prop_assert_eq!(c.ost, l.ost_of(c.file_offset));
            // A chunk never crosses a stripe boundary.
            prop_assert_eq!(c.file_offset / ssize, (c.file_offset + c.len - 1) / ssize);
            pos += c.len;
        }
    }

    /// Storage write/read round-trips arbitrary real data at arbitrary
    /// offsets, including cross-page patterns.
    #[test]
    fn storage_round_trip(writes in proptest::collection::vec(
        (0u64..300_000, proptest::collection::vec(any::<u8>(), 1..2000)), 1..12)) {
        let mut s = Storage::new();
        let mut reference: std::collections::BTreeMap<u64, u8> = Default::default();
        for (off, data) in &writes {
            s.write(*off, &IoBuffer::from_slice(data));
            for (i, &b) in data.iter().enumerate() {
                reference.insert(off + i as u64, b);
            }
        }
        for (off, data) in &writes {
            let got = s.read(*off, data.len());
            let bytes = got.as_slice().unwrap();
            for (i, got_b) in bytes.iter().enumerate() {
                let want = reference.get(&(off + i as u64)).copied().unwrap_or(0);
                prop_assert_eq!(*got_b, want, "offset {}", off + i as u64);
            }
        }
    }

    /// ost_load conserves bytes and request counts.
    #[test]
    fn ost_load_conserves(off in 0u64..1_000_000, len in 0u64..1_000_000) {
        let l = StripeLayout::new(3, 5, 4096, 7);
        let load = l.ost_load(off, len);
        prop_assert_eq!(load.iter().map(|&(_, b, _)| b).sum::<u64>(), len);
        prop_assert_eq!(
            load.iter().map(|&(_, _, r)| r).sum::<u64>() as usize,
            l.chunks(off, len).len()
        );
    }
}
