//! Adaptive subgroup-count selection — the paper's future work made
//! concrete ("we will study ... how to adaptive choosing the best group
//! size for ParColl", §6).
//!
//! The trade-off is workload-dependent: more subgroups cut global
//! synchronization, fewer keep aggregation coarse (paper §4). For
//! repetitive collective calls (every workload in the evaluation), the
//! controller probes a ladder of group counts — one call per rung — and
//! commits to the fastest. During probing, ranks agree on each
//! measurement through one extra `allreduce(MAX)` per call; after
//! commitment no whole-group operation remains, so the steady state keeps
//! ParColl's full benefit. Enabled with the `parcoll_adaptive` hint.

/// State machine choosing the subgroup count across repeated calls.
#[derive(Debug, Clone)]
pub struct AdaptiveGroups {
    ladder: Vec<usize>,
    /// Calls spent on each rung before scoring it. Several calls per rung
    /// let drift-dependent benefits (independent subgroup progress across
    /// calls — the IOR/Flash mechanism) show up; the *last* call of the
    /// rung is the score.
    calls_per_probe: usize,
    rung_calls: usize,
    /// (group count, agreed per-call seconds) for probed rungs.
    measured: Vec<(usize, f64)>,
    committed: Option<usize>,
}

impl AdaptiveGroups {
    /// Build the probe ladder for `nprocs` processes with the given
    /// minimum group size: powers of two from 1 (the baseline) up to
    /// `nprocs / min_group`, each probed for three calls.
    pub fn new(nprocs: usize, min_group: usize) -> Self {
        Self::with_calls_per_probe(nprocs, min_group, 3)
    }

    /// [`AdaptiveGroups::new`] with an explicit probe length per rung.
    pub fn with_calls_per_probe(nprocs: usize, min_group: usize, calls_per_probe: usize) -> Self {
        let cap = (nprocs / min_group.max(1)).max(1);
        let mut ladder = vec![1usize];
        let mut g = 2;
        while g <= cap {
            ladder.push(g);
            g *= 2;
        }
        AdaptiveGroups {
            ladder,
            calls_per_probe: calls_per_probe.max(1),
            rung_calls: 0,
            measured: Vec::new(),
            committed: None,
        }
    }

    /// The group count to use for the next call.
    pub fn next_groups(&self) -> usize {
        match self.committed {
            Some(g) => g,
            None => self.ladder[self.measured.len()],
        }
    }

    /// True once the controller has settled.
    pub fn is_committed(&self) -> bool {
        self.committed.is_some()
    }

    /// The committed group count, if settled.
    pub fn committed(&self) -> Option<usize> {
        self.committed
    }

    /// The probe measurements so far (one entry per completed rung).
    pub fn measurements(&self) -> &[(usize, f64)] {
        &self.measured
    }

    /// Record the (globally agreed) elapsed seconds of the call that used
    /// [`next_groups`](AdaptiveGroups::next_groups). A rung is scored by
    /// its final call; the controller commits to the argmin once the
    /// ladder is exhausted.
    pub fn record(&mut self, elapsed_secs: f64) {
        if self.committed.is_some() {
            return;
        }
        self.rung_calls += 1;
        if self.rung_calls < self.calls_per_probe {
            return;
        }
        self.rung_calls = 0;
        let g = self.ladder[self.measured.len()];
        self.measured.push((g, elapsed_secs));
        if self.measured.len() == self.ladder.len() {
            let best = self
                .measured
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty ladder")
                .0;
            self.committed = Some(best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_powers_of_two_up_to_cap() {
        let a = AdaptiveGroups::with_calls_per_probe(512, 8, 1);
        assert_eq!(
            a.measurements().len(),
            0
        );
        let mut probes = Vec::new();
        let mut a2 = a.clone();
        while !a2.is_committed() {
            probes.push(a2.next_groups());
            a2.record(1.0);
        }
        assert_eq!(probes, vec![1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn commits_to_argmin() {
        let mut a = AdaptiveGroups::with_calls_per_probe(64, 8, 1);
        // Ladder: 1, 2, 4, 8. Make 4 the fastest.
        let times = [4.0, 3.0, 1.5, 2.5];
        for t in times {
            assert!(!a.is_committed());
            a.record(t);
        }
        assert_eq!(a.committed(), Some(4));
        assert_eq!(a.next_groups(), 4);
        // Further records are ignored.
        a.record(0.1);
        assert_eq!(a.committed(), Some(4));
    }

    #[test]
    fn degenerate_cluster_commits_to_one() {
        let mut a = AdaptiveGroups::with_calls_per_probe(4, 8, 1);
        assert_eq!(a.next_groups(), 1);
        a.record(1.0);
        assert_eq!(a.committed(), Some(1));
    }

    #[test]
    fn probing_order_matches_next_groups() {
        let mut a = AdaptiveGroups::with_calls_per_probe(32, 4, 1);
        let mut seen = Vec::new();
        while !a.is_committed() {
            seen.push(a.next_groups());
            a.record(seen.len() as f64); // monotonically worse -> commit 1
        }
        assert_eq!(seen, vec![1, 2, 4, 8]);
        assert_eq!(a.committed(), Some(1));
    }

    #[test]
    fn multi_call_probes_score_the_last_call() {
        let mut a = AdaptiveGroups::with_calls_per_probe(16, 8, 3);
        // Ladder: [1, 2]. Rung 1: calls get faster (warmup/drift) — the
        // last call's 1.0 is the score. Rung 2: flat 2.0.
        for t in [5.0, 3.0, 1.0] {
            a.record(t);
        }
        assert_eq!(a.measurements(), &[(1, 1.0)]);
        for t in [2.0, 2.0, 2.0] {
            a.record(t);
        }
        assert_eq!(a.committed(), Some(1));
    }
}
